//! End-to-end resilience: deadlines, load shedding, readiness, the
//! `/failpoints` endpoint, and the registry's graceful-degradation ladder
//! (snapshot-load failure → rebuild, spill failure → quarantine, torn
//! journal → quarantine + verified prefix, failed journal append →
//! 503 `MutationNotDurable` that a retry repairs).
//!
//! Failpoints are process-global, so every test serializes on [`guard`]
//! and disarms on drop — a panicking test cannot leak an armed point into
//! its neighbours.

use std::sync::{Arc, Mutex, PoisonError};

use wiki_corpus::{Article, AttributeValue, Infobox, Language, SyntheticConfig};
use wiki_serve::client::MatchClient;
use wiki_serve::protocol::{
    AlignRequest, CorpusRequest, DeadlineExceededBody, FailpointsRequest, FailpointsResponse,
    MutateRequest, MutateResponse, ReadyResponse, StatsResponse,
};
use wiki_serve::registry::{CorpusSpec, Registry};
use wiki_serve::server::{MatchServer, ServerConfig};
use wikimatch::ComputeMode;

static FAULT_LOCK: Mutex<()> = Mutex::new(());

/// Serializes the test on the global failpoint table and guarantees a
/// clean table on the way out, panic or not.
struct FaultGuard<'a>(#[allow(dead_code)] std::sync::MutexGuard<'a, ()>);

impl Drop for FaultGuard<'_> {
    fn drop(&mut self) {
        wiki_fault::disarm_all();
    }
}

fn guard() -> FaultGuard<'static> {
    let lock = FAULT_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    wiki_fault::disarm_all();
    FaultGuard(lock)
}

fn tiny_spec(name: &str) -> CorpusSpec {
    CorpusSpec {
        name: name.to_string(),
        language: Language::Pt,
        config: SyntheticConfig::tiny(),
    }
}

fn boot(config: ServerConfig, dir: Option<&std::path::Path>) -> (MatchServer, MatchClient) {
    let mut registry = Registry::new(2, ComputeMode::default());
    if let Some(dir) = dir {
        registry = registry.with_snapshot_dir(dir);
    }
    let registry = Arc::new(registry);
    registry.register_all(vec![tiny_spec("pt-tiny")]);
    let server = MatchServer::start(registry, config).expect("server binds an ephemeral port");
    let client = MatchClient::new(server.addr()).expect("client resolves the server address");
    (server, client)
}

fn base_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 4,
        queue_depth: 64,
        ..ServerConfig::default()
    }
}

fn align_all() -> AlignRequest {
    AlignRequest {
        corpus: "pt-tiny".to_string(),
        type_id: None,
    }
}

fn probe_request(title: &str, note: &str) -> MutateRequest {
    let mut infobox = Infobox::new("Infobox Filme");
    infobox.push(AttributeValue::text("nota", note));
    MutateRequest {
        entities: vec![Article::new(title, Language::Pt, "Filme", infobox)],
    }
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("wm-resilience-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir creates");
    dir
}

#[test]
fn expired_deadline_answers_a_structured_504_and_keeps_the_memoised_body() {
    let _guard = guard();
    let mut config = base_config();
    config.deadline_millis = 1000;
    let (server, mut client) = boot(config, None);

    // Warm within budget so the corpus build cannot trip the deadline.
    let warmed = client
        .post(
            "/warm",
            &CorpusRequest {
                corpus: "pt-tiny".to_string(),
            },
        )
        .unwrap();
    assert_eq!(warmed.status, 200, "{}", warmed.body);

    // One injected 1.6s stall in the compute phase blows the 1s budget.
    wiki_fault::arm("serve.compute=sleep(1600)*1").unwrap();
    let expired = client.post("/align", &align_all()).unwrap();
    assert_eq!(expired.status, 504, "{}", expired.body);
    let body: DeadlineExceededBody = serde_json::from_str(&expired.body).unwrap();
    assert_eq!(body.deadline_ms, 1000);
    assert_eq!(body.phase, "compute");
    assert!(body.elapsed_ms >= 1000, "elapsed {}ms", body.elapsed_ms);

    // The body computed during the doomed request was memoised: the retry
    // is served instantly, well inside the same budget.
    let retried = client.post("/align", &align_all()).unwrap();
    assert_eq!(retried.status, 200, "{}", retried.body);

    let stats: StatsResponse = client.get("/stats").unwrap().json().unwrap();
    assert_eq!(stats.server.deadline_expired, 1);
    server.shutdown();
}

#[test]
fn queue_wait_past_the_shed_budget_answers_503_and_degrades_readiness() {
    let _guard = guard();
    let mut config = base_config();
    config.workers = 1;
    config.shed_queue_millis = 5;
    let (server, mut client) = boot(config, None);

    // Pin the single worker for 300ms; everything queued behind it waits
    // far past the 5ms admission budget.
    wiki_fault::arm("serve.compute=sleep(300)*1").unwrap();
    let addr = server.addr();
    let pinner = std::thread::spawn(move || {
        let mut client = MatchClient::new(addr).unwrap();
        client.post("/align", &align_all()).unwrap()
    });
    std::thread::sleep(std::time::Duration::from_millis(50));
    let shed = client.post("/align", &align_all()).unwrap();
    assert_eq!(shed.status, 503, "{}", shed.body);
    assert_eq!(shed.header("retry-after"), Some("1"), "Retry-After missing");
    assert!(shed.body.contains("shed"), "{}", shed.body);
    let pinned = pinner.join().unwrap();
    assert_eq!(pinned.status, 200, "{}", pinned.body);

    // Liveness stays green; readiness reports the recent shed.
    let live = client.get("/livez").unwrap();
    assert_eq!(live.status, 200);
    let ready = client.get("/readyz").unwrap();
    assert_eq!(ready.status, 503, "{}", ready.body);
    let ready: ReadyResponse = serde_json::from_str(&ready.body).unwrap();
    assert_eq!(ready.status, "degraded");
    assert!(ready.reason.contains("shed"), "{:?}", ready.reason);
    assert_eq!(ready.shed, 1);

    let stats: StatsResponse = client.get("/stats").unwrap().json().unwrap();
    assert_eq!(stats.server.shed, 1);
    server.shutdown();
}

#[test]
fn failpoints_endpoint_is_gated_and_drives_the_global_table() {
    let _guard = guard();

    // Disabled by default: the endpoint refuses even GET.
    let (server, mut client) = boot(base_config(), None);
    assert_eq!(client.get("/failpoints").unwrap().status, 403);
    server.shutdown();

    let mut config = base_config();
    config.failpoints_endpoint = true;
    let (server, mut client) = boot(config, None);
    let armed: FailpointsResponse = client
        .post(
            "/failpoints",
            &FailpointsRequest {
                spec: "serve.compute=sleep(1)".to_string(),
            },
        )
        .unwrap()
        .json()
        .unwrap();
    assert_eq!(armed.points.len(), 1);
    assert_eq!(armed.points[0].name, "serve.compute");
    assert_eq!(armed.points[0].spec, "sleep(1)");

    let bad = client
        .post(
            "/failpoints",
            &FailpointsRequest {
                spec: "nonsense((".to_string(),
            },
        )
        .unwrap();
    assert_eq!(bad.status, 400, "{}", bad.body);

    let cleared: FailpointsResponse = client
        .request("DELETE", "/failpoints", Some("{}"))
        .unwrap()
        .json()
        .unwrap();
    assert!(cleared.points.is_empty());
    server.shutdown();
}

#[test]
fn unreadable_snapshot_degrades_to_a_rebuild_and_is_quarantined() {
    let _guard = guard();
    let dir = temp_dir("snapload");

    // First life: warm writes a snapshot, then corrupt it on disk.
    let (server, mut client) = boot(base_config(), Some(&dir));
    client
        .post(
            "/warm",
            &CorpusRequest {
                corpus: "pt-tiny".to_string(),
            },
        )
        .unwrap();
    let clean_body = client.post("/align", &align_all()).unwrap().body;
    server.shutdown();
    let snap = dir.join("pt-tiny.snap");
    assert!(snap.is_file());
    std::fs::write(&snap, b"WMSNAP garbage that is definitely not a snapshot").unwrap();

    // Second life: the load fails, the server rebuilds and keeps serving
    // the identical answer, and the garbage is moved aside.
    let (server, mut client) = boot(base_config(), Some(&dir));
    let rebuilt = client.post("/align", &align_all()).unwrap();
    assert_eq!(rebuilt.status, 200, "{}", rebuilt.body);
    assert_eq!(
        rebuilt.body, clean_body,
        "rebuild diverged from the clean engine"
    );
    let stats: StatsResponse = client.get("/stats").unwrap().json().unwrap();
    let corpus = &stats.registry.corpora[0];
    assert_eq!(corpus.snapshot_load_failures, 1);
    assert_eq!(corpus.snapshot_loads, 0);
    assert!(corpus.quarantines >= 1);
    assert!(!snap.exists(), "garbage snapshot still loadable");
    assert!(
        dir.join("pt-tiny.snap.corrupt").is_file(),
        "garbage snapshot not preserved for inspection"
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn failed_spill_retries_then_quarantines_and_serving_continues() {
    let _guard = guard();
    let dir = temp_dir("spill");
    let (server, mut client) = boot(base_config(), Some(&dir));

    // Every spill attempt fails: warm succeeds anyway (persistence is an
    // optimisation), the failure is counted, and no snapshot lands.
    wiki_fault::arm("registry.spill=err(disk full)").unwrap();
    let warmed = client
        .post(
            "/warm",
            &CorpusRequest {
                corpus: "pt-tiny".to_string(),
            },
        )
        .unwrap();
    assert_eq!(warmed.status, 200, "{}", warmed.body);
    let stats: StatsResponse = client.get("/stats").unwrap().json().unwrap();
    let corpus = &stats.registry.corpora[0];
    assert_eq!(corpus.spill_failures, 1);
    assert_eq!(corpus.snapshot_saves, 0);
    assert!(!dir.join("pt-tiny.snap").exists());

    // Disarmed, the same warm persists fine.
    wiki_fault::disarm_all();
    client
        .post(
            "/warm",
            &CorpusRequest {
                corpus: "pt-tiny".to_string(),
            },
        )
        .unwrap();
    let stats: StatsResponse = client.get("/stats").unwrap().json().unwrap();
    assert_eq!(stats.registry.corpora[0].snapshot_saves, 1);
    assert!(dir.join("pt-tiny.snap").is_file());

    // Mutate (so the existing snapshot is stale), then fail the evict-time
    // spill: the unrefreshable stale file is quarantined.
    let mutated = client
        .post(
            "/corpora/pt-tiny/entities",
            &probe_request("Sonda Resiliente", "v1"),
        )
        .unwrap();
    assert_eq!(mutated.status, 200, "{}", mutated.body);
    wiki_fault::arm("registry.spill=err(disk full)").unwrap();
    let evicted = client
        .post(
            "/evict",
            &CorpusRequest {
                corpus: "pt-tiny".to_string(),
            },
        )
        .unwrap();
    assert_eq!(evicted.status, 200, "{}", evicted.body);
    wiki_fault::disarm_all();
    assert!(!dir.join("pt-tiny.snap").exists(), "stale snapshot kept");
    assert!(dir.join("pt-tiny.snap.corrupt").is_file());

    // Serving still works end to end: the next request rebuilds from the
    // pristine dataset plus the journal.
    let served = client.post("/align", &align_all()).unwrap();
    assert_eq!(served.status, 200, "{}", served.body);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn garbage_journal_is_quarantined_and_the_corpus_stays_mutable() {
    let _guard = guard();
    let dir = temp_dir("journal");
    let journal = dir.join("pt-tiny.journal");
    std::fs::write(&journal, b"\x00\x01torn header garbage").unwrap();

    let (server, mut client) = boot(base_config(), Some(&dir));
    let served = client.post("/align", &align_all()).unwrap();
    assert_eq!(served.status, 200, "{}", served.body);
    let stats: StatsResponse = client.get("/stats").unwrap().json().unwrap();
    assert!(stats.registry.corpora[0].quarantines >= 1);
    assert!(
        dir.join("pt-tiny.journal.corrupt").is_file(),
        "unreadable journal not preserved"
    );
    assert!(!journal.exists(), "garbage journal left on the append path");

    // The quarantined garbage is out of the way: a fresh write-ahead chain
    // starts cleanly.
    let mutated = client
        .post(
            "/corpora/pt-tiny/entities",
            &probe_request("Sonda Tombada", "v1"),
        )
        .unwrap();
    assert_eq!(mutated.status, 200, "{}", mutated.body);
    let stats: StatsResponse = client.get("/stats").unwrap().json().unwrap();
    assert_eq!(stats.registry.corpora[0].journal_records, 1);
    assert!(journal.is_file(), "mutation did not restart the journal");
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unjournalable_mutation_answers_503_and_a_retry_repairs_the_chain() {
    let _guard = guard();
    let dir = temp_dir("durable");
    let (server, mut client) = boot(base_config(), Some(&dir));

    // A first, healthy mutation roots the on-disk chain.
    let first = client
        .post(
            "/corpora/pt-tiny/entities",
            &probe_request("Sonda Durável", "v1"),
        )
        .unwrap();
    assert_eq!(first.status, 200, "{}", first.body);

    // Both the append and the full-rewrite fallback fail: the mutation is
    // applied to the live session but the ack is withheld.
    wiki_fault::arm("journal.append.write=err(disk gone)").unwrap();
    wiki_fault::arm("journal.save.write=err(disk gone)").unwrap();
    let refused = client
        .post(
            "/corpora/pt-tiny/entities",
            &probe_request("Sonda Durável", "v2"),
        )
        .unwrap();
    assert_eq!(refused.status, 503, "{}", refused.body);
    assert_eq!(refused.header("retry-after"), Some("1"));
    assert!(refused.body.contains("not yet durable"), "{}", refused.body);
    let stats: StatsResponse = client.get("/stats").unwrap().json().unwrap();
    assert_eq!(stats.registry.corpora[0].mutations_not_durable, 1);

    // The disk recovers; the idempotent retry repairs the whole chain and
    // acks.
    wiki_fault::disarm_all();
    let retried: MutateResponse = client
        .post(
            "/corpora/pt-tiny/entities",
            &probe_request("Sonda Durável", "v2"),
        )
        .unwrap()
        .json()
        .unwrap();
    // The delta was already applied on the refused attempt, so the retry
    // is a fingerprint no-op — but it flushed the repaired journal.
    assert_eq!(retried.fingerprint, retried.fingerprint_before);
    let mutated_body = client.post("/align", &align_all()).unwrap().body;
    server.shutdown();

    // A restart replays the repaired chain: nothing acked was lost.
    let (server, mut client) = boot(base_config(), Some(&dir));
    let restored = client.post("/align", &align_all()).unwrap();
    assert_eq!(restored.status, 200, "{}", restored.body);
    assert_eq!(
        restored.body, mutated_body,
        "restart lost an acked mutation"
    );
    let stats: StatsResponse = client.get("/stats").unwrap().json().unwrap();
    assert_eq!(stats.registry.corpora[0].journal_records, 2);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
