//! Integration tests: boot a real `matchd` server on an ephemeral port and
//! drive it over actual sockets, asserting the wire responses match what
//! the in-process [`MatchEngine`] produces for the same dataset — plus the
//! cold-corpus coalescing guarantee (N concurrent first requests, exactly
//! one artifact build).

use std::sync::Arc;
use std::thread;

use wiki_baselines::BoumaMatcher;
use wiki_corpus::{Article, AttributeValue, Dataset, Infobox, Language, SyntheticConfig};
use wiki_query::{CQuery, CorrespondenceDictionary, QueryEngine};
use wiki_serve::client::MatchClient;
use wiki_serve::protocol::{
    AlignRequest, AlignResponse, CorporaResponse, CorpusRequest, DeleteRequest, EntityKey,
    EvictResponse, HealthResponse, MatcherRequest, MatchersResponse, MutateRequest, MutateResponse,
    StatsResponse, TranslateRequest, TranslateResponse, WarmResponse,
};
use wiki_serve::registry::{CorpusSpec, Registry};
use wiki_serve::server::{MatchServer, ServerConfig};
use wikimatch::{ComputeMode, MatchEngine};

fn tiny_spec(name: &str) -> CorpusSpec {
    CorpusSpec {
        name: name.to_string(),
        language: Language::Pt,
        config: SyntheticConfig::tiny(),
    }
}

/// Boots a server over the given specs on an ephemeral port.
fn boot(specs: Vec<CorpusSpec>, capacity: usize) -> (MatchServer, MatchClient) {
    let registry = Arc::new(Registry::new(capacity, ComputeMode::default()));
    registry.register_all(specs);
    let server = MatchServer::start(
        registry,
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_depth: 64,
            ..ServerConfig::default()
        },
    )
    .expect("server binds an ephemeral port");
    let client = MatchClient::new(server.addr()).expect("client resolves the server address");
    (server, client)
}

/// The in-process reference engine for a spec (same dataset, same mode).
fn reference_engine() -> MatchEngine {
    MatchEngine::builder(Dataset::pt_en(&SyntheticConfig::tiny())).build()
}

#[test]
fn align_over_the_wire_matches_the_in_process_engine() {
    let (server, mut client) = boot(vec![tiny_spec("pt-tiny")], 2);
    let engine = reference_engine();

    // Single type.
    let response: AlignResponse = client
        .post(
            "/align",
            &AlignRequest {
                corpus: "pt-tiny".to_string(),
                type_id: Some("film".to_string()),
            },
        )
        .unwrap()
        .json()
        .unwrap();
    assert_eq!(response.matcher, "WikiMatch");
    assert_eq!(response.alignments.len(), 1);
    assert_eq!(response.alignments[0].type_id, "film");
    assert_eq!(
        response.alignments[0].pairs,
        engine.align("film").unwrap().cross_pairs(),
        "wire alignment diverges from the in-process engine"
    );

    // All types, on the same keep-alive connection.
    let response: AlignResponse = client
        .post(
            "/align",
            &AlignRequest {
                corpus: "pt-tiny".to_string(),
                type_id: None,
            },
        )
        .unwrap()
        .json()
        .unwrap();
    let reference = engine.align_all();
    assert_eq!(response.alignments.len(), reference.len());
    for (wire, local) in response.alignments.iter().zip(&reference) {
        assert_eq!(wire.type_id, local.type_id);
        assert_eq!(wire.pairs, local.cross_pairs(), "{}", wire.type_id);
    }

    server.shutdown();
}

#[test]
fn matchers_endpoint_runs_named_plugins() {
    let (server, mut client) = boot(vec![tiny_spec("pt-tiny")], 2);
    let engine = reference_engine();

    let listed: MatchersResponse = client.get("/matchers").unwrap().json().unwrap();
    assert!(listed.matchers.contains(&"Bouma".to_string()));

    let response: AlignResponse = client
        .post(
            "/matchers",
            &MatcherRequest {
                corpus: "pt-tiny".to_string(),
                matcher: "bouma".to_string(), // case-insensitive
                type_id: Some("film".to_string()),
            },
        )
        .unwrap()
        .json()
        .unwrap();
    assert_eq!(response.matcher, "Bouma");
    assert_eq!(
        response.alignments[0].pairs,
        engine.align_with(&BoumaMatcher::default(), "film").unwrap(),
        "wire Bouma pairs diverge from the in-process engine"
    );

    server.shutdown();
}

#[test]
fn translate_query_matches_the_in_process_dictionary() {
    let (server, mut client) = boot(vec![tiny_spec("pt-tiny")], 2);
    let engine = reference_engine();
    let dictionary = CorrespondenceDictionary::build(&engine.dataset(), &engine.align_all());

    let query_text = r#"filme(direção=?, país="Estados Unidos")"#;
    let response: TranslateResponse = client
        .post(
            "/translate-query",
            &TranslateRequest {
                corpus: "pt-tiny".to_string(),
                query: query_text.to_string(),
                top_k: Some(5),
            },
        )
        .unwrap()
        .json()
        .unwrap();

    let source = CQuery::parse(query_text).unwrap();
    let (translated, stats) = dictionary.translate_query(&source);
    assert_eq!(response.translated, translated);
    assert_eq!(response.translated_constraints, stats.translated);
    assert_eq!(response.relaxed_constraints, stats.relaxed);
    assert_eq!(
        response.answers,
        QueryEngine::new(&engine.dataset().corpus).answer(&translated, &Language::En, 5),
        "wire answers diverge from the in-process query engine"
    );

    server.shutdown();
}

#[test]
fn health_corpora_warm_evict_and_stats_round_trip() {
    let (server, mut client) = boot(vec![tiny_spec("pt-tiny"), tiny_spec("pt-other")], 2);

    let health: HealthResponse = client.get("/healthz").unwrap().json().unwrap();
    assert_eq!(
        (health.status.as_str(), health.service.as_str()),
        ("ok", "matchd")
    );

    let corpora: CorporaResponse = client.get("/corpora").unwrap().json().unwrap();
    let names: Vec<&str> = corpora.corpora.iter().map(|s| s.name.as_str()).collect();
    assert_eq!(names, ["pt-tiny", "pt-other"]);

    let warm: WarmResponse = client
        .post(
            "/warm",
            &CorpusRequest {
                corpus: "pt-tiny".to_string(),
            },
        )
        .unwrap()
        .json()
        .unwrap();
    assert_eq!(warm.cached_types, 14, "pt datasets have 14 entity types");

    let stats: StatsResponse = client.get("/stats").unwrap().json().unwrap();
    assert_eq!(stats.registry.resident, 1);
    let corpus = stats
        .registry
        .corpora
        .iter()
        .find(|c| c.name == "pt-tiny")
        .unwrap();
    assert!(corpus.resident);
    assert_eq!(corpus.builds, 1);
    let engine = corpus.engine.as_ref().expect("resident engine has stats");
    assert_eq!(engine.cached_types, 14);
    assert_eq!(engine.artifact_builds, 14);
    // The memory-footprint gauges of the interned vocabulary travel over
    // the wire: a fully warmed session reports its arena and vector sizes
    // so LRU capacity planning can be done from /stats alone.
    assert!(engine.interned_terms > 0, "warm engine reports arena terms");
    assert!(engine.interned_bytes > engine.interned_terms);
    assert!(engine.vector_entries > 0);
    assert!(stats.server.handled >= 3);
    assert_eq!(stats.server.rejected, 0);

    let evicted: EvictResponse = client
        .post(
            "/evict",
            &CorpusRequest {
                corpus: "pt-tiny".to_string(),
            },
        )
        .unwrap()
        .json()
        .unwrap();
    assert!(evicted.evicted);
    let stats: StatsResponse = client.get("/stats").unwrap().json().unwrap();
    assert_eq!(stats.registry.resident, 0);

    server.shutdown();
}

#[test]
fn protocol_errors_use_json_statuses() {
    let (server, mut client) = boot(vec![tiny_spec("pt-tiny")], 2);

    // Unknown route.
    assert_eq!(client.get("/nope").unwrap().status, 404);
    // Wrong method on a known route.
    assert_eq!(client.get("/align").unwrap().status, 405);
    // Malformed body.
    assert_eq!(
        client
            .request("POST", "/align", Some("{not json"))
            .unwrap()
            .status,
        400
    );
    // Unknown corpus.
    let response = client
        .post(
            "/align",
            &AlignRequest {
                corpus: "atlantis".to_string(),
                type_id: None,
            },
        )
        .unwrap();
    assert_eq!(response.status, 404);
    assert!(response.body.contains("atlantis"), "{}", response.body);
    // Unknown type in a known corpus.
    let response = client
        .post(
            "/align",
            &AlignRequest {
                corpus: "pt-tiny".to_string(),
                type_id: Some("starship".to_string()),
            },
        )
        .unwrap();
    assert_eq!(response.status, 404);
    // Unknown matcher.
    let response = client
        .post(
            "/matchers",
            &MatcherRequest {
                corpus: "pt-tiny".to_string(),
                matcher: "oracle".to_string(),
                type_id: None,
            },
        )
        .unwrap();
    assert_eq!(response.status, 400);
    // Unparseable c-query.
    let response = client
        .post(
            "/translate-query",
            &TranslateRequest {
                corpus: "pt-tiny".to_string(),
                query: "((((".to_string(),
                top_k: None,
            },
        )
        .unwrap();
    assert_eq!(response.status, 400);

    server.shutdown();
}

/// The acceptance-criteria test: N concurrent first requests against a cold
/// corpus trigger exactly one session build and exactly one per-type
/// artifact build — the stampede coalesces instead of duplicating work.
#[test]
fn concurrent_cold_aligns_trigger_exactly_one_artifact_build() {
    const CLIENTS: usize = 8;
    let (server, mut client) = boot(vec![tiny_spec("pt-tiny")], 2);
    let addr = server.addr();

    let bodies: Vec<String> = thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                scope.spawn(move || {
                    let mut client = MatchClient::new(addr).expect("client connects");
                    let response = client
                        .post(
                            "/align",
                            &AlignRequest {
                                corpus: "pt-tiny".to_string(),
                                type_id: Some("film".to_string()),
                            },
                        )
                        .expect("align request succeeds");
                    assert_eq!(response.status, 200);
                    response.body
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Every concurrent caller saw the identical payload.
    assert!(bodies.windows(2).all(|w| w[0] == w[1]));

    let stats: StatsResponse = client.get("/stats").unwrap().json().unwrap();
    let corpus = stats
        .registry
        .corpora
        .iter()
        .find(|c| c.name == "pt-tiny")
        .unwrap();
    assert_eq!(
        corpus.builds, 1,
        "{CLIENTS} concurrent cold requests must coalesce onto one session build"
    );
    assert_eq!(corpus.hits + corpus.misses, CLIENTS as u64);
    let engine = corpus.engine.as_ref().expect("engine is resident");
    assert_eq!(
        engine.artifact_builds, 1,
        "only the requested type's artifacts may be built, exactly once"
    );
    assert_eq!(engine.cached_types, 1);

    server.shutdown();
}

#[test]
fn lru_capacity_is_enforced_over_the_wire() {
    let (server, mut client) = boot(vec![tiny_spec("a"), tiny_spec("b"), tiny_spec("c")], 2);
    for corpus in ["a", "b", "c"] {
        let response = client
            .post(
                "/align",
                &AlignRequest {
                    corpus: corpus.to_string(),
                    type_id: Some("film".to_string()),
                },
            )
            .unwrap();
        assert_eq!(response.status, 200, "{corpus}");
    }
    let stats: StatsResponse = client.get("/stats").unwrap().json().unwrap();
    assert_eq!(stats.registry.capacity, 2);
    assert_eq!(stats.registry.resident, 2);
    let a = stats
        .registry
        .corpora
        .iter()
        .find(|c| c.name == "a")
        .unwrap();
    assert!(!a.resident, "oldest session is evicted by LRU pressure");
    assert_eq!(a.evictions, 1);

    server.shutdown();
}

/// The probe article of the mutation tests: same key every time, attribute
/// value varying by `step`, so the first request inserts and later ones
/// update in place. Cross-linked to an English film of the same synthetic
/// dataset, so it forms a dual pair and its edits dirty similarity rows.
fn probe(step: usize) -> Article {
    let dataset = Dataset::pt_en(&SyntheticConfig::tiny());
    let en_title = dataset
        .corpus
        .articles_in(&Language::En)
        .find(|a| a.entity_type == "Film")
        .expect("tiny dataset has English films")
        .title
        .clone();
    let mut infobox = Infobox::new("Infobox Filme");
    infobox.push(AttributeValue::text("nota", format!("edição {step}")));
    let mut article = Article::new("Sonda Wire", Language::Pt, "Filme", infobox);
    article.cross_links.push((Language::En, en_title));
    article
}

#[test]
fn mutation_endpoints_patch_the_live_corpus_and_report_gauges() {
    let (server, mut client) = boot(vec![tiny_spec("pt-tiny")], 2);

    // Warm first so the mutations patch cached artifacts (that is the
    // interesting path: rows recomputed instead of lazily rebuilt).
    let warm = client
        .post(
            "/warm",
            &CorpusRequest {
                corpus: "pt-tiny".to_string(),
            },
        )
        .unwrap();
    assert_eq!(warm.status, 200);

    let inserted: MutateResponse = client
        .post(
            "/corpora/pt-tiny/entities",
            &MutateRequest {
                entities: vec![probe(0)],
            },
        )
        .unwrap()
        .json()
        .unwrap();
    assert_eq!(
        (inserted.inserted, inserted.updated, inserted.removed),
        (1, 0, 0)
    );
    // The probe's new cross-link changes the title dictionary, which
    // reaches every type — so all 14 cached types are patched.
    assert_eq!(inserted.types_patched, 14, "every cached type is patched");
    assert_ne!(inserted.fingerprint, inserted.fingerprint_before);

    let updated: MutateResponse = client
        .post(
            "/corpora/pt-tiny/entities",
            &MutateRequest {
                entities: vec![probe(1)],
            },
        )
        .unwrap()
        .json()
        .unwrap();
    assert_eq!(
        (updated.inserted, updated.updated, updated.removed),
        (0, 1, 0)
    );
    assert_eq!(
        updated.fingerprint_before, inserted.fingerprint,
        "mutation responses chain fingerprints"
    );

    let removed: MutateResponse = client
        .delete(
            "/corpora/pt-tiny/entities",
            &DeleteRequest {
                entities: vec![EntityKey {
                    language: Language::Pt,
                    title: "Sonda Wire".to_string(),
                }],
            },
        )
        .unwrap()
        .json()
        .unwrap();
    assert_eq!(
        (removed.inserted, removed.updated, removed.removed),
        (0, 0, 1)
    );

    // The delta gauges travel over the wire.
    let stats: StatsResponse = client.get("/stats").unwrap().json().unwrap();
    let corpus = stats
        .registry
        .corpora
        .iter()
        .find(|c| c.name == "pt-tiny")
        .unwrap();
    assert_eq!(corpus.journal_records, 3);
    assert!(corpus.journal_bytes > 0, "journal size gauge is live");
    assert_eq!(corpus.compactions, 0);
    let engine = corpus.engine.as_ref().expect("mutated session is resident");
    assert_eq!(engine.deltas_applied, 3);
    assert!(
        engine.rows_recomputed > 0,
        "patching a warm session recomputes similarity rows"
    );

    // Five more deltas reach the compaction threshold (8): the chain
    // composes into one record.
    for step in 2..7 {
        let response = client
            .post(
                "/corpora/pt-tiny/entities",
                &MutateRequest {
                    entities: vec![probe(step)],
                },
            )
            .unwrap();
        assert_eq!(response.status, 200);
    }
    let stats: StatsResponse = client.get("/stats").unwrap().json().unwrap();
    let corpus = stats
        .registry
        .corpora
        .iter()
        .find(|c| c.name == "pt-tiny")
        .unwrap();
    assert_eq!(corpus.compactions, 1);
    assert_eq!(corpus.journal_records, 1, "compaction composed the chain");

    server.shutdown();
}

#[test]
fn mutation_endpoints_reject_bad_requests() {
    let (server, mut client) = boot(vec![tiny_spec("pt-tiny")], 2);

    // Unknown corpus.
    let response = client
        .post(
            "/corpora/atlantis/entities",
            &MutateRequest {
                entities: vec![probe(0)],
            },
        )
        .unwrap();
    assert_eq!(response.status, 404);
    assert!(response.body.contains("atlantis"), "{}", response.body);
    // Wrong method on the entities route.
    assert_eq!(client.get("/corpora/pt-tiny/entities").unwrap().status, 405);
    // Malformed body.
    assert_eq!(
        client
            .request("POST", "/corpora/pt-tiny/entities", Some("{not json"))
            .unwrap()
            .status,
        400
    );
    // Empty mutation.
    let response = client
        .post(
            "/corpora/pt-tiny/entities",
            &MutateRequest {
                entities: Vec::new(),
            },
        )
        .unwrap();
    assert_eq!(response.status, 400);
    // Removing an unknown key is a clean no-op, reported but not journaled.
    let response: MutateResponse = client
        .delete(
            "/corpora/pt-tiny/entities",
            &DeleteRequest {
                entities: vec![EntityKey {
                    language: Language::Pt,
                    title: "Nunca Existiu".to_string(),
                }],
            },
        )
        .unwrap()
        .json()
        .unwrap();
    assert_eq!(response.removed, 0);
    assert_eq!(response.fingerprint, response.fingerprint_before);
    let stats: StatsResponse = client.get("/stats").unwrap().json().unwrap();
    assert_eq!(stats.registry.corpora[0].journal_records, 0);

    server.shutdown();
}

#[test]
fn shutdown_over_the_wire_stops_the_server() {
    let (mut server, mut client) = boot(vec![tiny_spec("pt-tiny")], 1);
    let addr = server.addr();
    let response = client.request("POST", "/shutdown", Some("")).unwrap();
    assert_eq!(response.status, 200);
    // `wait` returns once the acceptor has stopped; afterwards new
    // connections are refused.
    server.wait();
    server.shutdown();
    assert!(std::net::TcpStream::connect(addr).is_err());
}
