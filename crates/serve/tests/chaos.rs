//! Crash-consistency chaos: boots the real `matchd` binary as a child
//! process, mutates a journaled corpus while randomly injected faults
//! (including `abort` — the child dies mid-write) tear through the
//! snapshot and journal paths, restarts after every crash, and finally
//! proves the three invariants the persistence design promises:
//!
//! 1. **No acked mutation is lost** — every title whose upsert answered
//!    200 is present when the surviving journal replays over the pristine
//!    dataset.
//! 2. **No torn artifact is accepted** — after a clean boot the journal
//!    strict-loads, any snapshot strict-loads, and no `.tmp-` files
//!    remain (aborts mid-save tear only the atomic-rename temp).
//! 3. **The served engine is bit-identical to a clean rebuild** — the
//!    restarted server's `/align` equals an in-process engine built cold
//!    over pristine + journal replay.
//!
//! Bounded by default (fast enough for CI); `WIKIMATCH_CHAOS_SEEDS` and
//! `WIKIMATCH_CHAOS_STEPS` widen the sweep for soak runs.

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;

use wiki_corpus::{Article, AttributeValue, Infobox, Language};
use wiki_serve::client::MatchClient;
use wiki_serve::protocol::{
    AlignRequest, AlignResponse, CorpusRequest, FailpointsRequest, MutateRequest,
};
use wiki_serve::registry::CorpusSpec;
use wikimatch::snapshot::EngineSnapshot;
use wikimatch::{corpus_fingerprint, DeltaJournal, MatchEngine};

/// xorshift64* — deterministic per-seed fault schedule, no external rng.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[(self.next() % items.len() as u64) as usize]
    }
}

/// The fault schedule: every spec self-disarms after firing once, so each
/// iteration injects at most one fault per armed point. `abort` kills the
/// child mid-write — the crash the atomic-save and write-ahead protocols
/// must survive.
const FAULTS: &[&str] = &[
    "journal.append.write=err*1",
    "journal.append.write=torn(6)*1",
    "journal.append.write=abort*1",
    "journal.save.write=err*1",
    "snapshot.save.write=torn(64)*1",
    "snapshot.save.write=abort*1",
    "snapshot.encode=sleep(5)*1",
    "registry.spill=err*1",
];

struct Daemon {
    child: Child,
    client: MatchClient,
}

impl Daemon {
    fn spawn(dir: &Path) -> Self {
        let mut child = Command::new(env!("CARGO_BIN_EXE_matchd"))
            .args([
                "--addr",
                "127.0.0.1:0",
                "--tiers",
                "tiny",
                "--workers",
                "2",
                "--snapshot-dir",
            ])
            .arg(dir)
            .args(["--enable-failpoints", "--log-level", "off"])
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
            .expect("matchd spawns");
        let stderr = child.stderr.take().expect("stderr is piped");
        let mut reader = BufReader::new(stderr);
        let mut line = String::new();
        let addr = loop {
            line.clear();
            if reader.read_line(&mut line).unwrap_or(0) == 0 {
                panic!("matchd exited before announcing its address");
            }
            if let Some(rest) = line.split("listening on http://").nth(1) {
                break rest
                    .split_whitespace()
                    .next()
                    .expect("address after the scheme")
                    .to_string();
            }
        };
        // Keep draining stderr so a chatty child can never fill the pipe
        // and wedge itself.
        std::thread::spawn(move || {
            let mut sink = String::new();
            while reader.read_line(&mut sink).map(|n| n > 0).unwrap_or(false) {
                sink.clear();
            }
        });
        let client = MatchClient::new(addr.as_str()).expect("client resolves the child address");
        Daemon { child, client }
    }

    /// Reaps a crashed child; panics if it is still running (callers only
    /// reap after a connection-level failure).
    fn reap(mut self) {
        let _ = self.child.wait();
    }

    fn shutdown(mut self) {
        let _ = self.client.request("POST", "/shutdown", Some("{}"));
        let _ = self.child.wait();
    }
}

fn env_or(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn probe(title: &str, note: &str) -> MutateRequest {
    let mut infobox = Infobox::new("Infobox Filme");
    infobox.push(AttributeValue::text("nota", note));
    MutateRequest {
        entities: vec![Article::new(title, Language::Pt, "Filme", infobox)],
    }
}

fn temp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wm-chaos-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir creates");
    dir
}

#[test]
fn chaos_crash_consistency_survives_random_fault_injection() {
    let dir = temp_dir();
    let seeds = env_or("WIKIMATCH_CHAOS_SEEDS", 2);
    let steps = env_or("WIKIMATCH_CHAOS_STEPS", 6);

    let mut acked: Vec<String> = Vec::new();
    let mut crashes = 0u64;
    let mut daemon = Daemon::spawn(&dir);

    for seed in 0..seeds {
        let mut rng = Rng::new(seed + 1);
        for step in 0..steps {
            // Arm one random fault; a dead child means the previous step's
            // abort fired — restart on the same directory.
            let spec = *rng.pick(FAULTS);
            if daemon
                .client
                .post(
                    "/failpoints",
                    &FailpointsRequest {
                        spec: spec.to_string(),
                    },
                )
                .is_err()
            {
                crashes += 1;
                daemon.reap();
                daemon = Daemon::spawn(&dir);
                daemon
                    .client
                    .post(
                        "/failpoints",
                        &FailpointsRequest {
                            spec: spec.to_string(),
                        },
                    )
                    .expect("freshly restarted child arms the failpoint");
            }

            // A burst of unique-title upserts; only 200s count as acked.
            for i in 0..3 {
                let title = format!("chaos-{seed}-{step}-{i}");
                match daemon
                    .client
                    .post("/corpora/pt-tiny/entities", &probe(&title, "v1"))
                {
                    Ok(response) if response.status == 200 => acked.push(title),
                    Ok(_) => {} // 503 (e.g. not durable): withheld ack.
                    Err(_) => {
                        // The child died mid-request (abort): the mutation
                        // was never acked. Restart and carry on.
                        crashes += 1;
                        daemon.reap();
                        daemon = Daemon::spawn(&dir);
                    }
                }
            }

            // Occasionally exercise the snapshot path so save/abort
            // faults have something to tear.
            if rng.next().is_multiple_of(3) {
                let exercise = if rng.next().is_multiple_of(2) {
                    "/warm"
                } else {
                    "/evict"
                };
                if daemon
                    .client
                    .post(
                        exercise,
                        &CorpusRequest {
                            corpus: "pt-tiny".to_string(),
                        },
                    )
                    .is_err()
                {
                    crashes += 1;
                    daemon.reap();
                    daemon = Daemon::spawn(&dir);
                }
            }
        }
    }
    // End of the storm: whatever state the last child is in, kill it hard
    // (one more simulated crash) and verify from a clean boot.
    let _ = daemon.child.kill();
    daemon.reap();

    // ---- Invariant 3 setup: a fresh child over the surviving directory.
    // Its first build recovers the journal (quarantining torn tails) and
    // serves the corpus.
    let mut daemon = Daemon::spawn(&dir);
    let served = daemon
        .client
        .post(
            "/align",
            &AlignRequest {
                corpus: "pt-tiny".to_string(),
                type_id: None,
            },
        )
        .expect("clean child serves after the storm");
    assert_eq!(served.status, 200, "{}", served.body);
    let served: AlignResponse = serde_json::from_str(&served.body).expect("align body parses");
    daemon.shutdown();

    // ---- Invariant 2: no torn artifact is accepted. The journal (if any
    // mutation survived) strict-loads, the snapshot (if any spill landed)
    // strict-loads, and the startup sweep left no atomic-save temp files.
    for entry in std::fs::read_dir(&dir).expect("chaos dir lists") {
        let name = entry.expect("dir entry").file_name();
        let name = name.to_string_lossy();
        assert!(
            !name.contains(".tmp-"),
            "torn atomic-save temp survived the startup sweep: {name}"
        );
    }
    let snap = dir.join("pt-tiny.snap");
    if snap.is_file() {
        EngineSnapshot::load(&snap).expect("surviving snapshot is whole, not torn");
    }
    let spec = CorpusSpec::tier(Language::Pt, "tiny").expect("tiny tier exists");
    let pristine = spec.dataset();
    let journal_path = dir.join("pt-tiny.journal");
    let journal = if journal_path.is_file() {
        DeltaJournal::load(&journal_path).expect("surviving journal strict-loads after recovery")
    } else {
        DeltaJournal::new(corpus_fingerprint(&pristine))
    };
    assert_eq!(
        journal.base_fingerprint,
        corpus_fingerprint(&pristine),
        "journal lineage no longer roots at the pristine dataset"
    );

    // ---- Invariant 1: no acked mutation lost. Replay the journal over
    // pristine, verifying every record's fingerprint, then check that
    // every acked title is present. (Compaction may have folded the chain
    // into one composed record; title presence is compaction-invariant.)
    let mut replayed = pristine.clone();
    for record in &journal.records {
        record.delta.apply_to(&mut replayed.corpus);
        assert_eq!(
            corpus_fingerprint(&replayed),
            record.post_fingerprint,
            "journal record fails fingerprint verification on replay"
        );
    }
    let lost: Vec<&String> = acked
        .iter()
        .filter(|title| replayed.corpus.get_by_title(&Language::Pt, title).is_none())
        .collect();
    assert!(
        lost.is_empty(),
        "{} of {} acked mutations lost across {crashes} crashes: {lost:?}",
        lost.len(),
        acked.len()
    );

    // ---- Invariant 3: the answer the restarted server gave equals a cold
    // in-process rebuild over the replayed dataset, type by type.
    let engine = MatchEngine::builder(Arc::new(replayed)).build();
    assert!(!served.alignments.is_empty());
    for alignment in &served.alignments {
        let reference = engine
            .align(&alignment.type_id)
            .expect("served type exists in the rebuilt engine")
            .cross_pairs();
        assert_eq!(
            alignment.pairs, reference,
            "served alignment of type {:?} diverges from a clean rebuild",
            alignment.type_id
        );
    }
    eprintln!(
        "chaos: {} acked mutations, {} journal records, {crashes} crashes, 0 lost",
        acked.len(),
        journal.len()
    );
    let _ = std::fs::remove_dir_all(&dir);
}
