//! The restart-without-rebuild flow over real sockets: a `matchd`-shaped
//! server with a snapshot directory warms a corpus (writing through to
//! disk), shuts down, and a *new* server over the same directory serves the
//! byte-identical alignment without building a single artifact.

use std::sync::Arc;

use wiki_corpus::{Language, SyntheticConfig};
use wiki_serve::client::MatchClient;
use wiki_serve::protocol::{AlignRequest, CorpusRequest, StatsResponse, WarmResponse};
use wiki_serve::registry::{CorpusSpec, Registry};
use wiki_serve::server::{MatchServer, ServerConfig};
use wikimatch::ComputeMode;

fn tiny_spec(name: &str) -> CorpusSpec {
    CorpusSpec {
        name: name.to_string(),
        language: Language::Pt,
        config: SyntheticConfig::tiny(),
    }
}

fn boot_with_dir(dir: &std::path::Path) -> (MatchServer, MatchClient) {
    let registry = Arc::new(Registry::new(2, ComputeMode::default()).with_snapshot_dir(dir));
    registry.register_all(vec![tiny_spec("pt-tiny")]);
    let server = MatchServer::start(
        registry,
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_depth: 64,
        },
    )
    .expect("server binds an ephemeral port");
    let client = MatchClient::new(server.addr()).expect("client resolves the server address");
    (server, client)
}

#[test]
fn matchd_restart_serves_from_disk_without_rebuilding() {
    let dir = std::env::temp_dir().join(format!("wm-serve-persist-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // ---- First process: warm the corpus; `warm` writes through to disk.
    let (server, mut client) = boot_with_dir(&dir);
    let warmed: WarmResponse = client
        .post(
            "/warm",
            &CorpusRequest {
                corpus: "pt-tiny".to_string(),
            },
        )
        .unwrap()
        .json()
        .unwrap();
    assert!(warmed.cached_types > 0);
    let align_request = AlignRequest {
        corpus: "pt-tiny".to_string(),
        type_id: Some("film".to_string()),
    };
    let first_body = client.post("/align", &align_request).unwrap().body;
    let stats: StatsResponse = client.get("/stats").unwrap().json().unwrap();
    assert_eq!(
        stats.registry.snapshot_dir.as_deref(),
        dir.to_str(),
        "stats advertise the disk tier"
    );
    assert_eq!(stats.registry.corpora[0].snapshot_saves, 1);
    server.shutdown();
    assert!(dir.join("pt-tiny.snap").is_file(), "warm wrote a snapshot");

    // ---- Second process: a brand-new registry over the same directory.
    let (server, mut client) = boot_with_dir(&dir);
    let second_body = client.post("/align", &align_request).unwrap().body;
    assert_eq!(
        second_body, first_body,
        "restored alignment diverges from the one served before the restart"
    );
    let stats: StatsResponse = client.get("/stats").unwrap().json().unwrap();
    let corpus = &stats.registry.corpora[0];
    assert_eq!(
        corpus.snapshot_loads, 1,
        "cold request did not hit the disk tier"
    );
    assert_eq!(corpus.builds, 1);
    let engine = corpus.engine.as_ref().expect("session resident");
    assert_eq!(
        engine.artifact_builds, 0,
        "warm start recomputed artifacts instead of loading them"
    );
    assert_eq!(engine.cached_types, warmed.cached_types);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn eviction_spills_over_the_wire_and_reload_skips_builds() {
    let dir = std::env::temp_dir().join(format!("wm-serve-evict-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (server, mut client) = boot_with_dir(&dir);

    // Build one type's artifacts, then evict (spilling them).
    let align_request = AlignRequest {
        corpus: "pt-tiny".to_string(),
        type_id: Some("film".to_string()),
    };
    let before = client.post("/align", &align_request).unwrap().body;
    client
        .post(
            "/evict",
            &CorpusRequest {
                corpus: "pt-tiny".to_string(),
            },
        )
        .unwrap();
    // The next request restores the spilled session from disk.
    let after = client.post("/align", &align_request).unwrap().body;
    assert_eq!(after, before);
    let stats: StatsResponse = client.get("/stats").unwrap().json().unwrap();
    let corpus = &stats.registry.corpora[0];
    assert_eq!(corpus.snapshot_saves, 1);
    assert_eq!(corpus.snapshot_loads, 1);
    assert_eq!(
        corpus.engine.as_ref().expect("resident").artifact_builds,
        0,
        "the restored session rebuilt what the eviction had spilled"
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
