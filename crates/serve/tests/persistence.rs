//! The restart-without-rebuild flow over real sockets: a `matchd`-shaped
//! server with a snapshot directory warms a corpus (writing through to
//! disk), shuts down, and a *new* server over the same directory serves the
//! byte-identical alignment without building a single artifact.

use std::sync::Arc;

use wiki_corpus::{Article, AttributeValue, Infobox, Language, SyntheticConfig};
use wiki_serve::client::MatchClient;
use wiki_serve::protocol::{
    AlignRequest, CorpusRequest, MutateRequest, MutateResponse, StatsResponse, WarmResponse,
};
use wiki_serve::registry::{CorpusSpec, Registry};
use wiki_serve::server::{MatchServer, ServerConfig};
use wikimatch::ComputeMode;

fn tiny_spec(name: &str) -> CorpusSpec {
    CorpusSpec {
        name: name.to_string(),
        language: Language::Pt,
        config: SyntheticConfig::tiny(),
    }
}

fn boot_with_dir(dir: &std::path::Path) -> (MatchServer, MatchClient) {
    let registry = Arc::new(Registry::new(2, ComputeMode::default()).with_snapshot_dir(dir));
    registry.register_all(vec![tiny_spec("pt-tiny")]);
    let server = MatchServer::start(
        registry,
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_depth: 64,
            ..ServerConfig::default()
        },
    )
    .expect("server binds an ephemeral port");
    let client = MatchClient::new(server.addr()).expect("client resolves the server address");
    (server, client)
}

#[test]
fn matchd_restart_serves_from_disk_without_rebuilding() {
    let dir = std::env::temp_dir().join(format!("wm-serve-persist-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // ---- First process: warm the corpus; `warm` writes through to disk.
    let (server, mut client) = boot_with_dir(&dir);
    let warmed: WarmResponse = client
        .post(
            "/warm",
            &CorpusRequest {
                corpus: "pt-tiny".to_string(),
            },
        )
        .unwrap()
        .json()
        .unwrap();
    assert!(warmed.cached_types > 0);
    let align_request = AlignRequest {
        corpus: "pt-tiny".to_string(),
        type_id: Some("film".to_string()),
    };
    let first_body = client.post("/align", &align_request).unwrap().body;
    let stats: StatsResponse = client.get("/stats").unwrap().json().unwrap();
    assert_eq!(
        stats.registry.snapshot_dir.as_deref(),
        dir.to_str(),
        "stats advertise the disk tier"
    );
    assert_eq!(stats.registry.corpora[0].snapshot_saves, 1);
    server.shutdown();
    assert!(dir.join("pt-tiny.snap").is_file(), "warm wrote a snapshot");

    // ---- Second process: a brand-new registry over the same directory.
    let (server, mut client) = boot_with_dir(&dir);
    let second_body = client.post("/align", &align_request).unwrap().body;
    assert_eq!(
        second_body, first_body,
        "restored alignment diverges from the one served before the restart"
    );
    let stats: StatsResponse = client.get("/stats").unwrap().json().unwrap();
    let corpus = &stats.registry.corpora[0];
    assert_eq!(
        corpus.snapshot_loads, 1,
        "cold request did not hit the disk tier"
    );
    assert_eq!(corpus.builds, 1);
    let engine = corpus.engine.as_ref().expect("session resident");
    assert_eq!(
        engine.artifact_builds, 0,
        "warm start recomputed artifacts instead of loading them"
    );
    assert_eq!(engine.cached_types, warmed.cached_types);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// An upsert request for one probe article whose value varies by `step`.
fn probe_request(step: usize) -> MutateRequest {
    let mut infobox = Infobox::new("Infobox Filme");
    infobox.push(AttributeValue::text("nota", format!("edição {step}")));
    MutateRequest {
        entities: vec![Article::new(
            "Sonda Persistente",
            Language::Pt,
            "Filme",
            infobox,
        )],
    }
}

#[test]
fn mutations_survive_a_restart_through_the_write_ahead_journal() {
    let dir = std::env::temp_dir().join(format!("wm-serve-journal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // ---- First process: warm (snapshot at the pristine base), then mutate
    // twice; the mutations live only in the write-ahead journal.
    let (server, mut client) = boot_with_dir(&dir);
    client
        .post(
            "/warm",
            &CorpusRequest {
                corpus: "pt-tiny".to_string(),
            },
        )
        .unwrap();
    for step in 0..2 {
        let response = client
            .post("/corpora/pt-tiny/entities", &probe_request(step))
            .unwrap();
        assert_eq!(response.status, 200, "{}", response.body);
    }
    let tip: MutateResponse = client
        .post("/corpora/pt-tiny/entities", &probe_request(2))
        .unwrap()
        .json()
        .unwrap();
    let align_request = AlignRequest {
        corpus: "pt-tiny".to_string(),
        type_id: Some("film".to_string()),
    };
    let mutated_body = client.post("/align", &align_request).unwrap().body;
    server.shutdown();
    assert!(dir.join("pt-tiny.journal").is_file(), "journal on disk");

    // ---- Second process: the snapshot restores at the base and the three
    // journal records replay through the incremental patcher — the mutated
    // alignment is served with zero artifact builds.
    let (server, mut client) = boot_with_dir(&dir);
    let restored_body = client.post("/align", &align_request).unwrap().body;
    assert_eq!(
        restored_body, mutated_body,
        "restart lost journaled mutations"
    );
    let stats: StatsResponse = client.get("/stats").unwrap().json().unwrap();
    let corpus = &stats.registry.corpora[0];
    assert_eq!(corpus.snapshot_loads, 1, "snapshot discarded, not replayed");
    assert_eq!(corpus.journal_records, 3);
    let engine = corpus.engine.as_ref().expect("session resident");
    assert_eq!(engine.artifact_builds, 0, "base + replay rebuilt artifacts");
    assert_eq!(engine.deltas_applied, 3);

    // The restored lineage keeps chaining: the next mutation's parent is
    // the pre-restart tip.
    let next: MutateResponse = client
        .post("/corpora/pt-tiny/entities", &probe_request(3))
        .unwrap()
        .json()
        .unwrap();
    assert_eq!(next.fingerprint_before, tip.fingerprint);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_diverged_journal_falls_back_to_the_pristine_corpus() {
    let dir = std::env::temp_dir().join(format!("wm-serve-diverged-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // First process: snapshot + one journaled mutation.
    let (server, mut client) = boot_with_dir(&dir);
    client
        .post(
            "/warm",
            &CorpusRequest {
                corpus: "pt-tiny".to_string(),
            },
        )
        .unwrap();
    let align_request = AlignRequest {
        corpus: "pt-tiny".to_string(),
        type_id: Some("film".to_string()),
    };
    let pristine_body = client.post("/align", &align_request).unwrap().body;
    client
        .post("/corpora/pt-tiny/entities", &probe_request(0))
        .unwrap();
    server.shutdown();

    // Corrupt the journal on disk (flip a byte in its last record).
    let journal_path = dir.join("pt-tiny.journal");
    let mut bytes = std::fs::read(&journal_path).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x40;
    std::fs::write(&journal_path, &bytes).unwrap();

    // Second process: the torn record is dropped, the surviving (empty)
    // prefix replays, and the pristine snapshot still warm-starts — a
    // damaged journal degrades to losing its tail, never to a cold rebuild
    // or a wedged corpus.
    let (server, mut client) = boot_with_dir(&dir);
    let restored_body = client.post("/align", &align_request).unwrap().body;
    assert_eq!(restored_body, pristine_body);
    let stats: StatsResponse = client.get("/stats").unwrap().json().unwrap();
    let corpus = &stats.registry.corpora[0];
    assert_eq!(corpus.snapshot_loads, 1, "snapshot should still be used");
    assert_eq!(corpus.journal_records, 0, "corrupt record must be dropped");
    assert_eq!(corpus.engine.as_ref().expect("resident").artifact_builds, 0);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn eviction_spills_over_the_wire_and_reload_skips_builds() {
    let dir = std::env::temp_dir().join(format!("wm-serve-evict-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (server, mut client) = boot_with_dir(&dir);

    // Build one type's artifacts, then evict (spilling them).
    let align_request = AlignRequest {
        corpus: "pt-tiny".to_string(),
        type_id: Some("film".to_string()),
    };
    let before = client.post("/align", &align_request).unwrap().body;
    client
        .post(
            "/evict",
            &CorpusRequest {
                corpus: "pt-tiny".to_string(),
            },
        )
        .unwrap();
    // The next request restores the spilled session from disk.
    let after = client.post("/align", &align_request).unwrap().body;
    assert_eq!(after, before);
    let stats: StatsResponse = client.get("/stats").unwrap().json().unwrap();
    let corpus = &stats.registry.corpora[0];
    assert_eq!(corpus.snapshot_saves, 1);
    assert_eq!(corpus.snapshot_loads, 1);
    assert_eq!(
        corpus.engine.as_ref().expect("resident").artifact_builds,
        0,
        "the restored session rebuilt what the eviction had spilled"
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
