//! Malformed-input integration test: whatever bytes a client throws at
//! `matchd`, the answer is a JSON error response — never a dead worker.
//! The server is booted with a deliberately small worker pool and hammered
//! with more bad requests than it has workers; if any of them killed a
//! thread, the healthy requests at the end would hang or fail.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use wiki_corpus::{Language, SyntheticConfig};
use wiki_serve::client::MatchClient;
use wiki_serve::protocol::{AlignRequest, AlignResponse, HealthResponse};
use wiki_serve::registry::{CorpusSpec, Registry};
use wiki_serve::server::{MatchServer, ServerConfig};
use wikimatch::ComputeMode;

const WORKERS: usize = 2;

fn boot() -> (MatchServer, MatchClient) {
    let registry = Arc::new(Registry::new(2, ComputeMode::default()));
    registry.register_all(vec![CorpusSpec {
        name: "pt-tiny".to_string(),
        language: Language::Pt,
        config: SyntheticConfig::tiny(),
    }]);
    let server = MatchServer::start(
        registry,
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: WORKERS,
            queue_depth: 64,
            ..ServerConfig::default()
        },
    )
    .expect("server binds an ephemeral port");
    let client = MatchClient::new(server.addr()).expect("client resolves the server address");
    (server, client)
}

/// Sends raw request bytes (so invalid UTF-8 and broken framing are
/// possible) and returns `(status, body)`. `Connection: close` is always
/// requested, so reading to EOF captures the whole response.
fn raw_post(addr: std::net::SocketAddr, path: &str, body: &[u8]) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let head = format!(
        "POST {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(body).expect("write body");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read response");
    let text = String::from_utf8_lossy(&response).into_owned();
    let status = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {text:?}"));
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

#[test]
fn malformed_requests_get_json_errors_and_never_kill_workers() {
    let (server, mut client) = boot();
    let addr = server.addr();

    // Every malformed request the protocol can meet, each expected status.
    let cases: Vec<(&str, Vec<u8>, u16)> = vec![
        // Body is not JSON at all.
        ("/align", b"this is not json".to_vec(), 400),
        // Body is JSON of the wrong shape.
        ("/align", br#"{"corpus": 42}"#.to_vec(), 400),
        ("/align", br#"[1, 2, 3]"#.to_vec(), 400),
        // Missing required field.
        ("/matchers", br#"{"corpus": "pt-tiny"}"#.to_vec(), 400),
        // Body is not valid UTF-8.
        ("/align", vec![0xFF, 0xFE, 0x80, 0x80], 400),
        // Empty body where a JSON object is required.
        ("/translate-query", Vec::new(), 400),
        // Unknown corpus / matcher / route.
        (
            "/align",
            br#"{"corpus": "no-such-corpus", "type_id": null}"#.to_vec(),
            404,
        ),
        (
            "/matchers",
            br#"{"corpus": "pt-tiny", "matcher": "no-such-matcher", "type_id": null}"#.to_vec(),
            400,
        ),
        (
            "/align",
            br#"{"corpus": "pt-tiny", "type_id": "no-such-type"}"#.to_vec(),
            404,
        ),
        // Unparseable c-query.
        (
            "/translate-query",
            br#"{"corpus": "pt-tiny", "query": "((((", "top_k": null}"#.to_vec(),
            400,
        ),
        ("/no-such-route", Vec::new(), 404),
    ];

    // More bad requests than worker threads: a single panicking worker per
    // bad request would exhaust the pool well before the end.
    assert!(cases.len() > WORKERS + 2);
    for (path, body, expected) in &cases {
        let (status, response_body) = raw_post(addr, path, body);
        assert_eq!(status, *expected, "{path} with body {body:?}");
        assert!(
            response_body.contains("\"error\""),
            "{path}: non-JSON error envelope {response_body:?}"
        );
    }

    // The pool still serves: health check plus a real alignment.
    let health: HealthResponse = client.get("/healthz").unwrap().json().unwrap();
    assert_eq!(health.status, "ok");
    let aligned: AlignResponse = client
        .post(
            "/align",
            &AlignRequest {
                corpus: "pt-tiny".to_string(),
                type_id: Some("film".to_string()),
            },
        )
        .unwrap()
        .json()
        .unwrap();
    assert_eq!(aligned.alignments.len(), 1);
    assert!(!aligned.alignments[0].pairs.is_empty());
    server.shutdown();
}

#[test]
fn broken_framing_is_rejected_without_hanging_the_pool() {
    let (server, mut client) = boot();
    let addr = server.addr();

    // A Content-Length promising more bytes than are sent: the read times
    // out server-side and the connection is dropped; follow-up requests on
    // fresh connections must still be served immediately.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(b"POST /align HTTP/1.1\r\nHost: x\r\nContent-Length: 50\r\n\r\nshort")
        .unwrap();
    // Don't wait for the timeout — just verify the server keeps serving
    // while that connection dangles.
    let health: HealthResponse = client.get("/healthz").unwrap().json().unwrap();
    assert_eq!(health.status, "ok");
    drop(stream);
    server.shutdown();
}
