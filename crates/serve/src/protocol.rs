//! The JSON-over-HTTP protocol types of `matchd`.
//!
//! Every endpoint consumes and produces one of the structs below, so the
//! wire format is defined in exactly one place and shared by the server,
//! the [`crate::client::MatchClient`], `matchbench` and the integration
//! tests. See `docs/ARCHITECTURE.md` ("Serving") for the endpoint table.

use serde::{Deserialize, Serialize};

use crate::registry::{CorpusSpec, RegistryStats};
use wiki_corpus::{Article, Language};
use wiki_query::{Answer, CQuery};

/// The standard error envelope of every non-2xx response.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ErrorBody {
    /// Human-readable description of what went wrong.
    pub error: String,
}

/// `GET /healthz` response.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HealthResponse {
    /// Always `"ok"` when the server answers at all.
    pub status: String,
    /// Service name (`"matchd"`).
    pub service: String,
    /// Crate version.
    pub version: String,
}

/// `POST /align` request: run the engine's WikiMatch configuration over one
/// type (or all types when `type_id` is omitted).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AlignRequest {
    /// Registry name of the corpus.
    pub corpus: String,
    /// Entity type to align; `None` aligns every type of the dataset.
    pub type_id: Option<String>,
}

/// `POST /matchers` request: run a registered [`wikimatch::SchemaMatcher`]
/// by name over one type (or all types).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MatcherRequest {
    /// Registry name of the corpus.
    pub corpus: String,
    /// Matcher name or label as listed by `GET /matchers`
    /// (case-insensitive; e.g. `"Bouma"`, `"LSI top-3"`).
    pub matcher: String,
    /// Entity type to align; `None` aligns every type of the dataset.
    pub type_id: Option<String>,
}

/// Cross-language pairs of one entity type.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TypePairs {
    /// Entity type identifier.
    pub type_id: String,
    /// `(foreign attribute, English attribute)` correspondences.
    pub pairs: Vec<(String, String)>,
}

/// Response of `POST /align` and `POST /matchers`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AlignResponse {
    /// Corpus the alignment ran over.
    pub corpus: String,
    /// Label of the matcher that produced the pairs.
    pub matcher: String,
    /// Per-type correspondences, in dataset type order.
    pub alignments: Vec<TypePairs>,
}

/// `POST /translate-query` request.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TranslateRequest {
    /// Registry name of the corpus.
    pub corpus: String,
    /// The c-query in the corpus' foreign language, in the workspace's
    /// textual form, e.g. `filme(direção=?, país="Estados Unidos")`.
    pub query: String,
    /// When > 0, also answer the translated query against the English
    /// edition and return the top-`k` candidates. Defaults to 0.
    pub top_k: Option<usize>,
}

/// Response of `POST /translate-query`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TranslateResponse {
    /// Corpus the translation ran over.
    pub corpus: String,
    /// The parsed source query.
    pub source: CQuery,
    /// The translated English query (untranslatable constraints relaxed).
    pub translated: CQuery,
    /// Constraints translated successfully.
    pub translated_constraints: usize,
    /// Constraints dropped because no correspondence was available.
    pub relaxed_constraints: usize,
    /// Top-`k` answers over the English edition (empty when `top_k` is 0).
    pub answers: Vec<Answer>,
}

/// `GET /corpora` response.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CorporaResponse {
    /// The registered corpora, in registration order.
    pub corpora: Vec<CorpusSpec>,
}

/// `GET /matchers` response.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MatchersResponse {
    /// Labels accepted by `POST /matchers`.
    pub matchers: Vec<String>,
}

/// Request body of `POST /warm` and `POST /evict`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CorpusRequest {
    /// Registry name of the corpus.
    pub corpus: String,
}

/// `POST /warm` response.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WarmResponse {
    /// Corpus that was warmed.
    pub corpus: String,
    /// Per-type artifact sets now cached (every type of the dataset).
    pub cached_types: usize,
}

/// `POST /evict` response.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvictResponse {
    /// Corpus the eviction targeted.
    pub corpus: String,
    /// Whether a resident session was actually dropped.
    pub evicted: bool,
}

/// `POST /corpora/{name}/entities` request: insert-or-update entities.
///
/// Each article upserts by its `(language, title)` key — a live article is
/// replaced in place, an unknown key is inserted. The `id` field is
/// assigned by the corpus and ignored on the way in (send `0`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MutateRequest {
    /// Articles to upsert, applied in order as one atomic delta.
    pub entities: Vec<Article>,
}

/// One `(language, title)` key, as deleted by
/// `DELETE /corpora/{name}/entities`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EntityKey {
    /// Language edition of the article.
    pub language: Language,
    /// Exact article title.
    pub title: String,
}

/// `DELETE /corpora/{name}/entities` request: tombstone entities.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeleteRequest {
    /// Keys to remove, applied in order as one atomic delta (unknown keys
    /// are no-ops and simply don't count under `removed`).
    pub entities: Vec<EntityKey>,
}

/// Response of `POST` / `DELETE` on `/corpora/{name}/entities`: what the
/// delta did to the live session.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MutateResponse {
    /// Corpus the mutation targeted.
    pub corpus: String,
    /// Articles newly inserted.
    pub inserted: usize,
    /// Live articles replaced in place.
    pub updated: usize,
    /// Articles tombstoned.
    pub removed: usize,
    /// Cached per-type artifact sets incrementally patched (cached types
    /// the delta provably cannot reach carry over untouched and are not
    /// counted; uncached types stay lazy and build against the mutated
    /// corpus on first use).
    pub types_patched: usize,
    /// Similarity pairs recomputed across the patched types; every other
    /// pair kept its exact bits.
    pub rows_recomputed: u64,
    /// Corpus fingerprint before the delta, as 16 hex digits (the journal
    /// record's parent).
    pub fingerprint_before: String,
    /// Corpus fingerprint after the delta, as 16 hex digits.
    pub fingerprint: String,
}

/// Counters of the HTTP layer itself (one per server, not per corpus).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServerCounters {
    /// Connections accepted off the listener and queued for a worker
    /// (shed connections count under `rejected` instead).
    pub accepted: u64,
    /// Requests answered (any status).
    pub handled: u64,
    /// Connections rejected with 503 because the request queue was full.
    pub rejected: u64,
    /// Requests answered 503 by admission control because their measured
    /// queue wait exceeded the `--shed-queue-ms` budget (counted separately
    /// from queue-full `rejected`).
    pub shed: u64,
    /// Requests answered 504 because the `--deadline-ms` compute deadline
    /// expired between pipeline phases.
    pub deadline_expired: u64,
    /// Connections dropped outside the normal request/response flow:
    /// accept errors, failed stream clones, mid-request read failures and
    /// response write failures (`/metrics` splits these by `reason`).
    pub connections_dropped: u64,
}

/// `GET /readyz` response (also the degraded 503 body).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReadyResponse {
    /// `"ready"` (200) or `"degraded"` (503).
    pub status: String,
    /// Why readiness degraded (empty when ready): e.g.
    /// `"shed 3 requests in the last 5s"` or `"queue 64/64"`.
    pub reason: String,
    /// Connections currently waiting in the queue.
    pub queue_len: u64,
    /// Bound of the pending-connection queue.
    pub queue_depth: usize,
    /// Requests shed by admission control since startup.
    pub shed: u64,
}

/// Structured body of a 504 deadline expiry.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeadlineExceededBody {
    /// The standard error envelope text.
    pub error: String,
    /// The configured per-request budget.
    pub deadline_ms: u64,
    /// Time actually elapsed when the deadline check fired.
    pub elapsed_ms: u64,
    /// Pipeline phase boundary that observed the expiry
    /// (`"lookup"`, `"compute"`, `"serialize"`).
    pub phase: String,
}

/// `POST /failpoints` request: arm failpoints from a spec string (see
/// `wiki_fault` for the `name=action[*T][/E]` syntax). Test-only; the
/// endpoint answers 403 unless matchd runs with `--enable-failpoints`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FailpointsRequest {
    /// Spec string, e.g. `"journal.append.write=torn(12)*1"`.
    pub spec: String,
}

/// One armed failpoint, as listed by `GET /failpoints`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FailpointStatus {
    /// Failpoint name.
    pub name: String,
    /// Re-parseable armed spec, e.g. `"torn(12)*1"`.
    pub spec: String,
    /// Hook evaluations observed while armed.
    pub hits: u64,
    /// Times the action actually fired.
    pub fired: u64,
}

/// Response of `GET`/`POST`/`DELETE /failpoints`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FailpointsResponse {
    /// Every currently armed failpoint.
    pub points: Vec<FailpointStatus>,
}

/// `GET /stats` response.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StatsResponse {
    /// HTTP-layer counters.
    pub server: ServerCounters,
    /// Seconds since the server started.
    pub uptime_secs: u64,
    /// Worker threads serving requests.
    pub workers: usize,
    /// Bound of the pending-connection queue.
    pub queue_depth: usize,
    /// Connections currently waiting in the queue (a point-in-time gauge;
    /// `queue_depth` is the limit).
    pub queue_len: u64,
    /// Registry snapshot (per-corpus hits/misses/builds/evictions and
    /// engine counters).
    pub registry: RegistryStats,
}
