//! A minimal hand-rolled HTTP/1.1 layer over `std::net`.
//!
//! Implements exactly the subset `matchd` and `matchbench` need: request
//! parsing (request line, headers, `Content-Length` bodies), keep-alive
//! semantics, and JSON responses with correct framing. No chunked encoding,
//! no TLS, no HTTP/2 — the protocol surface is deliberately small enough to
//! audit in one sitting, because the environment has no HTTP crates.

use std::io::{self, BufRead, Read, Write};

/// Hard cap on a request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Hard cap on a request body.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-case method (`GET`, `POST`, ...).
    pub method: String,
    /// Decoded path without the query string (e.g. `/align`).
    pub path: String,
    /// Raw query string after `?`, if any.
    pub query: Option<String>,
    /// Headers with lower-cased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
}

impl Request {
    /// First value of a header (name compared case-insensitively).
    pub fn header(&self, name: &str) -> Option<&str> {
        let wanted = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == wanted)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8, or `None` if it is not valid UTF-8.
    pub fn body_utf8(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }
}

/// Why reading a request off a connection stopped.
#[derive(Debug)]
pub enum RequestError {
    /// The peer closed the connection between requests (clean keep-alive
    /// end) — not an error condition.
    Closed,
    /// I/O failure (includes read timeouts, surfaced as `WouldBlock` /
    /// `TimedOut`).
    Io(io::Error),
    /// The request was malformed or exceeded a limit; respond with this
    /// status and message, then close.
    Bad(u16, String),
}

impl From<io::Error> for RequestError {
    fn from(err: io::Error) -> Self {
        RequestError::Io(err)
    }
}

/// Reads one request from a buffered connection.
pub fn read_request(reader: &mut impl BufRead) -> Result<Request, RequestError> {
    let mut head_bytes = 0usize;
    let request_line = match read_line(reader, &mut head_bytes)? {
        Some(line) => line,
        None => return Err(RequestError::Closed),
    };
    let mut parts = request_line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) => (m.to_ascii_uppercase(), t.to_string(), v.to_string()),
        _ => {
            return Err(RequestError::Bad(
                400,
                format!("malformed request line {request_line:?}"),
            ))
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(RequestError::Bad(
            505,
            format!("unsupported protocol version {version:?}"),
        ));
    }

    let mut headers = Vec::new();
    loop {
        let line = match read_line(reader, &mut head_bytes)? {
            Some(line) => line,
            None => {
                return Err(RequestError::Bad(
                    400,
                    "connection closed mid-headers".to_string(),
                ))
            }
        };
        if line.is_empty() {
            break;
        }
        match line.split_once(':') {
            Some((name, value)) => {
                headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
            }
            None => return Err(RequestError::Bad(400, format!("malformed header {line:?}"))),
        }
    }

    let header = |name: &str| {
        headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    };
    let keep_alive = match header("connection").map(str::to_ascii_lowercase) {
        Some(c) if c.contains("close") => false,
        Some(c) if c.contains("keep-alive") => true,
        _ => version == "HTTP/1.1",
    };

    // Only `Content-Length` framing is implemented. A chunked body we
    // silently ignored would desync the request stream (its chunk lines
    // would parse as the next request) — reject it outright.
    if header("transfer-encoding").is_some() {
        return Err(RequestError::Bad(
            501,
            "Transfer-Encoding is not supported; send a Content-Length body".to_string(),
        ));
    }

    let content_length = match header("content-length") {
        Some(raw) => raw
            .parse::<usize>()
            .map_err(|_| RequestError::Bad(400, format!("bad Content-Length {raw:?}")))?,
        None => 0,
    };
    if content_length > MAX_BODY_BYTES {
        return Err(RequestError::Bad(
            413,
            format!("body of {content_length} bytes exceeds the {MAX_BODY_BYTES} byte limit"),
        ));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;

    let (path, query) = match target.split_once('?') {
        Some((path, query)) => (path.to_string(), Some(query.to_string())),
        None => (target, None),
    };

    Ok(Request {
        method,
        path,
        query,
        headers,
        body,
        keep_alive,
    })
}

/// Reads one CRLF (or LF) terminated line; `None` on immediate EOF.
///
/// The read itself is capped at the head budget remaining, so a peer that
/// streams bytes without ever sending a newline cannot buffer more than
/// [`MAX_HEAD_BYTES`] into memory before being rejected.
fn read_line(
    reader: &mut impl BufRead,
    head_bytes: &mut usize,
) -> Result<Option<String>, RequestError> {
    let remaining = (MAX_HEAD_BYTES + 1).saturating_sub(*head_bytes);
    let mut line = Vec::new();
    // UFCS pins `Self = &mut impl BufRead`: plain `reader.take(..)` would
    // auto-deref and try to move the reader itself.
    let mut limited = Read::take(&mut *reader, remaining as u64);
    let read = limited.read_until(b'\n', &mut line)?;
    if read == 0 {
        return Ok(None);
    }
    *head_bytes += read;
    let unterminated_at_cap = read == remaining && line.last() != Some(&b'\n');
    if *head_bytes > MAX_HEAD_BYTES || unterminated_at_cap {
        return Err(RequestError::Bad(
            431,
            format!("request head exceeds the {MAX_HEAD_BYTES} byte limit"),
        ));
    }
    while matches!(line.last(), Some(b'\n' | b'\r')) {
        line.pop();
    }
    String::from_utf8(line)
        .map(Some)
        .map_err(|_| RequestError::Bad(400, "non-UTF-8 request head".to_string()))
}

/// An HTTP response ready to be written.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Body text (JSON for every `matchd` endpoint).
    pub body: String,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra headers beyond the framing set (e.g. `Retry-After` on a shed
    /// 503). Values must already be valid header text.
    pub headers: Vec<(&'static str, String)>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            body: body.into(),
            content_type: "application/json",
            headers: Vec::new(),
        }
    }

    /// A plain-text response in the Prometheus exposition content type
    /// (`GET /metrics`).
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            body: body.into(),
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            headers: Vec::new(),
        }
    }

    /// A JSON error response with the standard `{"error": ...}` envelope.
    pub fn error(status: u16, message: &str) -> Self {
        let body = serde_json::to_string(&crate::protocol::ErrorBody {
            error: message.to_string(),
        })
        .unwrap_or_else(|_| "{\"error\":\"internal error\"}".to_string());
        Self::json(status, body)
    }

    /// Adds an extra response header (builder style).
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Self {
        self.headers.push((name, value.into()));
        self
    }

    /// Writes the response with correct framing; `keep_alive` controls the
    /// `Connection` header.
    pub fn write(&self, writer: &mut impl Write, keep_alive: bool) -> io::Result<()> {
        let reason = reason_phrase(self.status);
        let connection = if keep_alive { "keep-alive" } else { "close" };
        write!(
            writer,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
            self.status,
            reason,
            self.content_type,
            self.body.len(),
            connection
        )?;
        for (name, value) in &self.headers {
            write!(writer, "{name}: {value}\r\n")?;
        }
        writer.write_all(b"\r\n")?;
        writer.write_all(self.body.as_bytes())?;
        writer.flush()
    }
}

/// Canonical reason phrase for the status codes this server emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Request, RequestError> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_a_post_with_body_and_query() {
        let req = parse(
            "POST /align?verbose=1 HTTP/1.1\r\nHost: x\r\nContent-Length: 11\r\n\r\nhello world",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/align");
        assert_eq!(req.query.as_deref(), Some("verbose=1"));
        assert_eq!(req.body_utf8(), Some("hello world"));
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
        assert_eq!(req.header("HOST"), Some("x"));
    }

    #[test]
    fn connection_close_and_http10_disable_keep_alive() {
        let req = parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!req.keep_alive);
        let req = parse("GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(!req.keep_alive);
        let req = parse("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(req.keep_alive);
    }

    #[test]
    fn malformed_requests_are_rejected_with_a_status() {
        for (raw, status) in [
            ("nonsense\r\n\r\n", 400),
            ("GET / HTTP/2\r\n\r\n", 505),
            ("GET / HTTP/1.1\r\nbroken header\r\n\r\n", 400),
            ("GET / HTTP/1.1\r\nContent-Length: nope\r\n\r\n", 400),
            ("GET / HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n", 413),
            ("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", 501),
        ] {
            match parse(raw) {
                Err(RequestError::Bad(code, _)) => assert_eq!(code, status, "{raw:?}"),
                other => panic!("{raw:?} parsed as {other:?}"),
            }
        }
        assert!(matches!(parse(""), Err(RequestError::Closed)));
    }

    #[test]
    fn oversized_head_is_rejected() {
        let raw = format!(
            "GET / HTTP/1.1\r\nx: {}\r\n\r\n",
            "y".repeat(MAX_HEAD_BYTES)
        );
        assert!(matches!(parse(&raw), Err(RequestError::Bad(431, _))));
    }

    #[test]
    fn endless_unterminated_header_line_is_rejected_at_the_cap() {
        // A peer streaming header bytes without ever sending a newline must
        // be rejected once the head budget is exhausted — not buffered
        // unboundedly. 4× the cap stands in for an endless stream; the
        // reader stops within the budget, never reaching the tail.
        let raw = format!("GET / HTTP/1.1\r\nx: {}", "y".repeat(MAX_HEAD_BYTES * 4));
        assert!(matches!(parse(&raw), Err(RequestError::Bad(431, _))));
        // Same for a request line that never terminates.
        let raw = "G".repeat(MAX_HEAD_BYTES * 4);
        assert!(matches!(parse(&raw), Err(RequestError::Bad(431, _))));
    }

    #[test]
    fn responses_are_framed_with_content_length() {
        let mut out = Vec::new();
        Response::json(200, "{\"ok\":true}")
            .write(&mut out, true)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 11\r\n"), "{text}");
        assert!(text.contains("Connection: keep-alive\r\n"), "{text}");
        assert!(text.ends_with("{\"ok\":true}"), "{text}");

        let mut out = Vec::new();
        Response::error(404, "unknown route")
            .write(&mut out, false)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Connection: close"), "{text}");
        assert!(text.contains("unknown route"), "{text}");
    }

    #[test]
    fn keep_alive_reads_consecutive_requests() {
        let raw = "GET /a HTTP/1.1\r\n\r\nPOST /b HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi";
        let mut reader = BufReader::new(raw.as_bytes());
        let first = read_request(&mut reader).unwrap();
        assert_eq!(first.path, "/a");
        let second = read_request(&mut reader).unwrap();
        assert_eq!(second.path, "/b");
        assert_eq!(second.body_utf8(), Some("hi"));
        assert!(matches!(
            read_request(&mut reader),
            Err(RequestError::Closed)
        ));
    }
}
