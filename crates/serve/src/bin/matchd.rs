//! `matchd` — the WikiMatch matching daemon.
//!
//! Registers the synthetic scale-tier corpora (`pt-tiny` … `vi-large`) in a
//! [`Registry`] and serves the JSON-over-HTTP protocol until killed or told
//! to stop via `POST /shutdown`.
//!
//! ```text
//! matchd [--addr 127.0.0.1:8743] [--workers N] [--queue N] [--capacity N]
//!        [--mode pruned|dense|filtered[:T]|lsh[:BxR]]
//!        [--tiers tiny,small,medium,large,xlarge]
//!        [--warm corpus[,corpus...]] [--snapshot-dir DIR] [--persist]
//!        [--max-resident-mb N]
//!        [--deadline-ms N] [--shed-queue-ms N] [--enable-failpoints]
//!        [--log-level off|error|info|debug] [--slow-ms N]
//! ```

#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use wiki_serve::registry::{CorpusSpec, Registry};
use wiki_serve::server::{MatchServer, ServerConfig};
use wikimatch::ComputeMode;

const USAGE: &str = "matchd — WikiMatch matching daemon

USAGE:
    matchd [OPTIONS]

OPTIONS:
    --addr HOST:PORT   bind address (default 127.0.0.1:8743; port 0 = ephemeral)
    --workers N        worker threads (default: available parallelism)
    --queue N          pending-connection queue bound (default 256)
    --capacity N       resident engine sessions in the LRU (default 4)
    --mode MODE        similarity compute mode (default pruned):
                         pruned | dense           exact, snapshot-capable
                         filtered[:T]             sparse table at score
                                                  threshold T (default 0.6);
                                                  exact scores, no snapshots
                         lsh[:BxR]                approximate banded-SimHash
                                                  candidates, B bands x R rows
                                                  (default 16x4); no snapshots
    --tiers LIST       comma-separated scale tiers to register
                       (default tiny,small,medium,large; xlarge available)
    --warm LIST        comma-separated corpus names to warm at startup
    --snapshot-dir DIR enable the snapshot disk tier: cold corpora load
                       persisted artifacts from DIR instead of rebuilding,
                       evictions spill to DIR, --warm writes through
    --persist          also snapshot every resident session on graceful
                       shutdown (requires --snapshot-dir), so the next
                       start serves from disk without rebuilding
    --max-resident-mb N
                       out-of-core serving (requires --snapshot-dir):
                       snapshots are written in the directly-addressable
                       format and memory-mapped on load, and sessions are
                       evicted (their maps dropped) whenever materialized
                       bytes across residents exceed N megabytes, keeping
                       at least the most recent session resident
    --deadline-ms N    per-request compute deadline: a request still inside
                       the pipeline after N milliseconds answers 504 with a
                       structured body at the next phase boundary
                       (default 0: no deadline)
    --shed-queue-ms N  admission control: a compute request whose measured
                       queue wait exceeded N milliseconds is shed with
                       503 + Retry-After instead of computing on stale
                       demand (default 0: never shed); /readyz reports
                       degraded while shedding
    --enable-failpoints
                       serve the test-only /failpoints endpoint for
                       runtime fault injection (the WIKIMATCH_FAILPOINTS
                       env var arms failpoints at startup regardless)
    --log-level LEVEL  access-log verbosity: off | error | info | debug
                       (default error: 5xx and slow requests only; the
                       WIKIMATCH_LOG env var sets the default, the flag
                       wins). Logs are JSON lines on stderr.
    --slow-ms N        requests at/over N milliseconds total are marked
                       slow and logged even at error level (default 500;
                       0 disables the slow gate)
    --help             print this help

ENDPOINTS (JSON unless noted):
    GET  /healthz /livez /readyz /stats /corpora /matchers
    GET  /metrics          Prometheus text exposition
    GET/POST/DELETE /failpoints   fault injection (--enable-failpoints only)
    POST /align            {\"corpus\": \"pt-medium\", \"type_id\": \"film\"?}
    POST /matchers         {\"corpus\": ..., \"matcher\": \"Bouma\", \"type_id\"?}
    POST /translate-query  {\"corpus\": ..., \"query\": \"filme(direção=?)\", \"top_k\"?}
    POST /warm | /evict    {\"corpus\": ...}
    POST /shutdown";

fn fail(message: &str) -> ExitCode {
    eprintln!("matchd: {message}\n\n{USAGE}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    // Arm any WIKIMATCH_FAILPOINTS-specified failpoints before anything
    // that passes a hook (corpus warming journals through them).
    wiki_fault::init_env();
    let mut addr = "127.0.0.1:8743".to_string();
    let mut config = ServerConfig::default();
    // WIKIMATCH_LOG sets the default level; an explicit --log-level wins.
    if let Ok(level) = std::env::var("WIKIMATCH_LOG") {
        match level.parse() {
            Ok(level) => config.log_level = level,
            Err(err) => return fail(&format!("WIKIMATCH_LOG: {err}")),
        }
    }
    let mut capacity = 4usize;
    let mut mode = ComputeMode::default();
    let mut tiers = "tiny,small,medium,large".to_string();
    let mut warm = Vec::new();
    let mut snapshot_dir: Option<String> = None;
    let mut persist = false;
    let mut max_resident_mb: Option<u64> = None;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        let result: Result<(), String> = match flag.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--addr" => value("--addr").map(|v| addr = v),
            "--workers" => value("--workers").and_then(|v| {
                v.parse()
                    .map(|n| config.workers = n)
                    .map_err(|_| format!("bad --workers {v:?}"))
            }),
            "--queue" => value("--queue").and_then(|v| {
                v.parse()
                    .map(|n| config.queue_depth = n)
                    .map_err(|_| format!("bad --queue {v:?}"))
            }),
            "--capacity" => value("--capacity").and_then(|v| {
                v.parse()
                    .map(|n| capacity = n)
                    .map_err(|_| format!("bad --capacity {v:?}"))
            }),
            "--mode" => value("--mode").and_then(|v| {
                v.parse::<ComputeMode>()
                    .map(|m| mode = m)
                    .map_err(|e| e.to_string())
            }),
            "--tiers" => value("--tiers").map(|v| tiers = v),
            "--warm" => value("--warm").map(|v| {
                warm.extend(v.split(',').map(|s| s.trim().to_string()));
            }),
            "--snapshot-dir" => value("--snapshot-dir").map(|v| snapshot_dir = Some(v)),
            "--max-resident-mb" => value("--max-resident-mb").and_then(|v| {
                v.parse()
                    .map(|n| max_resident_mb = Some(n))
                    .map_err(|_| format!("bad --max-resident-mb {v:?}"))
            }),
            "--log-level" => value("--log-level").and_then(|v| {
                v.parse()
                    .map(|l| config.log_level = l)
                    .map_err(|e: String| e)
            }),
            "--slow-ms" => value("--slow-ms").and_then(|v| {
                v.parse()
                    .map(|n| config.slow_millis = n)
                    .map_err(|_| format!("bad --slow-ms {v:?}"))
            }),
            "--deadline-ms" => value("--deadline-ms").and_then(|v| {
                v.parse()
                    .map(|n| config.deadline_millis = n)
                    .map_err(|_| format!("bad --deadline-ms {v:?}"))
            }),
            "--shed-queue-ms" => value("--shed-queue-ms").and_then(|v| {
                v.parse()
                    .map(|n| config.shed_queue_millis = n)
                    .map_err(|_| format!("bad --shed-queue-ms {v:?}"))
            }),
            "--enable-failpoints" => {
                config.failpoints_endpoint = true;
                Ok(())
            }
            "--persist" => {
                persist = true;
                Ok(())
            }
            other => Err(format!("unknown flag {other:?}")),
        };
        if let Err(message) = result {
            return fail(&message);
        }
    }
    config.addr = addr;

    let tier_names: Vec<&str> = tiers.split(',').map(str::trim).collect();
    // Fail fast on a misspelled tier instead of silently serving fewer
    // corpora than asked for.
    if let Some(unknown) = tier_names
        .iter()
        .find(|t| CorpusSpec::tier(wiki_corpus::Language::Pt, t).is_none())
    {
        return fail(&format!(
            "unknown tier {unknown:?}; expected tiny, small, medium, large or xlarge"
        ));
    }
    let specs = CorpusSpec::scale_tiers(&tier_names);
    if specs.is_empty() {
        return fail(&format!("no valid tiers in {tiers:?}"));
    }
    if persist && snapshot_dir.is_none() {
        return fail("--persist requires --snapshot-dir");
    }
    if max_resident_mb.is_some() && snapshot_dir.is_none() {
        return fail("--max-resident-mb requires --snapshot-dir");
    }
    let mut registry = Registry::new(capacity, mode);
    if let Some(dir) = &snapshot_dir {
        registry = registry.with_snapshot_dir(dir);
    }
    if let Some(mb) = max_resident_mb {
        registry = registry.with_resident_budget_mb(mb);
    }
    let registry = Arc::new(registry);
    registry.register_all(specs);

    if warm.len() > capacity {
        eprintln!(
            "matchd: warning: --warm lists {} corpora but --capacity is {}; \
             earlier warmed sessions will be evicted again before serving starts",
            warm.len(),
            capacity
        );
    }
    for name in &warm {
        let start = Instant::now();
        match registry.warm(name) {
            Ok(cached) => eprintln!(
                "matchd: warmed {name} ({} types) in {:.2?}",
                cached.engine().cached_types(),
                start.elapsed()
            ),
            Err(err) => return fail(&err.to_string()),
        }
    }

    let workers = config.workers;
    let mut server = match MatchServer::start(Arc::clone(&registry), config) {
        Ok(server) => server,
        Err(err) => return fail(&format!("failed to bind: {err}")),
    };
    eprintln!(
        "matchd: listening on http://{} ({} workers, capacity {}, mode {}, corpora: {}{}{})",
        server.addr(),
        workers,
        registry.capacity(),
        registry.mode(),
        registry.names().join(", "),
        match registry.snapshot_dir() {
            Some(dir) => format!(", snapshots in {}", dir.display()),
            None => String::new(),
        },
        match max_resident_mb {
            Some(mb) => format!(", resident budget {mb} MB"),
            None => String::new(),
        }
    );
    server.wait();
    eprintln!("matchd: shutting down");
    server.shutdown();
    if persist {
        let start = Instant::now();
        let written = registry.persist_resident();
        eprintln!(
            "matchd: persisted {written} resident session(s) in {:.2?}",
            start.elapsed()
        );
    }
    ExitCode::SUCCESS
}
