//! `matchbench` — load generator for a running `matchd`.
//!
//! Replays a fixed number of requests from concurrent keep-alive
//! connections and reports sustained throughput plus p50/p95/p99 latency.
//! `GET /metrics` is scraped before and after the run; the scrape-over-
//! scrape delta of the server's `wm_request_seconds` histogram yields
//! server-side p50/p99 bucket bounds, printed next to the client numbers
//! (client minus server ≈ connection queueing plus network).
//!
//! ```text
//! matchbench [--addr 127.0.0.1:8743] [--corpus pt-medium] [--type film]
//!            [--requests 5000] [--concurrency 8]
//!            [--workload align|mixed|mutate] [--no-warm] [--json]
//! ```
//!
//! The `align` workload hammers `POST /align` on one type; `mixed`
//! interleaves align (per-type and all-types), a baseline matcher, query
//! translation and `/stats` in a 70/5/10/10/5 ratio; `mutate` drives
//! `POST /corpora/{name}/entities` with a rotating set of probe articles
//! whose attribute values change on every request, so each request applies
//! a real incremental delta to the live corpus.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Instant;

use serde::Serialize;

use wiki_corpus::{Article, AttributeValue, Infobox, Language};
use wiki_obs::expo::{self, HistogramScrape};
use wiki_serve::client::MatchClient;
use wiki_serve::protocol::{
    AlignRequest, CorpusRequest, MatcherRequest, MutateRequest, StatsResponse, TranslateRequest,
};

const USAGE: &str = "matchbench — load generator for matchd

USAGE:
    matchbench [OPTIONS]

OPTIONS:
    --addr HOST:PORT  server address (default 127.0.0.1:8743)
    --corpus NAME     corpus to drive (default pt-medium)
    --type ID         entity type for align requests (default film)
    --requests N      total requests to issue (default 5000)
    --concurrency N   concurrent client connections (default 8)
    --workload KIND   align | mixed | mutate (default align)
    --no-warm         skip the POST /warm before measuring
    --json            print the summary as JSON
    --help            print this help";

/// One measured request kind, for the per-endpoint breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    AlignType,
    AlignAll,
    Matcher,
    Translate,
    Stats,
    Mutate,
}

impl Op {
    fn label(self) -> &'static str {
        match self {
            Op::AlignType => "align(type)",
            Op::AlignAll => "align(*)",
            Op::Matcher => "matchers",
            Op::Translate => "translate-query",
            Op::Stats => "stats",
            Op::Mutate => "mutate",
        }
    }

    /// The mixed-workload schedule: 70% per-type align, 5% all-types align,
    /// 10% baseline matcher, 10% translation, 5% stats.
    fn mixed(i: u64) -> Self {
        match i % 20 {
            0 => Op::AlignAll,
            1 | 2 => Op::Matcher,
            3 | 4 => Op::Translate,
            5 => Op::Stats,
            _ => Op::AlignType,
        }
    }
}

/// The request schedule a run replays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Workload {
    Align,
    Mixed,
    Mutate,
}

impl Workload {
    fn label(self) -> &'static str {
        match self {
            Workload::Align => "align",
            Workload::Mixed => "mixed",
            Workload::Mutate => "mutate",
        }
    }

    fn op(self, i: u64) -> Op {
        match self {
            Workload::Align => Op::AlignType,
            Workload::Mixed => Op::mixed(i),
            Workload::Mutate => Op::Mutate,
        }
    }
}

#[derive(Debug, Clone)]
struct BenchConfig {
    addr: String,
    corpus: String,
    type_id: String,
    requests: u64,
    concurrency: usize,
    workload: Workload,
    warm: bool,
    json: bool,
}

impl Default for BenchConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:8743".to_string(),
            corpus: "pt-medium".to_string(),
            type_id: "film".to_string(),
            requests: 5000,
            concurrency: 8,
            workload: Workload::Align,
            warm: true,
            json: false,
        }
    }
}

/// The machine-readable summary printed by `--json`.
#[derive(Debug, Clone, Serialize)]
struct Summary {
    corpus: String,
    workload: String,
    requests: u64,
    errors: u64,
    concurrency: usize,
    elapsed_secs: f64,
    throughput_rps: f64,
    latency_ms: Percentiles,
    /// Server-side request latency from the `/metrics` scrape delta, or
    /// `None` when the server doesn't expose `/metrics` (older matchd).
    server_latency_ms: Option<ServerLatency>,
}

/// Server-side `wm_request_seconds` quantiles for this run, merged across
/// endpoints. Histogram quantiles are bucket *upper bounds*, so read
/// `p50_upper` as "p50 ≤ this".
#[derive(Debug, Clone, Serialize)]
struct ServerLatency {
    /// Requests the server observed during the run (all endpoints except
    /// `/metrics` itself).
    requests: f64,
    /// Upper bound of the bucket holding the median, in milliseconds.
    p50_upper: f64,
    /// Upper bound of the bucket holding the 99th percentile, in
    /// milliseconds.
    p99_upper: f64,
}

/// One `/metrics` scrape reduced to the merged `wm_request_seconds`
/// histogram. The `/metrics` endpoint's own child is excluded so the
/// scrapes bracketing the run don't count themselves. `None` when the
/// server has no `/metrics` or the document doesn't parse — the bench
/// still reports its client-side numbers.
fn scrape_request_histogram(addr: &str) -> Option<HistogramScrape> {
    let mut client = MatchClient::new(addr).ok()?;
    let response = client.get("/metrics").ok()?;
    if !response.is_success() {
        return None;
    }
    let samples = expo::parse_text(&response.body).ok()?;
    let children = HistogramScrape::extract_all(&samples, "wm_request_seconds");
    let parts: Vec<&HistogramScrape> = children
        .iter()
        .filter(|(key, _)| key.as_str() != "endpoint=metrics")
        .map(|(_, scrape)| scrape)
        .collect();
    Some(HistogramScrape::merge(parts))
}

#[derive(Debug, Clone, Serialize)]
struct Percentiles {
    p50: f64,
    p95: f64,
    p99: f64,
    mean: f64,
    max: f64,
}

fn percentile(sorted_nanos: &[u64], p: f64) -> f64 {
    if sorted_nanos.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_nanos.len() - 1) as f64 * p).round() as usize;
    sorted_nanos[idx] as f64 / 1e6
}

/// The foreign-language demo query for a corpus (Portuguese corpora get the
/// paper's film query; Vietnamese corpora get its translation).
fn demo_query(corpus: &str) -> &'static str {
    if corpus.starts_with("vi") {
        "phim(đạo diễn=?)"
    } else {
        "filme(direção=?, país=\"Estados Unidos\")"
    }
}

/// The probe article of the mutate workload's `i`-th request: the title
/// rotates over four slots (so the corpus gains at most four articles and
/// then keeps updating them in place) while the attribute value changes
/// every request, making each request a genuine incremental delta.
fn probe_article(corpus: &str, i: u64) -> Article {
    let (language, entity_type) = if corpus.starts_with("vi") {
        (Language::Vn, "Phim")
    } else {
        (Language::Pt, "Filme")
    };
    let mut infobox = Infobox::new(format!("Infobox {entity_type}"));
    infobox.push(AttributeValue::text("nota", format!("edição {i}")));
    Article::new(
        format!("Benchmark Probe {}", i % 4),
        language,
        entity_type,
        infobox,
    )
}

fn issue(client: &mut MatchClient, config: &BenchConfig, op: Op, i: u64) -> std::io::Result<bool> {
    let response = match op {
        Op::AlignType => client.post(
            "/align",
            &AlignRequest {
                corpus: config.corpus.clone(),
                type_id: Some(config.type_id.clone()),
            },
        )?,
        Op::AlignAll => client.post(
            "/align",
            &AlignRequest {
                corpus: config.corpus.clone(),
                type_id: None,
            },
        )?,
        Op::Matcher => client.post(
            "/matchers",
            &MatcherRequest {
                corpus: config.corpus.clone(),
                matcher: "Bouma".to_string(),
                type_id: Some(config.type_id.clone()),
            },
        )?,
        Op::Translate => client.post(
            "/translate-query",
            &TranslateRequest {
                corpus: config.corpus.clone(),
                query: demo_query(&config.corpus).to_string(),
                top_k: Some(3),
            },
        )?,
        Op::Stats => client.get("/stats")?,
        Op::Mutate => client.post(
            &format!("/corpora/{}/entities", config.corpus),
            &MutateRequest {
                entities: vec![probe_article(&config.corpus, i)],
            },
        )?,
    };
    Ok(response.is_success())
}

fn parse_args() -> Result<Option<BenchConfig>, String> {
    let mut config = BenchConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--help" | "-h" => return Ok(None),
            "--addr" => config.addr = value("--addr")?,
            "--corpus" => config.corpus = value("--corpus")?,
            "--type" => config.type_id = value("--type")?,
            "--requests" => {
                let v = value("--requests")?;
                config.requests = v.parse().map_err(|_| format!("bad --requests {v:?}"))?;
            }
            "--concurrency" => {
                let v = value("--concurrency")?;
                config.concurrency = v.parse().map_err(|_| format!("bad --concurrency {v:?}"))?;
            }
            "--workload" => {
                config.workload = match value("--workload")?.as_str() {
                    "align" => Workload::Align,
                    "mixed" => Workload::Mixed,
                    "mutate" => Workload::Mutate,
                    other => return Err(format!("unknown workload {other:?}")),
                }
            }
            "--no-warm" => config.warm = false,
            "--json" => config.json = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if config.requests == 0 || config.concurrency == 0 {
        return Err("--requests and --concurrency must be positive".to_string());
    }
    Ok(Some(config))
}

fn main() -> ExitCode {
    let config = match parse_args() {
        Ok(Some(config)) => config,
        Ok(None) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(message) => {
            eprintln!("matchbench: {message}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    // Warm the corpus so the measurement reflects steady-state serving, not
    // the one-off session build (cold-start coalescing has its own test).
    if config.warm {
        let mut client = match MatchClient::new(config.addr.as_str()) {
            Ok(client) => client,
            Err(err) => {
                eprintln!("matchbench: cannot reach {}: {err}", config.addr);
                return ExitCode::FAILURE;
            }
        };
        let start = Instant::now();
        let warm = client.post(
            "/warm",
            &CorpusRequest {
                corpus: config.corpus.clone(),
            },
        );
        match warm {
            Ok(response) if response.is_success() => {
                eprintln!(
                    "matchbench: warmed {} in {:.2?}",
                    config.corpus,
                    start.elapsed()
                );
            }
            Ok(response) => {
                eprintln!(
                    "matchbench: warm failed (HTTP {}): {}",
                    response.status, response.body
                );
                return ExitCode::FAILURE;
            }
            Err(err) => {
                eprintln!("matchbench: warm failed: {err}");
                return ExitCode::FAILURE;
            }
        }
    }

    // A keep-alive connection pins one server worker for its whole
    // lifetime, so client connections beyond the server's worker count
    // starve in the queue and record bench-length tail latencies. Warn so
    // the percentiles are read accordingly.
    if let Ok(response) =
        MatchClient::new(config.addr.as_str()).and_then(|mut client| client.get("/stats"))
    {
        if let Ok(stats) = response.json::<StatsResponse>() {
            if config.concurrency > stats.workers {
                eprintln!(
                    "matchbench: warning: --concurrency {} exceeds the server's {} workers; \
                     excess connections will starve and skew tail latencies",
                    config.concurrency, stats.workers
                );
            }
        }
    }

    // Bracket the run with /metrics scrapes: the histogram delta isolates
    // exactly what this run contributed to the server-side latency record.
    let baseline_scrape = scrape_request_histogram(&config.addr);

    let next = Arc::new(AtomicU64::new(0));
    let errors = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    let mut per_worker: Vec<Vec<u64>> = Vec::new();
    thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..config.concurrency {
            let next = Arc::clone(&next);
            let errors = Arc::clone(&errors);
            let config = &config;
            handles.push(scope.spawn(move || {
                let mut latencies = Vec::new();
                let mut client = match MatchClient::new(config.addr.as_str()) {
                    Ok(client) => client,
                    Err(_) => {
                        errors.fetch_add(1, Ordering::Relaxed);
                        return latencies;
                    }
                };
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= config.requests {
                        break;
                    }
                    let op = config.workload.op(i);
                    let begin = Instant::now();
                    match issue(&mut client, config, op, i) {
                        Ok(true) => latencies.push(begin.elapsed().as_nanos() as u64),
                        Ok(false) | Err(_) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                latencies
            }));
        }
        for handle in handles {
            per_worker.push(handle.join().unwrap_or_default());
        }
    });
    let elapsed = start.elapsed();

    let server_latency_ms = baseline_scrape.and_then(|baseline| {
        let delta = scrape_request_histogram(&config.addr)?.delta_from(&baseline);
        Some(ServerLatency {
            requests: delta.count,
            p50_upper: delta.quantile_upper(0.50)? * 1e3,
            p99_upper: delta.quantile_upper(0.99)? * 1e3,
        })
    });

    let mut latencies: Vec<u64> = per_worker.into_iter().flatten().collect();
    latencies.sort_unstable();
    let errors = errors.load(Ordering::Relaxed);
    let completed = latencies.len() as u64;
    let mean = if latencies.is_empty() {
        0.0
    } else {
        latencies.iter().sum::<u64>() as f64 / latencies.len() as f64 / 1e6
    };
    let summary = Summary {
        corpus: config.corpus.clone(),
        workload: config.workload.label().to_string(),
        requests: completed,
        errors,
        concurrency: config.concurrency,
        elapsed_secs: elapsed.as_secs_f64(),
        throughput_rps: completed as f64 / elapsed.as_secs_f64().max(1e-9),
        latency_ms: Percentiles {
            p50: percentile(&latencies, 0.50),
            p95: percentile(&latencies, 0.95),
            p99: percentile(&latencies, 0.99),
            mean,
            max: percentile(&latencies, 1.0),
        },
        server_latency_ms,
    };

    if config.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&summary)
                .unwrap_or_else(|err| format!("{{\"error\":\"summary serialization: {err}\"}}"))
        );
    } else {
        println!(
            "matchbench: {} workload against {} ({} concurrent connections)",
            summary.workload, summary.corpus, summary.concurrency
        );
        if config.workload == Workload::Mixed {
            let breakdown: Vec<String> = [
                Op::AlignType,
                Op::AlignAll,
                Op::Matcher,
                Op::Translate,
                Op::Stats,
            ]
            .iter()
            .map(|op| {
                let count = (0..config.requests)
                    .filter(|&i| Op::mixed(i) == *op)
                    .count();
                format!("{} ×{}", op.label(), count)
            })
            .collect();
            println!("  mix:        {}", breakdown.join(", "));
        }
        println!(
            "  completed:  {} requests in {:.2}s ({} errors)",
            summary.requests, summary.elapsed_secs, summary.errors
        );
        println!("  throughput: {:.0} req/s", summary.throughput_rps);
        println!(
            "  latency:    p50 {:.2}ms  p95 {:.2}ms  p99 {:.2}ms  mean {:.2}ms  max {:.2}ms",
            summary.latency_ms.p50,
            summary.latency_ms.p95,
            summary.latency_ms.p99,
            summary.latency_ms.mean,
            summary.latency_ms.max
        );
        if let Some(server) = &summary.server_latency_ms {
            println!(
                "  server:     p50 ≤ {:.2}ms  p99 ≤ {:.2}ms  \
                 ({:.0} requests observed via /metrics)",
                server.p50_upper, server.p99_upper, server.requests
            );
        }
    }

    if errors > 0 {
        eprintln!("matchbench: {errors} request(s) failed");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
