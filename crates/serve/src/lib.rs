//! # wiki-serve
//!
//! The serving subsystem of the WikiMatch reproduction: a long-lived,
//! concurrent matching service over the workspace's [`wikimatch`] engine
//! sessions, answering JSON over hand-rolled HTTP/1.1 on `std::net` only
//! (the build environment has no network crates).
//!
//! Three layers, bottom-up:
//!
//! 1. [`registry`] — a [`registry::Registry`] of named corpora
//!    that lazily builds and shares `Arc<MatchEngine>` sessions behind an
//!    LRU with configurable capacity, with warm/evict/mutate/stats
//!    operations. Concurrent requests against the same cold corpus
//!    **coalesce onto one build** instead of stampeding, at both the
//!    session level and (inside the engine) the per-type artifact level.
//!    Mutations are applied through the engine's incremental patcher and
//!    journaled (in memory and, with a snapshot directory, write-ahead on
//!    disk), so live edits survive eviction and restarts.
//! 2. [`http`] + [`protocol`] + [`server`] — a fixed worker-thread pool
//!    draining a bounded connection queue, serving
//!    `align` / `matchers` / `translate-query` / `healthz` / `stats` (and
//!    `corpora` / `warm` / `evict` / `shutdown`, plus
//!    `POST`/`DELETE /corpora/{name}/entities` for live mutations) with
//!    graceful shutdown.
//! 3. [`client`] — a small blocking keep-alive client, shared by the
//!    `matchbench` load generator and the integration tests.
//!
//! Two binaries ship with the crate:
//!
//! * **`matchd`** — the daemon; registers the synthetic scale tiers
//!   (`pt-tiny` … `vi-large`) and serves them out of the box.
//! * **`matchbench`** — replays mixed workloads against a running server
//!   and reports throughput and p50/p95/p99 latency.
//!
//! ```no_run
//! use std::sync::Arc;
//! use wiki_serve::registry::{CorpusSpec, Registry};
//! use wiki_serve::server::{MatchServer, ServerConfig};
//! use wikimatch::ComputeMode;
//!
//! let registry = Arc::new(Registry::new(2, ComputeMode::default()));
//! registry.register_all(CorpusSpec::scale_tiers(&["tiny", "medium"]));
//! let server = MatchServer::start(registry, ServerConfig::default()).unwrap();
//! println!("listening on http://{}", server.addr());
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// A long-lived daemon must not die on a recoverable error: every panic
// path in production code is either removed or explicitly allowed with a
// written justification. Tests opt back in (a failed test *should* panic).
#![deny(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod client;
pub mod http;
pub mod matchers;
pub mod protocol;
pub mod registry;
pub mod server;

pub use client::{ClientResponse, MatchClient};
pub use matchers::MatcherRegistry;
pub use registry::{CorpusSpec, Registry, RegistryError, RegistryStats};
pub use server::{MatchServer, ServerConfig};
