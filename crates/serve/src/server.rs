//! The `matchd` server: a fixed worker-thread pool draining a bounded
//! connection queue, routing the JSON protocol of [`crate::protocol`] onto
//! a shared [`Registry`].
//!
//! Concurrency model:
//!
//! * one **acceptor** thread blocks on [`TcpListener::accept`] and pushes
//!   connections into a bounded queue — when the queue is full the
//!   connection is answered `503` immediately instead of piling up;
//! * `workers` **worker** threads pop connections and serve them
//!   keep-alive until the peer closes, an error occurs, or shutdown begins;
//! * **graceful shutdown** flips a flag, wakes the acceptor with a loopback
//!   connection, lets workers finish their in-flight request (answered with
//!   `Connection: close`) and joins every thread.
//!
//! The expensive work all lives behind the registry's coalescing caches, so
//! any number of workers can hammer the same corpus without duplicating a
//! build (see `crates/serve/tests/server.rs`).

use std::cell::RefCell;
use std::io::{self, BufRead, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use serde::Deserialize;

use wiki_corpus::Language;
use wiki_obs::{LogLevel, RequestLog, RequestRecord, Span};
use wiki_query::{CQuery, QueryEngine};
use wikimatch::MatchEngine;

use crate::http::{read_request, Request, RequestError, Response};
use crate::matchers::MatcherRegistry;
use crate::protocol::{
    AlignRequest, AlignResponse, CorporaResponse, CorpusRequest, DeadlineExceededBody,
    DeleteRequest, EvictResponse, FailpointStatus, FailpointsRequest, FailpointsResponse,
    HealthResponse, MatcherRequest, MatchersResponse, MutateRequest, MutateResponse, ReadyResponse,
    ServerCounters, StatsResponse, TranslateRequest, TranslateResponse, TypePairs, WarmResponse,
};
use crate::registry::{CachedCorpus, Registry, RegistryError};
use wikimatch::CorpusDelta;

/// How long a worker blocks waiting for the *first* byte of the next
/// request on an idle keep-alive connection before re-checking the
/// shutdown flag. Nothing has been consumed yet when this fires, so the
/// wait can simply resume.
const IDLE_POLL: Duration = Duration::from_millis(200);

/// Total budget for reading one request once its first byte has arrived —
/// enforced both per read (socket timeout) and across reads (a deadline
/// checked between reads by [`DeadlineReader`]), so neither a stalled nor a
/// byte-trickling client can hold a worker mid-request much longer than
/// this. Exceeding it closes the connection: retrying the read would resume
/// parsing mid-stream and corrupt the protocol.
const REQUEST_READ_TIMEOUT: Duration = Duration::from_secs(5);

/// How long a blocked response write may stall before the connection is
/// dropped. Without it a client that stops reading would pin a worker in
/// `write_all` forever (and make shutdown, which joins workers, hang).
const WRITE_TIMEOUT: Duration = Duration::from_secs(10);

/// Configuration of a [`MatchServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`MatchServer::addr`]).
    pub addr: String,
    /// Worker threads serving requests.
    pub workers: usize,
    /// Bound of the pending-connection queue; beyond it connections are
    /// answered `503` by the acceptor.
    pub queue_depth: usize,
    /// Access-log verbosity (`matchd --log-level` / `WIKIMATCH_LOG`).
    pub log_level: LogLevel,
    /// Requests whose wall-clock total reaches this many milliseconds are
    /// marked `"slow":true` and logged even at `error` level; 0 disables
    /// the slow gate.
    pub slow_millis: u64,
    /// Pre-built access log; when `None` the server writes JSON lines to
    /// stderr per `log_level`/`slow_millis`. Tests inject
    /// [`RequestLog::in_memory`] sinks here.
    pub access_log: Option<Arc<RequestLog>>,
    /// Per-request compute deadline (`matchd --deadline-ms`), checked at
    /// pipeline phase boundaries; expiry answers 504 with a structured
    /// body. 0 disables deadlines.
    pub deadline_millis: u64,
    /// Admission-control budget (`matchd --shed-queue-ms`): a
    /// compute-bearing request whose connection waited longer than this in
    /// the accept queue is answered 503 + `Retry-After` instead of being
    /// served stale. 0 disables shedding.
    pub shed_queue_millis: u64,
    /// Enables the test-only `/failpoints` endpoint
    /// (`matchd --enable-failpoints`); when off the endpoint answers 403.
    pub failpoints_endpoint: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .clamp(2, 16),
            queue_depth: 256,
            log_level: LogLevel::Error,
            slow_millis: 500,
            access_log: None,
            deadline_millis: 0,
            shed_queue_millis: 0,
            failpoints_endpoint: false,
        }
    }
}

/// Pre-resolved handles into the process-wide metrics registry for the
/// hot-path counters, so recording is a relaxed atomic add with no
/// registry lookup.
struct ServerMetrics {
    rejected_queue_full: wiki_obs::Counter,
    rejected_shed: wiki_obs::Counter,
    deadline_expired: wiki_obs::Counter,
    dropped_accept: wiki_obs::Counter,
    dropped_clone: wiki_obs::Counter,
    dropped_read: wiki_obs::Counter,
    dropped_write: wiki_obs::Counter,
}

impl ServerMetrics {
    fn new() -> Self {
        let registry = wiki_obs::registry();
        let dropped = |reason| {
            registry.counter_with(
                "wm_http_connections_dropped_total",
                "Connections dropped outside the normal request/response flow, by reason.",
                &[("reason", reason)],
            )
        };
        let rejected = |reason| {
            registry.counter_with(
                "wm_http_requests_rejected_total",
                "Requests answered 503 without being served, by reason: \
                 queue_full (acceptor door) or shed (admission control).",
                &[("reason", reason)],
            )
        };
        Self {
            rejected_queue_full: rejected("queue_full"),
            rejected_shed: rejected("shed"),
            deadline_expired: registry.counter(
                "wm_deadline_expired_total",
                "Requests answered 504 because the per-request compute deadline expired.",
            ),
            dropped_accept: dropped("accept_error"),
            dropped_clone: dropped("clone_error"),
            dropped_read: dropped("read_error"),
            dropped_write: dropped("write_error"),
        }
    }
}

/// How recently a shed must have happened for `/readyz` to report
/// `degraded`: shedding is a transient pressure signal, and readiness
/// should recover on its own once the queue drains.
const READINESS_SHED_WINDOW: Duration = Duration::from_secs(5);

/// Sentinel for "never shed" in [`Shared::last_shed_nanos`].
const NEVER_SHED: u64 = u64::MAX;

/// State shared by the acceptor, the workers and the handle.
struct Shared {
    registry: Arc<Registry>,
    matchers: MatcherRegistry,
    addr: SocketAddr,
    running: AtomicBool,
    accepted: AtomicU64,
    handled: AtomicU64,
    rejected: AtomicU64,
    shed: AtomicU64,
    deadline_expired: AtomicU64,
    /// Nanoseconds since `started` of the most recent shed ([`NEVER_SHED`]
    /// until the first one) — drives readiness degradation.
    last_shed_nanos: AtomicU64,
    dropped: AtomicU64,
    queue_len: AtomicU64,
    started: Instant,
    workers: usize,
    queue_depth: usize,
    deadline_millis: u64,
    shed_queue_millis: u64,
    failpoints_endpoint: bool,
    log: Arc<RequestLog>,
    metrics: ServerMetrics,
}

impl Shared {
    fn counters(&self) -> ServerCounters {
        ServerCounters {
            accepted: self.accepted.load(Ordering::Relaxed),
            handled: self.handled.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            deadline_expired: self.deadline_expired.load(Ordering::Relaxed),
            connections_dropped: self.dropped.load(Ordering::Relaxed),
        }
    }

    /// Counts one dropped connection on both the `/stats` total and the
    /// per-reason `/metrics` counter.
    fn drop_connection(&self, reason: &wiki_obs::Counter) {
        self.dropped.fetch_add(1, Ordering::Relaxed);
        reason.inc();
    }

    /// Counts one admission-control shed and stamps the readiness window.
    fn record_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
        self.metrics.rejected_shed.inc();
        let nanos = u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(NEVER_SHED - 1);
        self.last_shed_nanos.store(nanos, Ordering::Relaxed);
    }

    /// Readiness verdict: `None` when ready, `Some(reason)` when degraded
    /// (queue saturated, or shed pressure within the recent window).
    fn degraded_reason(&self) -> Option<String> {
        let queue_len = self.queue_len.load(Ordering::Relaxed);
        if queue_len >= self.queue_depth as u64 {
            return Some(format!("queue {queue_len}/{}", self.queue_depth));
        }
        let last = self.last_shed_nanos.load(Ordering::Relaxed);
        if last != NEVER_SHED {
            let now = u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            let window = u64::try_from(READINESS_SHED_WINDOW.as_nanos()).unwrap_or(u64::MAX);
            if now.saturating_sub(last) <= window {
                return Some(format!(
                    "shed pressure within the last {}s ({} total)",
                    READINESS_SHED_WINDOW.as_secs(),
                    self.shed.load(Ordering::Relaxed),
                ));
            }
        }
        None
    }
}

/// A running `matchd` server; dropping the handle without calling
/// [`shutdown`](Self::shutdown) detaches the threads.
pub struct MatchServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for MatchServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MatchServer")
            .field("addr", &self.addr)
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl MatchServer {
    /// Binds, spawns the worker pool and the acceptor, and returns
    /// immediately. The default matcher catalog backs `POST /matchers`.
    pub fn start(registry: Arc<Registry>, config: ServerConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let workers = config.workers.max(1);
        let queue_depth = config.queue_depth.max(1);
        let log = config
            .access_log
            .clone()
            .unwrap_or_else(|| Arc::new(RequestLog::stderr(config.log_level, config.slow_millis)));
        let shared = Arc::new(Shared {
            registry,
            matchers: MatcherRegistry::default(),
            addr,
            running: AtomicBool::new(true),
            accepted: AtomicU64::new(0),
            handled: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            deadline_expired: AtomicU64::new(0),
            last_shed_nanos: AtomicU64::new(NEVER_SHED),
            dropped: AtomicU64::new(0),
            queue_len: AtomicU64::new(0),
            started: Instant::now(),
            workers,
            queue_depth,
            deadline_millis: config.deadline_millis,
            shed_queue_millis: config.shed_queue_millis,
            failpoints_endpoint: config.failpoints_endpoint,
            log,
            metrics: ServerMetrics::new(),
        });

        let (tx, rx) = mpsc::sync_channel::<(TcpStream, Instant)>(queue_depth);
        let rx = Arc::new(Mutex::new(rx));
        // Spawn failures (thread limits, memory pressure) surface as the
        // start error instead of panicking the caller. Workers already
        // spawned are cleaned up by `shutdown`'s flag + join on drop of the
        // partially built pool being unreachable — but simplest is to fail
        // the whole start before the acceptor exists: no connection has
        // been accepted yet, so stranded workers just block on a channel
        // whose sender is dropped right here and exit.
        let mut worker_handles: Vec<JoinHandle<()>> = Vec::with_capacity(workers);
        for i in 0..workers {
            let shared = Arc::clone(&shared);
            let rx = Arc::clone(&rx);
            let handle = thread::Builder::new()
                .name(format!("matchd-worker-{i}"))
                .spawn(move || worker_loop(&shared, &rx))?;
            worker_handles.push(handle);
        }

        let acceptor = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("matchd-acceptor".to_string())
                .spawn(move || acceptor_loop(&shared, listener, tx))?
        };

        Ok(Self {
            addr,
            shared,
            acceptor: Some(acceptor),
            workers: worker_handles,
        })
    }

    /// The actual bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until shutdown begins — either [`shutdown`](Self::shutdown)
    /// was called or a client posted `/shutdown`.
    pub fn wait(&mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }

    /// Requests shutdown: stops accepting, drains queued connections,
    /// finishes in-flight requests and joins every thread.
    pub fn shutdown(mut self) {
        self.shared.running.store(false, Ordering::SeqCst);
        // Wake the acceptor out of its blocking accept.
        let _ = TcpStream::connect(wake_addr(self.addr));
        self.wait();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// A connectable form of the bound address, for the self-connect that wakes
/// the acceptor: a wildcard bind (`0.0.0.0` / `[::]`) is not a connect
/// target on every platform, so it is rewritten to the loopback of the same
/// family.
fn wake_addr(addr: SocketAddr) -> SocketAddr {
    let mut addr = addr;
    if addr.ip().is_unspecified() {
        match addr {
            SocketAddr::V4(_) => addr.set_ip(std::net::Ipv4Addr::LOCALHOST.into()),
            SocketAddr::V6(_) => addr.set_ip(std::net::Ipv6Addr::LOCALHOST.into()),
        }
    }
    addr
}

fn acceptor_loop(shared: &Shared, listener: TcpListener, tx: SyncSender<(TcpStream, Instant)>) {
    for stream in listener.incoming() {
        if !shared.running.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(stream) => stream,
            Err(_) => {
                // The peer is gone (reset mid-handshake, fd pressure, ...);
                // nothing to answer, but the drop must not be invisible.
                shared.drop_connection(&shared.metrics.dropped_accept);
                continue;
            }
        };
        // Incremented *before* the send so a worker's decrement can never
        // observably precede it (the gauge must not underflow).
        shared.queue_len.fetch_add(1, Ordering::Relaxed);
        match tx.try_send((stream, Instant::now())) {
            Ok(()) => {
                shared.accepted.fetch_add(1, Ordering::Relaxed);
            }
            Err(TrySendError::Full((mut stream, _))) => {
                shared.queue_len.fetch_sub(1, Ordering::Relaxed);
                // Bounded queue: reject load at the door instead of queueing
                // unboundedly. The write is timeout-guarded — the acceptor
                // must never block on a slow peer. `Retry-After` tells
                // well-behaved clients to back off instead of hammering a
                // saturated queue.
                shared.rejected.fetch_add(1, Ordering::Relaxed);
                shared.metrics.rejected_queue_full.inc();
                let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
                let _ = Response::error(503, "request queue full")
                    .with_header("Retry-After", "1")
                    .write(&mut stream, false);
            }
            Err(TrySendError::Disconnected(_)) => break,
        }
    }
    // Dropping the sender lets workers drain the queue and exit.
}

/// A `BufRead` adapter that fails with `TimedOut` once a deadline passes.
///
/// The socket read timeout alone only bounds each *individual* read — a
/// client trickling one header byte per few seconds would keep completing
/// reads and pin the worker forever. Checking a wall-clock deadline between
/// reads bounds the whole request to roughly
/// `deadline + REQUEST_READ_TIMEOUT`.
struct DeadlineReader<'a> {
    inner: &'a mut BufReader<TcpStream>,
    deadline: Instant,
}

impl DeadlineReader<'_> {
    fn check(&self) -> io::Result<()> {
        if Instant::now() >= self.deadline {
            Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "request read deadline exceeded",
            ))
        } else {
            Ok(())
        }
    }
}

impl io::Read for DeadlineReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.check()?;
        self.inner.read(buf)
    }
}

impl BufRead for DeadlineReader<'_> {
    fn fill_buf(&mut self) -> io::Result<&[u8]> {
        self.check()?;
        self.inner.fill_buf()
    }

    fn consume(&mut self, amt: usize) {
        self.inner.consume(amt)
    }
}

fn worker_loop(shared: &Shared, rx: &Mutex<Receiver<(TcpStream, Instant)>>) {
    loop {
        // Hold the lock only for the dequeue, not while serving.
        let stream = match rx.lock() {
            Ok(rx) => rx.recv(),
            Err(_) => return,
        };
        match stream {
            Ok((stream, enqueued)) => {
                shared.queue_len.fetch_sub(1, Ordering::Relaxed);
                // Queue wait ends when a worker picks the connection up; it
                // is attributed to the connection's first request.
                serve_connection(shared, stream, enqueued.elapsed());
            }
            Err(_) => return, // acceptor gone and queue drained
        }
    }
}

fn serve_connection(shared: &Shared, mut stream: TcpStream, queue_wait: Duration) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
    let mut reader = match stream.try_clone() {
        Ok(clone) => BufReader::new(clone),
        Err(_) => {
            shared.drop_connection(&shared.metrics.dropped_clone);
            return;
        }
    };
    // Consumed by the first request of the connection; later keep-alive
    // requests never waited in the queue.
    let mut queue_wait = Some(queue_wait);
    loop {
        // Idle phase: wait for the first byte of the next request under the
        // short poll timeout. `fill_buf` consumes nothing, so a timeout
        // here is always safe to retry — and each poll re-checks the
        // shutdown flag so shutdown is not held hostage by idle peers.
        let _ = stream.set_read_timeout(Some(IDLE_POLL));
        match reader.fill_buf() {
            Ok([]) => return, // clean EOF between requests
            Ok(_) => {}
            Err(err)
                if matches!(
                    err.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if !shared.running.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(_) => return,
        }
        // Request phase: bytes are in flight. Any per-read timeout or
        // deadline overrun from here on is a mid-request stall and closes
        // the connection (see `REQUEST_READ_TIMEOUT`).
        let _ = stream.set_read_timeout(Some(REQUEST_READ_TIMEOUT));
        let mut deadline_reader = DeadlineReader {
            inner: &mut reader,
            deadline: Instant::now() + REQUEST_READ_TIMEOUT,
        };
        // Open the per-request observability context: finished spans from
        // here to the response append their exclusive time as segments.
        wiki_obs::request::begin();
        let request_queue_wait = queue_wait.take();
        if let Some(wait) = request_queue_wait {
            wiki_obs::record_phase(
                "req_queue_wait",
                u64::try_from(wait.as_nanos()).unwrap_or(u64::MAX),
            );
        }
        let started = Instant::now();
        let parse_span = Span::enter("req_parse");
        match read_request(&mut deadline_reader) {
            Ok(request) => {
                parse_span.finish();
                let response = admitted_response(shared, &request, request_queue_wait, started);
                // Evaluated *after* routing so a request that initiates
                // shutdown (POST /shutdown) is itself answered with
                // `Connection: close` instead of a keep-alive promise the
                // dying server cannot honour.
                let keep_alive = request.keep_alive && shared.running.load(Ordering::SeqCst);
                shared.handled.fetch_add(1, Ordering::Relaxed);
                let write_ok = response.write(&mut stream, keep_alive).is_ok();
                if !write_ok {
                    shared.drop_connection(&shared.metrics.dropped_write);
                }
                observe_request(shared, &request, &response, started.elapsed());
                if !write_ok || !keep_alive {
                    return;
                }
            }
            Err(RequestError::Closed) => return,
            Err(RequestError::Io(_)) => {
                // Bytes of a request were in flight when the read failed or
                // timed out — a real mid-request drop, unlike the clean
                // `Closed` EOF above.
                shared.drop_connection(&shared.metrics.dropped_read);
                return;
            }
            Err(RequestError::Bad(status, message)) => {
                // Malformed requests are answered too, so they count as
                // handled.
                shared.handled.fetch_add(1, Ordering::Relaxed);
                wiki_obs::registry()
                    .counter_with(
                        "wm_http_requests_total",
                        "Requests answered, by endpoint and status class.",
                        &[("endpoint", "malformed"), ("status", status_class(status))],
                    )
                    .inc();
                let _ = Response::error(status, &message).write(&mut stream, false);
                return;
            }
        }
    }
}

/// The bounded-cardinality endpoint label of a request path.
fn endpoint_name(path: &str) -> &'static str {
    match path {
        "/healthz" | "/livez" => "healthz",
        "/readyz" => "readyz",
        "/failpoints" => "failpoints",
        "/stats" => "stats",
        "/metrics" => "metrics",
        "/corpora" => "corpora",
        "/matchers" => "matchers",
        "/align" => "align",
        "/translate-query" => "translate_query",
        "/warm" => "warm",
        "/evict" => "evict",
        "/shutdown" => "shutdown",
        path => {
            if entities_corpus(path).is_some() {
                "entities"
            } else {
                "other"
            }
        }
    }
}

/// Status class label (`2xx`/`3xx`/`4xx`/`5xx`) — full codes would multiply
/// series cardinality for no added signal.
fn status_class(status: u16) -> &'static str {
    match status / 100 {
        2 => "2xx",
        3 => "3xx",
        4 => "4xx",
        _ => "5xx",
    }
}

/// Records one answered request: the `wm_http_requests_total` counter, the
/// `wm_request_seconds{endpoint}` histogram, and (gated by level) one
/// JSON access-log line carrying the per-segment timings collected by the
/// request context.
fn observe_request(shared: &Shared, request: &Request, response: &Response, total: Duration) {
    // Per-thread caches of resolved handles: workers are long-lived and
    // the (endpoint, status-class) space is small and 'static, so the
    // steady state skips the registry's lock-and-scan lookup entirely.
    thread_local! {
        static COUNTERS: RefCell<Vec<((&'static str, &'static str), wiki_obs::Counter)>> =
            const { RefCell::new(Vec::new()) };
        static HISTOGRAMS: RefCell<Vec<(&'static str, wiki_obs::Histogram)>> =
            const { RefCell::new(Vec::new()) };
    }
    let endpoint = endpoint_name(&request.path);
    let class = status_class(response.status);
    let total_nanos = u64::try_from(total.as_nanos()).unwrap_or(u64::MAX);
    COUNTERS.with(|counters| {
        let mut counters = counters.borrow_mut();
        if let Some((_, counter)) = counters.iter().find(|(key, _)| *key == (endpoint, class)) {
            counter.inc();
            return;
        }
        let counter = wiki_obs::registry().counter_with(
            "wm_http_requests_total",
            "Requests answered, by endpoint and status class.",
            &[("endpoint", endpoint), ("status", class)],
        );
        counter.inc();
        counters.push(((endpoint, class), counter));
    });
    let context = wiki_obs::request::take().unwrap_or_default();
    if !wiki_obs::enabled() {
        return;
    }
    HISTOGRAMS.with(|histograms| {
        let mut histograms = histograms.borrow_mut();
        if let Some((_, histogram)) = histograms.iter().find(|(name, _)| *name == endpoint) {
            histogram.record(total_nanos);
            return;
        }
        let histogram = wiki_obs::registry().histogram_with(
            "wm_request_seconds",
            "End-to-end request latency (parse through response write), by endpoint.",
            &[("endpoint", endpoint)],
        );
        histogram.record(total_nanos);
        histograms.push((endpoint, histogram));
    });
    if shared.log.would_log(response.status, total_nanos) {
        shared.log.log(&RequestRecord {
            method: method_label(&request.method),
            path: request.path.clone(),
            endpoint,
            corpus: context.corpus,
            status: response.status,
            total_nanos,
            segments: context.segments,
        });
    }
}

/// Static form of the methods this server routes (access-log field).
fn method_label(method: &str) -> &'static str {
    match method {
        "GET" => "GET",
        "POST" => "POST",
        "DELETE" => "DELETE",
        "PUT" => "PUT",
        "HEAD" => "HEAD",
        _ => "OTHER",
    }
}

/// Endpoints admission control may shed: the compute-bearing ones. Health,
/// readiness, stats, metrics and control endpoints always get through —
/// shedding the probes that diagnose an overload would blind the operator
/// exactly when the signal matters.
fn sheddable(endpoint: &'static str) -> bool {
    matches!(
        endpoint,
        "align" | "matchers" | "translate_query" | "warm" | "entities"
    )
}

/// Per-request compute deadline, checked between pipeline phases. Started
/// at request-read completion; `budget == None` disables every check.
#[derive(Clone, Copy)]
struct RequestDeadline {
    started: Instant,
    budget: Option<Duration>,
}

impl RequestDeadline {
    /// `Some(504)` when the budget is spent, counting the expiry; `phase`
    /// names the boundary that observed it.
    fn expired(&self, shared: &Shared, phase: &str) -> Option<Response> {
        let budget = self.budget?;
        let elapsed = self.started.elapsed();
        if elapsed < budget {
            return None;
        }
        shared.deadline_expired.fetch_add(1, Ordering::Relaxed);
        shared.metrics.deadline_expired.inc();
        let body = serde_json::to_string(&DeadlineExceededBody {
            error: format!(
                "deadline of {}ms exceeded after {}ms at the {phase} phase",
                budget.as_millis(),
                elapsed.as_millis()
            ),
            deadline_ms: budget.as_millis() as u64,
            elapsed_ms: elapsed.as_millis() as u64,
            phase: phase.to_string(),
        })
        .unwrap_or_else(|_| "{\"error\":\"deadline exceeded\"}".to_string());
        Some(Response::json(504, body))
    }
}

/// The admission layer in front of the router: the `worker.request`
/// failpoint, then queue-wait shedding, then routing under the configured
/// compute deadline.
fn admitted_response(
    shared: &Shared,
    request: &Request,
    queue_wait: Option<Duration>,
    started: Instant,
) -> Response {
    // Chaos hook for the request path itself: an injected error answers
    // 500 before any handler runs; an injected sleep stalls the worker
    // (deliberately — that is how the bench manufactures queue pressure).
    if let Err(err) = wiki_fault::check_io("worker.request") {
        return Response::error(500, &err.to_string());
    }
    let endpoint = endpoint_name(&request.path);
    if shared.shed_queue_millis > 0 && sheddable(endpoint) {
        if let Some(wait) = queue_wait {
            let budget = Duration::from_millis(shared.shed_queue_millis);
            if wait > budget {
                shared.record_shed();
                return Response::error(
                    503,
                    &format!(
                        "shed: queued {}ms, admission budget is {}ms",
                        wait.as_millis(),
                        budget.as_millis()
                    ),
                )
                .with_header("Retry-After", "1");
            }
        }
    }
    let deadline = RequestDeadline {
        started,
        budget: (shared.deadline_millis > 0).then(|| Duration::from_millis(shared.deadline_millis)),
    };
    route_with_panic_barrier(shared, request, &deadline)
}

/// Routes a request behind a panic barrier: whatever a handler does with
/// request-derived data, a panic becomes a 500 JSON response instead of
/// killing the worker thread (a pool that loses a worker per bad request
/// would eventually stop serving entirely). The shared state is safe to
/// keep using afterwards — registry and engine locks recover from
/// poisoning, and every cache slot is an idempotent once-cell.
fn route_with_panic_barrier(
    shared: &Shared,
    request: &Request,
    deadline: &RequestDeadline,
) -> Response {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        route(shared, request, deadline)
    }))
    .unwrap_or_else(|panic| {
        let detail = panic
            .downcast_ref::<&str>()
            .copied()
            .or_else(|| panic.downcast_ref::<String>().map(String::as_str))
            .unwrap_or("unknown panic");
        Response::error(500, &format!("internal error: {detail}"))
    })
}

/// Parses a JSON request body, mapping failures to a 400 response.
fn parse_body<T: Deserialize>(request: &Request) -> Result<T, Box<Response>> {
    let text = request
        .body_utf8()
        .ok_or_else(|| Box::new(Response::error(400, "request body is not valid UTF-8")))?;
    serde_json::from_str(text).map_err(|err| {
        Box::new(Response::error(
            400,
            &format!("invalid request body: {err}"),
        ))
    })
}

/// Resolves a corpus name, mapping unknown names to a 404 response. The
/// lookup is timed as the `req_lookup` segment and tags the request
/// context with the corpus for the access log.
fn resolve_corpus(shared: &Shared, name: &str) -> Result<Arc<CachedCorpus>, Box<Response>> {
    let _span = Span::enter("req_lookup");
    shared
        .registry
        .corpus(name)
        .inspect(|_| wiki_obs::request::note_corpus(name))
        .map_err(|err| Box::new(Response::error(404, &err.to_string())))
}

/// Routes one request. Every branch returns a JSON response.
fn route(shared: &Shared, request: &Request, deadline: &RequestDeadline) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        // `/healthz` is liveness (with `/livez` as the explicit alias): it
        // answers `ok` as long as the process serves requests at all, even
        // degraded. `/readyz` is readiness: it turns 503 under shed
        // pressure or a saturated queue so load balancers steer traffic
        // away while the process works the backlog off.
        ("GET", "/healthz" | "/livez") => json_200(&HealthResponse {
            status: "ok".to_string(),
            service: "matchd".to_string(),
            version: env!("CARGO_PKG_VERSION").to_string(),
        }),
        ("GET", "/readyz") => handle_readyz(shared),
        ("GET" | "POST" | "DELETE", "/failpoints") => handle_failpoints(shared, request),
        ("GET", "/stats") => json_200(&StatsResponse {
            server: shared.counters(),
            uptime_secs: shared.started.elapsed().as_secs(),
            workers: shared.workers,
            queue_depth: shared.queue_depth,
            queue_len: shared.queue_len.load(Ordering::Relaxed),
            registry: shared.registry.stats(),
        }),
        ("GET", "/metrics") => handle_metrics(shared),
        ("GET", "/corpora") => json_200(&CorporaResponse {
            corpora: shared.registry.specs(),
        }),
        ("GET", "/matchers") => json_200(&MatchersResponse {
            matchers: shared.matchers.names(),
        }),
        ("POST", "/align") => handle_align(shared, request, deadline),
        ("POST", "/matchers") => handle_matchers(shared, request, deadline),
        ("POST", "/translate-query") => handle_translate(shared, request, deadline),
        ("POST", "/warm") => handle_warm(shared, request, deadline),
        ("POST", "/evict") => handle_evict(shared, request),
        ("POST", "/shutdown") => {
            // Flip the flag, then wake the acceptor out of its blocking
            // accept so `MatchServer::wait` returns promptly.
            shared.running.store(false, Ordering::SeqCst);
            let _ = TcpStream::connect(wake_addr(shared.addr));
            Response::json(200, "{\"status\":\"shutting down\"}")
        }
        (
            _,
            "/healthz" | "/livez" | "/readyz" | "/failpoints" | "/stats" | "/metrics" | "/corpora"
            | "/matchers" | "/align" | "/translate-query" | "/warm" | "/evict" | "/shutdown",
        ) => Response::error(405, &format!("method {} not allowed here", request.method)),
        (method, path) => match entities_corpus(path) {
            Some(name) => match method {
                "POST" => handle_mutate(shared, request, name, deadline),
                "DELETE" => handle_delete(shared, request, name, deadline),
                _ => Response::error(405, &format!("method {method} not allowed here")),
            },
            None => Response::error(404, &format!("unknown route {path}")),
        },
    }
}

/// `GET /readyz`: 200 `ready` or 503 `degraded` with the reason.
fn handle_readyz(shared: &Shared) -> Response {
    let reason = shared.degraded_reason();
    let body = ReadyResponse {
        status: if reason.is_some() {
            "degraded"
        } else {
            "ready"
        }
        .to_string(),
        reason: reason.clone().unwrap_or_default(),
        queue_len: shared.queue_len.load(Ordering::Relaxed),
        queue_depth: shared.queue_depth,
        shed: shared.shed.load(Ordering::Relaxed),
    };
    let status = if reason.is_some() { 503 } else { 200 };
    match serde_json::to_string(&body) {
        Ok(body) => Response::json(status, body),
        Err(err) => Response::error(500, &format!("serialization failed: {err}")),
    }
}

/// `/failpoints` (test-only, gated by `--enable-failpoints`): `GET` lists
/// the armed points, `POST {"spec": "..."}` arms from a spec string,
/// `DELETE` disarms everything. Every verb answers with the current list.
fn handle_failpoints(shared: &Shared, request: &Request) -> Response {
    if !shared.failpoints_endpoint {
        return Response::error(
            403,
            "failpoints endpoint is disabled; start matchd with --enable-failpoints",
        );
    }
    match request.method.as_str() {
        "POST" => {
            let req: FailpointsRequest = match parse_body(request) {
                Ok(req) => req,
                Err(response) => return *response,
            };
            if let Err(err) = wiki_fault::arm(&req.spec) {
                return Response::error(400, &format!("bad failpoint spec: {err}"));
            }
        }
        "DELETE" => wiki_fault::disarm_all(),
        _ => {}
    }
    json_200(&FailpointsResponse {
        points: wiki_fault::list()
            .into_iter()
            .map(|p| FailpointStatus {
                name: p.name,
                spec: p.spec,
                hits: p.hits,
                fired: p.fired,
            })
            .collect(),
    })
}

/// `GET /metrics`: the Prometheus text exposition of the process-wide
/// registry. Point-in-time values (uptime, queue depth, registry
/// residency) are gauges refreshed here at scrape time; counters that
/// already live on [`Shared`] atomics are mirrored rather than
/// double-counted.
fn handle_metrics(shared: &Shared) -> Response {
    let registry = wiki_obs::registry();
    registry
        .gauge("wm_uptime_seconds", "Seconds since the server started.")
        .set(shared.started.elapsed().as_secs() as i64);
    registry
        .gauge("wm_workers", "Worker threads serving requests.")
        .set(shared.workers as i64);
    registry
        .gauge(
            "wm_queue_depth_limit",
            "Bound of the pending-connection queue.",
        )
        .set(shared.queue_depth as i64);
    registry
        .gauge(
            "wm_queue_depth",
            "Connections currently waiting in the queue.",
        )
        .set(shared.queue_len.load(Ordering::Relaxed) as i64);
    registry
        .counter(
            "wm_http_connections_accepted_total",
            "Connections accepted off the listener and queued for a worker.",
        )
        .store(shared.accepted.load(Ordering::Relaxed));
    registry
        .counter(
            "wm_http_requests_handled_total",
            "Requests answered with any status.",
        )
        .store(shared.handled.load(Ordering::Relaxed));
    let stats = shared.registry.stats();
    registry
        .gauge(
            "wm_registry_resident",
            "Engine sessions currently resident in the LRU.",
        )
        .set(stats.resident as i64);
    registry
        .gauge("wm_registry_capacity", "Maximum resident engine sessions.")
        .set(stats.capacity as i64);
    registry
        .gauge(
            "wm_registry_resident_bytes",
            "Total materialized artifact heap bytes across resident sessions.",
        )
        .set(stats.resident_bytes as i64);
    registry
        .gauge(
            "wm_registry_mapped_bytes",
            "Total memory-mapped snapshot bytes across resident sessions.",
        )
        .set(stats.mapped_bytes as i64);
    if let Some(budget) = stats.resident_budget_bytes {
        registry
            .gauge(
                "wm_registry_resident_budget_bytes",
                "Resident-bytes budget of the out-of-core tier.",
            )
            .set(budget as i64);
    }
    for corpus in &stats.corpora {
        registry
            .gauge_with(
                "wm_corpus_resident",
                "Whether the corpus has a resident session (1) or is cold (0).",
                &[("corpus", &corpus.name)],
            )
            .set(i64::from(corpus.resident));
        registry
            .counter_with(
                "wm_corpus_hits_total",
                "Requests served from the corpus' resident session.",
                &[("corpus", &corpus.name)],
            )
            .store(corpus.hits);
        registry
            .counter_with(
                "wm_corpus_builds_total",
                "Session builds performed for the corpus.",
                &[("corpus", &corpus.name)],
            )
            .store(corpus.builds);
        registry
            .gauge_with(
                "wm_corpus_resident_bytes",
                "Materialized artifact heap bytes of the corpus' resident session.",
                &[("corpus", &corpus.name)],
            )
            .set(corpus.resident_bytes as i64);
        registry
            .gauge_with(
                "wm_corpus_mapped_bytes",
                "Memory-mapped snapshot bytes backing the corpus' resident session.",
                &[("corpus", &corpus.name)],
            )
            .set(corpus.mapped_bytes as i64);
        registry
            .counter_with(
                "wm_corpus_page_ins_total",
                "Lazy materialisations of mapped channels for the corpus.",
                &[("corpus", &corpus.name)],
            )
            .store(corpus.page_ins);
    }
    Response::text(200, registry.render())
}

/// Extracts the corpus name of a `/corpora/{name}/entities` path; `None`
/// for every other path (including an empty name).
fn entities_corpus(path: &str) -> Option<&str> {
    let name = path.strip_prefix("/corpora/")?.strip_suffix("/entities")?;
    (!name.is_empty() && !name.contains('/')).then_some(name)
}

fn json_200<T: serde::Serialize>(body: &T) -> Response {
    let span = Span::enter("req_serialize");
    let result = serde_json::to_string(body);
    span.finish();
    match result {
        Ok(body) => Response::json(200, body),
        Err(err) => Response::error(500, &format!("serialization failed: {err}")),
    }
}

/// Shared body of `POST /align` and `POST /matchers`: resolve the corpus,
/// validate the optional type, then serve the serialized [`AlignResponse`]
/// from the residency's response cache (memoised under `cache_key`; on a
/// cold key `align_one` / `align_all` compute the pairs).
#[allow(clippy::too_many_arguments)] // Both call sites pass every field.
fn aligned_response(
    shared: &Shared,
    corpus_name: &str,
    type_id: Option<&str>,
    matcher_label: &str,
    cache_key: String,
    deadline: &RequestDeadline,
    align_one: impl Fn(&MatchEngine, &str) -> Option<Vec<(String, String)>>,
    align_all: impl Fn(&MatchEngine) -> Vec<TypePairs>,
) -> Response {
    let corpus = match resolve_corpus(shared, corpus_name) {
        Ok(corpus) => corpus,
        Err(response) => return *response,
    };
    if let Some(response) = deadline.expired(shared, "lookup") {
        return response;
    }
    if let Some(type_id) = type_id {
        if corpus.engine().dataset().type_pairing(type_id).is_none() {
            return Response::error(
                404,
                &format!("unknown type {type_id:?} in corpus {corpus_name:?}"),
            );
        }
    }
    let compute_span = Span::enter("req_compute");
    // Latency hook for the compute phase: an injected sleep here is what
    // the deadline tests (and the `degrade` bench) use to manufacture a
    // slow pipeline without touching the engine.
    wiki_fault::pause("serve.compute");
    let body = corpus.response(&cache_key, || {
        let engine = corpus.engine();
        let alignments = match type_id {
            // The type was validated above against the immutable dataset, so
            // `align_one` returning `None` would be an internal bug — mapped
            // to a 500, never a worker-killing unwrap.
            Some(type_id) => vec![TypePairs {
                type_id: type_id.to_string(),
                pairs: align_one(engine, type_id).ok_or_else(|| {
                    format!("type {type_id:?} vanished from corpus {corpus_name:?} mid-request")
                })?,
            }],
            None => align_all(engine),
        };
        // Nested inside `req_compute`, so serialization time is carved out
        // of the compute segment, not double-counted.
        let serialize_span = Span::enter("req_serialize");
        let body = serde_json::to_string(&AlignResponse {
            corpus: corpus_name.to_string(),
            matcher: matcher_label.to_string(),
            alignments,
        })
        .map_err(|err| format!("response serialization failed: {err}"));
        serialize_span.finish();
        body
    });
    compute_span.finish();
    // The memoised body is kept even when this particular request blew its
    // budget — the *next* request gets the cached answer instantly, which
    // is exactly what a deadline-respecting retry wants.
    if let Some(response) = deadline.expired(shared, "compute") {
        return response;
    }
    match body {
        Ok(body) => Response::json(200, body.as_str()),
        Err(detail) => Response::error(500, &detail),
    }
}

/// `POST /align`: the engine's WikiMatch configuration over one type or all
/// types. Responses are memoised per `(corpus, type)` residency — repeated
/// warm requests are a cache lookup plus one buffer copy.
fn handle_align(shared: &Shared, request: &Request, deadline: &RequestDeadline) -> Response {
    let req: AlignRequest = match parse_body(request) {
        Ok(req) => req,
        Err(response) => return *response,
    };
    let type_id = req.type_id.as_deref();
    aligned_response(
        shared,
        &req.corpus,
        type_id,
        "WikiMatch",
        format!("align|{}", type_id.unwrap_or("*")),
        deadline,
        |engine, type_id| {
            engine
                .align(type_id)
                .map(|alignment| alignment.cross_pairs())
        },
        |engine| {
            engine
                .align_all()
                .iter()
                .map(|alignment| TypePairs {
                    type_id: alignment.type_id.clone(),
                    pairs: alignment.cross_pairs(),
                })
                .collect()
        },
    )
}

/// `POST /matchers`: any registered [`wikimatch::SchemaMatcher`] by name.
fn handle_matchers(shared: &Shared, request: &Request, deadline: &RequestDeadline) -> Response {
    let req: MatcherRequest = match parse_body(request) {
        Ok(req) => req,
        Err(response) => return *response,
    };
    let Some(matcher) = shared.matchers.get(&req.matcher) else {
        return Response::error(
            400,
            &format!(
                "unknown matcher {:?}; GET /matchers lists the registered names",
                req.matcher
            ),
        );
    };
    let label = matcher.label();
    let type_id = req.type_id.as_deref();
    aligned_response(
        shared,
        &req.corpus,
        type_id,
        &label,
        format!("matcher|{label}|{}", type_id.unwrap_or("*")),
        deadline,
        |engine, type_id| engine.align_with(matcher, type_id),
        |engine| {
            engine
                .align_all_with(matcher)
                .into_iter()
                .map(|(type_id, pairs)| TypePairs { type_id, pairs })
                .collect()
        },
    )
}

/// `POST /translate-query`: WikiQuery-style translation through the
/// corpus' derived correspondences, optionally answering the translated
/// query against the English edition.
fn handle_translate(shared: &Shared, request: &Request, deadline: &RequestDeadline) -> Response {
    let req: TranslateRequest = match parse_body(request) {
        Ok(req) => req,
        Err(response) => return *response,
    };
    let corpus = match resolve_corpus(shared, &req.corpus) {
        Ok(corpus) => corpus,
        Err(response) => return *response,
    };
    if let Some(response) = deadline.expired(shared, "lookup") {
        return response;
    }
    let Some(source) = CQuery::parse(&req.query) else {
        return Response::error(400, &format!("unparseable c-query {:?}", req.query));
    };
    let compute_span = Span::enter("req_compute");
    wiki_fault::pause("serve.compute");
    let (translated, stats) = corpus.dictionary().translate_query(&source);
    let top_k = req.top_k.unwrap_or(0);
    let answers = if top_k > 0 {
        QueryEngine::new(&corpus.engine().dataset().corpus).answer(
            &translated,
            &Language::En,
            top_k,
        )
    } else {
        Vec::new()
    };
    compute_span.finish();
    if let Some(response) = deadline.expired(shared, "compute") {
        return response;
    }
    json_200(&TranslateResponse {
        corpus: req.corpus.clone(),
        source,
        translated,
        translated_constraints: stats.translated,
        relaxed_constraints: stats.relaxed,
        answers,
    })
}

/// `POST /warm`: build the session and every per-type artifact now.
fn handle_warm(shared: &Shared, request: &Request, deadline: &RequestDeadline) -> Response {
    let req: CorpusRequest = match parse_body(request) {
        Ok(req) => req,
        Err(response) => return *response,
    };
    wiki_obs::request::note_corpus(&req.corpus);
    let compute_span = Span::enter("req_compute");
    let warmed = shared.registry.warm(&req.corpus);
    compute_span.finish();
    if let Some(response) = deadline.expired(shared, "compute") {
        return response;
    }
    match warmed {
        Ok(cached) => json_200(&WarmResponse {
            corpus: req.corpus,
            cached_types: cached.engine().cached_types(),
        }),
        Err(err) => Response::error(404, &err.to_string()),
    }
}

/// `POST /evict`: drop the resident session of a corpus.
fn handle_evict(shared: &Shared, request: &Request) -> Response {
    let req: CorpusRequest = match parse_body(request) {
        Ok(req) => req,
        Err(response) => return *response,
    };
    match shared.registry.evict(&req.corpus) {
        Ok(evicted) => json_200(&EvictResponse {
            corpus: req.corpus,
            evicted,
        }),
        Err(err) => Response::error(404, &err.to_string()),
    }
}

/// Applies a mutation delta through [`Registry::mutate`] and shapes the
/// report into the shared [`MutateResponse`] of both mutation endpoints.
fn mutated_response(
    shared: &Shared,
    name: &str,
    delta: &CorpusDelta,
    deadline: &RequestDeadline,
) -> Response {
    wiki_obs::request::note_corpus(name);
    let compute_span = Span::enter("req_compute");
    let mutated = shared.registry.mutate(name, delta);
    compute_span.finish();
    if let Some(response) = deadline.expired(shared, "compute") {
        // The mutation (if it succeeded) is applied and journaled — a 504
        // only means the caller's budget ran out waiting for the report.
        return response;
    }
    match mutated {
        Ok(report) => json_200(&MutateResponse {
            corpus: name.to_string(),
            inserted: report.inserted,
            updated: report.updated,
            removed: report.removed,
            types_patched: report.types_patched,
            rows_recomputed: report.rows_recomputed,
            fingerprint_before: format!("{:016x}", report.fingerprint_before),
            fingerprint: format!("{:016x}", report.fingerprint),
        }),
        // A mutation that applied in memory but could not be made durable
        // is NOT acknowledged: 503 tells the client to retry (the upsert
        // is idempotent), and Retry-After paces the retries.
        Err(err @ RegistryError::MutationNotDurable { .. }) => {
            Response::error(503, &err.to_string()).with_header("Retry-After", "1")
        }
        Err(err) => Response::error(404, &err.to_string()),
    }
}

/// `POST /corpora/{name}/entities`: upsert entities as one journaled delta.
fn handle_mutate(
    shared: &Shared,
    request: &Request,
    name: &str,
    deadline: &RequestDeadline,
) -> Response {
    let req: MutateRequest = match parse_body(request) {
        Ok(req) => req,
        Err(response) => return *response,
    };
    if req.entities.is_empty() {
        return Response::error(400, "entities must not be empty");
    }
    let mut delta = CorpusDelta::new();
    for article in req.entities {
        delta.push(wikimatch::DeltaOp::Upsert(article));
    }
    mutated_response(shared, name, &delta, deadline)
}

/// `DELETE /corpora/{name}/entities`: tombstone entities as one journaled
/// delta.
fn handle_delete(
    shared: &Shared,
    request: &Request,
    name: &str,
    deadline: &RequestDeadline,
) -> Response {
    let req: DeleteRequest = match parse_body(request) {
        Ok(req) => req,
        Err(response) => return *response,
    };
    if req.entities.is_empty() {
        return Response::error(400, "entities must not be empty");
    }
    let mut delta = CorpusDelta::new();
    for key in req.entities {
        delta.push(wikimatch::DeltaOp::Remove {
            language: key.language,
            title: key.title,
        });
    }
    mutated_response(shared, name, &delta, deadline)
}
