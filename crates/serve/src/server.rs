//! The `matchd` server: a fixed worker-thread pool draining a bounded
//! connection queue, routing the JSON protocol of [`crate::protocol`] onto
//! a shared [`Registry`].
//!
//! Concurrency model:
//!
//! * one **acceptor** thread blocks on [`TcpListener::accept`] and pushes
//!   connections into a bounded queue — when the queue is full the
//!   connection is answered `503` immediately instead of piling up;
//! * `workers` **worker** threads pop connections and serve them
//!   keep-alive until the peer closes, an error occurs, or shutdown begins;
//! * **graceful shutdown** flips a flag, wakes the acceptor with a loopback
//!   connection, lets workers finish their in-flight request (answered with
//!   `Connection: close`) and joins every thread.
//!
//! The expensive work all lives behind the registry's coalescing caches, so
//! any number of workers can hammer the same corpus without duplicating a
//! build (see `crates/serve/tests/server.rs`).

use std::io::{self, BufRead, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use serde::Deserialize;

use wiki_corpus::Language;
use wiki_query::{CQuery, QueryEngine};
use wikimatch::MatchEngine;

use crate::http::{read_request, Request, RequestError, Response};
use crate::matchers::MatcherRegistry;
use crate::protocol::{
    AlignRequest, AlignResponse, CorporaResponse, CorpusRequest, DeleteRequest, EvictResponse,
    HealthResponse, MatcherRequest, MatchersResponse, MutateRequest, MutateResponse,
    ServerCounters, StatsResponse, TranslateRequest, TranslateResponse, TypePairs, WarmResponse,
};
use crate::registry::{CachedCorpus, Registry};
use wikimatch::CorpusDelta;

/// How long a worker blocks waiting for the *first* byte of the next
/// request on an idle keep-alive connection before re-checking the
/// shutdown flag. Nothing has been consumed yet when this fires, so the
/// wait can simply resume.
const IDLE_POLL: Duration = Duration::from_millis(200);

/// Total budget for reading one request once its first byte has arrived —
/// enforced both per read (socket timeout) and across reads (a deadline
/// checked between reads by [`DeadlineReader`]), so neither a stalled nor a
/// byte-trickling client can hold a worker mid-request much longer than
/// this. Exceeding it closes the connection: retrying the read would resume
/// parsing mid-stream and corrupt the protocol.
const REQUEST_READ_TIMEOUT: Duration = Duration::from_secs(5);

/// How long a blocked response write may stall before the connection is
/// dropped. Without it a client that stops reading would pin a worker in
/// `write_all` forever (and make shutdown, which joins workers, hang).
const WRITE_TIMEOUT: Duration = Duration::from_secs(10);

/// Configuration of a [`MatchServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`MatchServer::addr`]).
    pub addr: String,
    /// Worker threads serving requests.
    pub workers: usize,
    /// Bound of the pending-connection queue; beyond it connections are
    /// answered `503` by the acceptor.
    pub queue_depth: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .clamp(2, 16),
            queue_depth: 256,
        }
    }
}

/// State shared by the acceptor, the workers and the handle.
struct Shared {
    registry: Arc<Registry>,
    matchers: MatcherRegistry,
    addr: SocketAddr,
    running: AtomicBool,
    accepted: AtomicU64,
    handled: AtomicU64,
    rejected: AtomicU64,
    workers: usize,
    queue_depth: usize,
}

impl Shared {
    fn counters(&self) -> ServerCounters {
        ServerCounters {
            accepted: self.accepted.load(Ordering::Relaxed),
            handled: self.handled.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
        }
    }
}

/// A running `matchd` server; dropping the handle without calling
/// [`shutdown`](Self::shutdown) detaches the threads.
pub struct MatchServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for MatchServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MatchServer")
            .field("addr", &self.addr)
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl MatchServer {
    /// Binds, spawns the worker pool and the acceptor, and returns
    /// immediately. The default matcher catalog backs `POST /matchers`.
    pub fn start(registry: Arc<Registry>, config: ServerConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let workers = config.workers.max(1);
        let queue_depth = config.queue_depth.max(1);
        let shared = Arc::new(Shared {
            registry,
            matchers: MatcherRegistry::default(),
            addr,
            running: AtomicBool::new(true),
            accepted: AtomicU64::new(0),
            handled: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            workers,
            queue_depth,
        });

        let (tx, rx) = mpsc::sync_channel::<TcpStream>(queue_depth);
        let rx = Arc::new(Mutex::new(rx));
        let worker_handles: Vec<JoinHandle<()>> = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let rx = Arc::clone(&rx);
                thread::Builder::new()
                    .name(format!("matchd-worker-{i}"))
                    .spawn(move || worker_loop(&shared, &rx))
                    .expect("failed to spawn worker thread")
            })
            .collect();

        let acceptor = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("matchd-acceptor".to_string())
                .spawn(move || acceptor_loop(&shared, listener, tx))
                .expect("failed to spawn acceptor thread")
        };

        Ok(Self {
            addr,
            shared,
            acceptor: Some(acceptor),
            workers: worker_handles,
        })
    }

    /// The actual bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until shutdown begins — either [`shutdown`](Self::shutdown)
    /// was called or a client posted `/shutdown`.
    pub fn wait(&mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }

    /// Requests shutdown: stops accepting, drains queued connections,
    /// finishes in-flight requests and joins every thread.
    pub fn shutdown(mut self) {
        self.shared.running.store(false, Ordering::SeqCst);
        // Wake the acceptor out of its blocking accept.
        let _ = TcpStream::connect(wake_addr(self.addr));
        self.wait();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// A connectable form of the bound address, for the self-connect that wakes
/// the acceptor: a wildcard bind (`0.0.0.0` / `[::]`) is not a connect
/// target on every platform, so it is rewritten to the loopback of the same
/// family.
fn wake_addr(addr: SocketAddr) -> SocketAddr {
    let mut addr = addr;
    if addr.ip().is_unspecified() {
        match addr {
            SocketAddr::V4(_) => addr.set_ip(std::net::Ipv4Addr::LOCALHOST.into()),
            SocketAddr::V6(_) => addr.set_ip(std::net::Ipv6Addr::LOCALHOST.into()),
        }
    }
    addr
}

fn acceptor_loop(shared: &Shared, listener: TcpListener, tx: SyncSender<TcpStream>) {
    for stream in listener.incoming() {
        if !shared.running.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(stream) => stream,
            Err(_) => continue,
        };
        match tx.try_send(stream) {
            Ok(()) => {
                shared.accepted.fetch_add(1, Ordering::Relaxed);
            }
            Err(TrySendError::Full(mut stream)) => {
                // Bounded queue: shed load at the door instead of queueing
                // unboundedly. The write is timeout-guarded — the acceptor
                // must never block on a slow peer.
                shared.rejected.fetch_add(1, Ordering::Relaxed);
                let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
                let _ = Response::error(503, "request queue full").write(&mut stream, false);
            }
            Err(TrySendError::Disconnected(_)) => break,
        }
    }
    // Dropping the sender lets workers drain the queue and exit.
}

/// A `BufRead` adapter that fails with `TimedOut` once a deadline passes.
///
/// The socket read timeout alone only bounds each *individual* read — a
/// client trickling one header byte per few seconds would keep completing
/// reads and pin the worker forever. Checking a wall-clock deadline between
/// reads bounds the whole request to roughly
/// `deadline + REQUEST_READ_TIMEOUT`.
struct DeadlineReader<'a> {
    inner: &'a mut BufReader<TcpStream>,
    deadline: Instant,
}

impl DeadlineReader<'_> {
    fn check(&self) -> io::Result<()> {
        if Instant::now() >= self.deadline {
            Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "request read deadline exceeded",
            ))
        } else {
            Ok(())
        }
    }
}

impl io::Read for DeadlineReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.check()?;
        self.inner.read(buf)
    }
}

impl BufRead for DeadlineReader<'_> {
    fn fill_buf(&mut self) -> io::Result<&[u8]> {
        self.check()?;
        self.inner.fill_buf()
    }

    fn consume(&mut self, amt: usize) {
        self.inner.consume(amt)
    }
}

fn worker_loop(shared: &Shared, rx: &Mutex<Receiver<TcpStream>>) {
    loop {
        // Hold the lock only for the dequeue, not while serving.
        let stream = match rx.lock() {
            Ok(rx) => rx.recv(),
            Err(_) => return,
        };
        match stream {
            Ok(stream) => serve_connection(shared, stream),
            Err(_) => return, // acceptor gone and queue drained
        }
    }
}

fn serve_connection(shared: &Shared, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
    let mut reader = match stream.try_clone() {
        Ok(clone) => BufReader::new(clone),
        Err(_) => return,
    };
    loop {
        // Idle phase: wait for the first byte of the next request under the
        // short poll timeout. `fill_buf` consumes nothing, so a timeout
        // here is always safe to retry — and each poll re-checks the
        // shutdown flag so shutdown is not held hostage by idle peers.
        let _ = stream.set_read_timeout(Some(IDLE_POLL));
        match reader.fill_buf() {
            Ok([]) => return, // clean EOF between requests
            Ok(_) => {}
            Err(err)
                if matches!(
                    err.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if !shared.running.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(_) => return,
        }
        // Request phase: bytes are in flight. Any per-read timeout or
        // deadline overrun from here on is a mid-request stall and closes
        // the connection (see `REQUEST_READ_TIMEOUT`).
        let _ = stream.set_read_timeout(Some(REQUEST_READ_TIMEOUT));
        let mut deadline_reader = DeadlineReader {
            inner: &mut reader,
            deadline: Instant::now() + REQUEST_READ_TIMEOUT,
        };
        match read_request(&mut deadline_reader) {
            Ok(request) => {
                let response = route_with_panic_barrier(shared, &request);
                // Evaluated *after* routing so a request that initiates
                // shutdown (POST /shutdown) is itself answered with
                // `Connection: close` instead of a keep-alive promise the
                // dying server cannot honour.
                let keep_alive = request.keep_alive && shared.running.load(Ordering::SeqCst);
                shared.handled.fetch_add(1, Ordering::Relaxed);
                if response.write(&mut stream, keep_alive).is_err() || !keep_alive {
                    return;
                }
            }
            Err(RequestError::Closed) => return,
            Err(RequestError::Io(_)) => return,
            Err(RequestError::Bad(status, message)) => {
                // Malformed requests are answered too, so they count as
                // handled.
                shared.handled.fetch_add(1, Ordering::Relaxed);
                let _ = Response::error(status, &message).write(&mut stream, false);
                return;
            }
        }
    }
}

/// Routes a request behind a panic barrier: whatever a handler does with
/// request-derived data, a panic becomes a 500 JSON response instead of
/// killing the worker thread (a pool that loses a worker per bad request
/// would eventually stop serving entirely). The shared state is safe to
/// keep using afterwards — registry and engine locks recover from
/// poisoning, and every cache slot is an idempotent once-cell.
fn route_with_panic_barrier(shared: &Shared, request: &Request) -> Response {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| route(shared, request)))
        .unwrap_or_else(|panic| {
            let detail = panic
                .downcast_ref::<&str>()
                .copied()
                .or_else(|| panic.downcast_ref::<String>().map(String::as_str))
                .unwrap_or("unknown panic");
            Response::error(500, &format!("internal error: {detail}"))
        })
}

/// Parses a JSON request body, mapping failures to a 400 response.
fn parse_body<T: Deserialize>(request: &Request) -> Result<T, Box<Response>> {
    let text = request
        .body_utf8()
        .ok_or_else(|| Box::new(Response::error(400, "request body is not valid UTF-8")))?;
    serde_json::from_str(text).map_err(|err| {
        Box::new(Response::error(
            400,
            &format!("invalid request body: {err}"),
        ))
    })
}

/// Resolves a corpus name, mapping unknown names to a 404 response.
fn resolve_corpus(shared: &Shared, name: &str) -> Result<Arc<CachedCorpus>, Box<Response>> {
    shared
        .registry
        .corpus(name)
        .map_err(|err| Box::new(Response::error(404, &err.to_string())))
}

/// Routes one request. Every branch returns a JSON response.
fn route(shared: &Shared, request: &Request) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => json_200(&HealthResponse {
            status: "ok".to_string(),
            service: "matchd".to_string(),
            version: env!("CARGO_PKG_VERSION").to_string(),
        }),
        ("GET", "/stats") => json_200(&StatsResponse {
            server: shared.counters(),
            workers: shared.workers,
            queue_depth: shared.queue_depth,
            registry: shared.registry.stats(),
        }),
        ("GET", "/corpora") => json_200(&CorporaResponse {
            corpora: shared.registry.specs(),
        }),
        ("GET", "/matchers") => json_200(&MatchersResponse {
            matchers: shared.matchers.names(),
        }),
        ("POST", "/align") => handle_align(shared, request),
        ("POST", "/matchers") => handle_matchers(shared, request),
        ("POST", "/translate-query") => handle_translate(shared, request),
        ("POST", "/warm") => handle_warm(shared, request),
        ("POST", "/evict") => handle_evict(shared, request),
        ("POST", "/shutdown") => {
            // Flip the flag, then wake the acceptor out of its blocking
            // accept so `MatchServer::wait` returns promptly.
            shared.running.store(false, Ordering::SeqCst);
            let _ = TcpStream::connect(wake_addr(shared.addr));
            Response::json(200, "{\"status\":\"shutting down\"}")
        }
        (
            _,
            "/healthz" | "/stats" | "/corpora" | "/matchers" | "/align" | "/translate-query"
            | "/warm" | "/evict" | "/shutdown",
        ) => Response::error(405, &format!("method {} not allowed here", request.method)),
        (method, path) => match entities_corpus(path) {
            Some(name) => match method {
                "POST" => handle_mutate(shared, request, name),
                "DELETE" => handle_delete(shared, request, name),
                _ => Response::error(405, &format!("method {method} not allowed here")),
            },
            None => Response::error(404, &format!("unknown route {path}")),
        },
    }
}

/// Extracts the corpus name of a `/corpora/{name}/entities` path; `None`
/// for every other path (including an empty name).
fn entities_corpus(path: &str) -> Option<&str> {
    let name = path.strip_prefix("/corpora/")?.strip_suffix("/entities")?;
    (!name.is_empty() && !name.contains('/')).then_some(name)
}

fn json_200<T: serde::Serialize>(body: &T) -> Response {
    match serde_json::to_string(body) {
        Ok(body) => Response::json(200, body),
        Err(err) => Response::error(500, &format!("serialization failed: {err}")),
    }
}

/// Shared body of `POST /align` and `POST /matchers`: resolve the corpus,
/// validate the optional type, then serve the serialized [`AlignResponse`]
/// from the residency's response cache (memoised under `cache_key`; on a
/// cold key `align_one` / `align_all` compute the pairs).
fn aligned_response(
    shared: &Shared,
    corpus_name: &str,
    type_id: Option<&str>,
    matcher_label: &str,
    cache_key: String,
    align_one: impl Fn(&MatchEngine, &str) -> Option<Vec<(String, String)>>,
    align_all: impl Fn(&MatchEngine) -> Vec<TypePairs>,
) -> Response {
    let corpus = match resolve_corpus(shared, corpus_name) {
        Ok(corpus) => corpus,
        Err(response) => return *response,
    };
    if let Some(type_id) = type_id {
        if corpus.engine().dataset().type_pairing(type_id).is_none() {
            return Response::error(
                404,
                &format!("unknown type {type_id:?} in corpus {corpus_name:?}"),
            );
        }
    }
    let body = corpus.response(&cache_key, || {
        let engine = corpus.engine();
        let alignments = match type_id {
            // The type was validated above against the immutable dataset, so
            // `align_one` returning `None` would be an internal bug — mapped
            // to a 500, never a worker-killing unwrap.
            Some(type_id) => vec![TypePairs {
                type_id: type_id.to_string(),
                pairs: align_one(engine, type_id).ok_or_else(|| {
                    format!("type {type_id:?} vanished from corpus {corpus_name:?} mid-request")
                })?,
            }],
            None => align_all(engine),
        };
        serde_json::to_string(&AlignResponse {
            corpus: corpus_name.to_string(),
            matcher: matcher_label.to_string(),
            alignments,
        })
        .map_err(|err| format!("response serialization failed: {err}"))
    });
    match body {
        Ok(body) => Response::json(200, body.as_str()),
        Err(detail) => Response::error(500, &detail),
    }
}

/// `POST /align`: the engine's WikiMatch configuration over one type or all
/// types. Responses are memoised per `(corpus, type)` residency — repeated
/// warm requests are a cache lookup plus one buffer copy.
fn handle_align(shared: &Shared, request: &Request) -> Response {
    let req: AlignRequest = match parse_body(request) {
        Ok(req) => req,
        Err(response) => return *response,
    };
    let type_id = req.type_id.as_deref();
    aligned_response(
        shared,
        &req.corpus,
        type_id,
        "WikiMatch",
        format!("align|{}", type_id.unwrap_or("*")),
        |engine, type_id| {
            engine
                .align(type_id)
                .map(|alignment| alignment.cross_pairs())
        },
        |engine| {
            engine
                .align_all()
                .iter()
                .map(|alignment| TypePairs {
                    type_id: alignment.type_id.clone(),
                    pairs: alignment.cross_pairs(),
                })
                .collect()
        },
    )
}

/// `POST /matchers`: any registered [`wikimatch::SchemaMatcher`] by name.
fn handle_matchers(shared: &Shared, request: &Request) -> Response {
    let req: MatcherRequest = match parse_body(request) {
        Ok(req) => req,
        Err(response) => return *response,
    };
    let Some(matcher) = shared.matchers.get(&req.matcher) else {
        return Response::error(
            400,
            &format!(
                "unknown matcher {:?}; GET /matchers lists the registered names",
                req.matcher
            ),
        );
    };
    let label = matcher.label();
    let type_id = req.type_id.as_deref();
    aligned_response(
        shared,
        &req.corpus,
        type_id,
        &label,
        format!("matcher|{label}|{}", type_id.unwrap_or("*")),
        |engine, type_id| engine.align_with(matcher, type_id),
        |engine| {
            engine
                .align_all_with(matcher)
                .into_iter()
                .map(|(type_id, pairs)| TypePairs { type_id, pairs })
                .collect()
        },
    )
}

/// `POST /translate-query`: WikiQuery-style translation through the
/// corpus' derived correspondences, optionally answering the translated
/// query against the English edition.
fn handle_translate(shared: &Shared, request: &Request) -> Response {
    let req: TranslateRequest = match parse_body(request) {
        Ok(req) => req,
        Err(response) => return *response,
    };
    let corpus = match resolve_corpus(shared, &req.corpus) {
        Ok(corpus) => corpus,
        Err(response) => return *response,
    };
    let Some(source) = CQuery::parse(&req.query) else {
        return Response::error(400, &format!("unparseable c-query {:?}", req.query));
    };
    let (translated, stats) = corpus.dictionary().translate_query(&source);
    let top_k = req.top_k.unwrap_or(0);
    let answers = if top_k > 0 {
        QueryEngine::new(&corpus.engine().dataset().corpus).answer(
            &translated,
            &Language::En,
            top_k,
        )
    } else {
        Vec::new()
    };
    json_200(&TranslateResponse {
        corpus: req.corpus.clone(),
        source,
        translated,
        translated_constraints: stats.translated,
        relaxed_constraints: stats.relaxed,
        answers,
    })
}

/// `POST /warm`: build the session and every per-type artifact now.
fn handle_warm(shared: &Shared, request: &Request) -> Response {
    let req: CorpusRequest = match parse_body(request) {
        Ok(req) => req,
        Err(response) => return *response,
    };
    match shared.registry.warm(&req.corpus) {
        Ok(cached) => json_200(&WarmResponse {
            corpus: req.corpus,
            cached_types: cached.engine().cached_types(),
        }),
        Err(err) => Response::error(404, &err.to_string()),
    }
}

/// `POST /evict`: drop the resident session of a corpus.
fn handle_evict(shared: &Shared, request: &Request) -> Response {
    let req: CorpusRequest = match parse_body(request) {
        Ok(req) => req,
        Err(response) => return *response,
    };
    match shared.registry.evict(&req.corpus) {
        Ok(evicted) => json_200(&EvictResponse {
            corpus: req.corpus,
            evicted,
        }),
        Err(err) => Response::error(404, &err.to_string()),
    }
}

/// Applies a mutation delta through [`Registry::mutate`] and shapes the
/// report into the shared [`MutateResponse`] of both mutation endpoints.
fn mutated_response(shared: &Shared, name: &str, delta: &CorpusDelta) -> Response {
    match shared.registry.mutate(name, delta) {
        Ok(report) => json_200(&MutateResponse {
            corpus: name.to_string(),
            inserted: report.inserted,
            updated: report.updated,
            removed: report.removed,
            types_patched: report.types_patched,
            rows_recomputed: report.rows_recomputed,
            fingerprint_before: format!("{:016x}", report.fingerprint_before),
            fingerprint: format!("{:016x}", report.fingerprint),
        }),
        Err(err) => Response::error(404, &err.to_string()),
    }
}

/// `POST /corpora/{name}/entities`: upsert entities as one journaled delta.
fn handle_mutate(shared: &Shared, request: &Request, name: &str) -> Response {
    let req: MutateRequest = match parse_body(request) {
        Ok(req) => req,
        Err(response) => return *response,
    };
    if req.entities.is_empty() {
        return Response::error(400, "entities must not be empty");
    }
    let mut delta = CorpusDelta::new();
    for article in req.entities {
        delta.push(wikimatch::DeltaOp::Upsert(article));
    }
    mutated_response(shared, name, &delta)
}

/// `DELETE /corpora/{name}/entities`: tombstone entities as one journaled
/// delta.
fn handle_delete(shared: &Shared, request: &Request, name: &str) -> Response {
    let req: DeleteRequest = match parse_body(request) {
        Ok(req) => req,
        Err(response) => return *response,
    };
    if req.entities.is_empty() {
        return Response::error(400, "entities must not be empty");
    }
    let mut delta = CorpusDelta::new();
    for key in req.entities {
        delta.push(wikimatch::DeltaOp::Remove {
            language: key.language,
            title: key.title,
        });
    }
    mutated_response(shared, name, &delta)
}
