//! The named-matcher registry behind `POST /matchers`.
//!
//! Every approach of the workspace implements [`SchemaMatcher`]; this
//! module gives each instance a stable, case-insensitively matched name so
//! clients can pick a matcher over the wire. The default catalog covers the
//! paper's comparison set: WikiMatch itself, Bouma, every COMA++
//! configuration and LSI top-k for the ks of Figure 6.

use wiki_baselines::{BoumaMatcher, ComaConfiguration, ComaMatcher, LsiTopKMatcher};
use wikimatch::{SchemaMatcher, WikiMatch};

/// A set of named [`SchemaMatcher`] plugins.
pub struct MatcherRegistry {
    matchers: Vec<Box<dyn SchemaMatcher>>,
}

impl std::fmt::Debug for MatcherRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MatcherRegistry")
            .field("matchers", &self.names())
            .finish()
    }
}

impl Default for MatcherRegistry {
    /// The full comparison catalog of the paper: `WikiMatch`, `Bouma`,
    /// one `COMA++ <config>` entry per configuration, and `LSI top-k`
    /// for k ∈ {1, 3, 5, 10}.
    fn default() -> Self {
        let mut registry = Self::empty();
        registry.register(Box::new(WikiMatch::default()));
        registry.register(Box::new(BoumaMatcher::default()));
        for config in ComaConfiguration::all() {
            registry.register(Box::new(ComaMatcher::new(*config)));
        }
        for k in [1usize, 3, 5, 10] {
            registry.register(Box::new(LsiTopKMatcher::new(k)));
        }
        registry
    }
}

impl MatcherRegistry {
    /// An empty registry.
    pub fn empty() -> Self {
        Self {
            matchers: Vec::new(),
        }
    }

    /// Registers a matcher; its [`SchemaMatcher::label`] is the lookup key
    /// (with [`SchemaMatcher::name`] accepted as a shorthand when it is
    /// unambiguous).
    pub fn register(&mut self, matcher: Box<dyn SchemaMatcher>) {
        self.matchers.push(matcher);
    }

    /// The labels accepted by [`get`](Self::get), in registration order.
    pub fn names(&self) -> Vec<String> {
        self.matchers.iter().map(|m| m.label()).collect()
    }

    /// Looks a matcher up by label or (unambiguous) name,
    /// case-insensitively.
    pub fn get(&self, wanted: &str) -> Option<&dyn SchemaMatcher> {
        let wanted = wanted.trim().to_ascii_lowercase();
        // Exact label match first.
        if let Some(m) = self
            .matchers
            .iter()
            .find(|m| m.label().to_ascii_lowercase() == wanted)
        {
            return Some(m.as_ref());
        }
        // Fall back to the short name, but only when unambiguous.
        let mut by_name = self
            .matchers
            .iter()
            .filter(|m| m.name().to_ascii_lowercase() == wanted);
        match (by_name.next(), by_name.next()) {
            (Some(m), None) => Some(m.as_ref()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_catalog_covers_the_comparison_set() {
        let registry = MatcherRegistry::default();
        let names = registry.names();
        assert!(names.contains(&"WikiMatch".to_string()), "{names:?}");
        assert!(names.contains(&"Bouma".to_string()), "{names:?}");
        assert!(names.iter().any(|n| n.starts_with("COMA++")), "{names:?}");
        assert!(names.contains(&"LSI top-3".to_string()), "{names:?}");
    }

    #[test]
    fn lookup_is_case_insensitive_on_labels() {
        let registry = MatcherRegistry::default();
        assert_eq!(registry.get("wikimatch").unwrap().name(), "WikiMatch");
        assert_eq!(registry.get("  BOUMA ").unwrap().name(), "Bouma");
        assert_eq!(registry.get("lsi top-10").unwrap().label(), "LSI top-10");
        assert!(registry.get("no such matcher").is_none());
    }

    #[test]
    fn ambiguous_short_names_are_rejected() {
        let registry = MatcherRegistry::default();
        // Several COMA++ configurations share the name "COMA++" and several
        // LSI top-k matchers share "LSI" — a bare short name must not pick
        // one arbitrarily.
        assert!(registry.get("COMA++").is_none());
        assert!(registry.get("LSI").is_none());
        // Their full labels stay addressable.
        assert!(registry.names().iter().all(|label| {
            registry
                .get(label)
                .map(|m| m.label() == *label)
                .unwrap_or(false)
        }));
    }
}
