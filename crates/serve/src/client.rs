//! A small blocking HTTP/1.1 client for `matchd`, used by `matchbench`
//! and the integration tests.
//!
//! Keeps one keep-alive connection per client and reconnects transparently
//! when the server closed it (e.g. after a `Connection: close` response or
//! an idle timeout).

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};

use serde::{Deserialize, Serialize};

use crate::protocol::ErrorBody;

/// A decoded HTTP response.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// Status code.
    pub status: u16,
    /// Body text.
    pub body: String,
    /// Response headers, lower-cased names, arrival order.
    pub headers: Vec<(String, String)>,
}

impl ClientResponse {
    /// True for 2xx statuses.
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.status)
    }

    /// First value of a response header (name compared case-insensitively).
    pub fn header(&self, name: &str) -> Option<&str> {
        let wanted = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == wanted)
            .map(|(_, v)| v.as_str())
    }

    /// Deserializes the body, mapping protocol errors (non-2xx with the
    /// standard error envelope) to an [`io::Error`].
    pub fn json<T: Deserialize>(&self) -> io::Result<T> {
        if !self.is_success() {
            let detail = serde_json::from_str::<ErrorBody>(&self.body)
                .map(|e| e.error)
                .unwrap_or_else(|_| self.body.clone());
            return Err(io::Error::other(format!("HTTP {}: {detail}", self.status)));
        }
        serde_json::from_str(&self.body)
            .map_err(|err| io::Error::other(format!("bad response body: {err}")))
    }
}

/// A blocking keep-alive client for one `matchd` server.
#[derive(Debug)]
pub struct MatchClient {
    addr: SocketAddr,
    connection: Option<BufReader<TcpStream>>,
}

impl MatchClient {
    /// Creates a client for `addr` (connection is opened lazily).
    pub fn new(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::other("address resolved to nothing"))?;
        Ok(Self {
            addr,
            connection: None,
        })
    }

    /// The server address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    fn connection(&mut self) -> io::Result<&mut BufReader<TcpStream>> {
        if self.connection.is_none() {
            let stream = TcpStream::connect(self.addr)?;
            stream.set_nodelay(true)?;
            self.connection = Some(BufReader::new(stream));
        }
        // Infallible (the slot was just filled), but kept panic-free: the
        // crate denies unwrap/expect outside tests.
        self.connection
            .as_mut()
            .ok_or_else(|| io::Error::other("connection slot empty after open"))
    }

    /// Issues one request. **`GET`s** are retried once on a fresh
    /// connection when the keep-alive one turned out to be dead; non-GET
    /// requests are never retried automatically — the server may already
    /// have executed a non-idempotent action (evict, shutdown) even though
    /// the response was lost, and a silent replay would both repeat the
    /// action and report the *second* outcome.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<ClientResponse> {
        match self.try_request(method, path, body) {
            Ok(response) => Ok(response),
            Err(err) => {
                self.connection = None;
                if method.eq_ignore_ascii_case("GET") {
                    self.try_request(method, path, body)
                } else {
                    Err(err)
                }
            }
        }
    }

    /// `GET path`.
    pub fn get(&mut self, path: &str) -> io::Result<ClientResponse> {
        self.request("GET", path, None)
    }

    /// `POST path` with a JSON-serialized body.
    pub fn post<T: Serialize>(&mut self, path: &str, body: &T) -> io::Result<ClientResponse> {
        let body = serde_json::to_string(body)
            .map_err(|err| io::Error::other(format!("request serialization failed: {err}")))?;
        self.request("POST", path, Some(&body))
    }

    /// `DELETE path` with a JSON-serialized body (never auto-retried, like
    /// every non-GET).
    pub fn delete<T: Serialize>(&mut self, path: &str, body: &T) -> io::Result<ClientResponse> {
        let body = serde_json::to_string(body)
            .map_err(|err| io::Error::other(format!("request serialization failed: {err}")))?;
        self.request("DELETE", path, Some(&body))
    }

    fn try_request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<ClientResponse> {
        let reader = self.connection()?;
        let body = body.unwrap_or("");
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: matchd\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        {
            let stream = reader.get_mut();
            stream.write_all(head.as_bytes())?;
            stream.write_all(body.as_bytes())?;
            stream.flush()?;
        }
        let response = read_response(reader);
        if response.is_err() {
            self.connection = None;
        } else if let Ok((_, close)) = &response {
            if *close {
                self.connection = None;
            }
        }
        response.map(|(response, _)| response)
    }
}

/// Reads one response; returns it plus whether the server will close the
/// connection.
fn read_response(reader: &mut BufReader<TcpStream>) -> io::Result<(ClientResponse, bool)> {
    let status_line = read_line(reader)?;
    // "HTTP/1.1 200 OK"
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| io::Error::other(format!("malformed status line {status_line:?}")))?;
    let mut content_length = 0usize;
    let mut close = false;
    let mut headers = Vec::new();
    loop {
        let line = read_line(reader)?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(io::Error::other(format!("malformed header {line:?}")));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        if name == "content-length" {
            content_length = value
                .parse()
                .map_err(|_| io::Error::other(format!("bad Content-Length {value:?}")))?;
        } else if name == "connection" && value.eq_ignore_ascii_case("close") {
            close = true;
        }
        headers.push((name, value.to_string()));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let body = String::from_utf8(body)
        .map_err(|_| io::Error::other("response body is not valid UTF-8"))?;
    Ok((
        ClientResponse {
            status,
            body,
            headers,
        },
        close,
    ))
}

fn read_line(reader: &mut BufReader<TcpStream>) -> io::Result<String> {
    let mut line = Vec::new();
    let read = reader.read_until(b'\n', &mut line)?;
    if read == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed mid-response",
        ));
    }
    while matches!(line.last(), Some(b'\n' | b'\r')) {
        line.pop();
    }
    String::from_utf8(line).map_err(|_| io::Error::other("non-UTF-8 response head"))
}
