//! The corpus registry: named corpora behind an LRU of shared
//! [`MatchEngine`] sessions.
//!
//! A [`Registry`] owns a set of [`CorpusSpec`]s — descriptions of datasets
//! the service can serve. Sessions are built **lazily** on first request and
//! cached behind an LRU with a configurable capacity, so a `matchd` process
//! can advertise every synthetic scale tier while only paying (memory and
//! build time) for the corpora traffic actually touches.
//!
//! Two levels of request coalescing keep cold corpora from stampeding:
//!
//! 1. **Session builds** — concurrent first requests for the same corpus
//!    rendezvous on a per-corpus `OnceLock` slot: exactly one thread
//!    generates the dataset and builds the engine, the rest block and share
//!    the result (observable through [`CorpusStats::builds`]).
//! 2. **Per-type artifacts** — inside the shared engine, the per-type
//!    schema/similarity builds coalesce the same way (observable through
//!    [`wikimatch::EngineStats::artifact_builds`]).
//!
//! On top of the engine, [`CachedCorpus`] memoises two serving-layer
//! artifacts: the [`CorrespondenceDictionary`] used by query translation and
//! a keyed cache of serialized responses, both built once per residency.
//!
//! ## The disk tier
//!
//! With [`Registry::with_snapshot_dir`] the LRU gains a tier *under* it:
//! evicted sessions spill their computed artifacts to a
//! [`wikimatch::snapshot`] file, [`Registry::warm`] writes through, and a
//! cold request checks the directory before building — a hit restores the
//! dictionary and every persisted per-type artifact **bit-identical** to a
//! fresh build, with zero artifact computation. Stale or damaged files are
//! never trusted: the snapshot layer validates a corpus fingerprint, format
//! version and checksum, and any rejection simply falls back to building.

use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError, RwLock};

use serde::{Deserialize, Serialize};

use wiki_corpus::{Dataset, Language, SyntheticConfig};
use wiki_query::CorrespondenceDictionary;
use wikimatch::snapshot::EngineSnapshot;
use wikimatch::{ComputeMode, EngineStats, MatchEngine, SnapshotError};

/// Whether an eviction's disk spill runs on the calling thread or on a
/// detached background thread.
#[derive(Debug, Clone, Copy)]
enum SpillMode {
    /// Spill before returning (explicit `/evict`, shutdown persistence).
    Synchronous,
    /// Spill on a background thread (LRU-pressure evictions, which run on
    /// whatever request worker tipped the capacity).
    Background,
}

/// Captures and saves one session's artifacts, bumping the corpus'
/// `snapshot_saves` on success. Failures are reported and swallowed:
/// persistence is an optimisation, never a serving error.
fn spill_to(path: &Path, entry: &CorpusEntry, cached: &CachedCorpus) {
    match EngineSnapshot::capture(cached.engine()).save(path) {
        Ok(()) => {
            entry.snapshot_saves.fetch_add(1, Ordering::Relaxed);
        }
        Err(err) => eprintln!(
            "warning: failed to persist snapshot for corpus {:?}: {err}",
            entry.spec.name
        ),
    }
}

/// Recovers the guarded value of a poisoned lock.
///
/// Registry state is a set of once-cells and counters that are consistent
/// at every instruction boundary, so a panic in some worker (caught by the
/// server's panic barrier) must not wedge every other worker sharing the
/// registry.
fn recover<T>(result: Result<T, PoisonError<T>>) -> T {
    result.unwrap_or_else(PoisonError::into_inner)
}

/// Description of one corpus a [`Registry`] can serve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CorpusSpec {
    /// Registry name of the corpus (e.g. `"pt-medium"`).
    pub name: String,
    /// Foreign language of the pair (English is always the other side).
    pub language: Language,
    /// Generator configuration of the synthetic dataset.
    pub config: SyntheticConfig,
}

impl CorpusSpec {
    /// A spec for one language pair and named scale tier
    /// (`tiny` / `small` / `medium` / `large`), named `"<code>-<tier>"`.
    pub fn tier(language: Language, tier: &str) -> Option<Self> {
        let config = match tier {
            "tiny" => SyntheticConfig::tiny(),
            "small" => SyntheticConfig::small(),
            "medium" => SyntheticConfig::medium(),
            "large" => SyntheticConfig::large(),
            _ => return None,
        };
        Some(Self {
            name: format!("{}-{tier}", language.code()),
            language,
            config,
        })
    }

    /// The built-in serving catalog: every synthetic scale tier for both of
    /// the paper's language pairs (`pt-tiny` … `vi-large`).
    pub fn scale_tiers(tiers: &[&str]) -> Vec<Self> {
        let mut specs = Vec::new();
        for language in [Language::Pt, Language::Vn] {
            for tier in tiers {
                if let Some(spec) = Self::tier(language.clone(), tier) {
                    specs.push(spec);
                }
            }
        }
        specs
    }

    /// Generates the dataset this spec describes.
    pub fn dataset(&self) -> Dataset {
        Dataset::generate(self.language.clone(), &self.config)
    }
}

/// Error returned by registry operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// No corpus with the given name is registered.
    UnknownCorpus(String),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::UnknownCorpus(name) => write!(f, "unknown corpus {name:?}"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// A resident corpus: the shared engine session plus serving-layer caches
/// that live and die with the residency.
#[derive(Debug)]
pub struct CachedCorpus {
    engine: Arc<MatchEngine>,
    dictionary: OnceLock<CorrespondenceDictionary>,
    responses: ResponseCache,
}

impl CachedCorpus {
    fn from_engine(engine: MatchEngine) -> Self {
        Self {
            engine: Arc::new(engine),
            dictionary: OnceLock::new(),
            responses: ResponseCache::default(),
        }
    }

    /// The shared engine session.
    pub fn engine(&self) -> &Arc<MatchEngine> {
        &self.engine
    }

    /// The correspondence dictionary for query translation, derived from a
    /// full alignment of the corpus on first use (concurrent first requests
    /// coalesce on the slot).
    pub fn dictionary(&self) -> &CorrespondenceDictionary {
        self.dictionary.get_or_init(|| {
            let alignments = self.engine.align_all();
            CorrespondenceDictionary::build(self.engine.dataset(), &alignments)
        })
    }

    /// A serialized response memoised under `key`; `make` runs at most once
    /// per key per residency, concurrent first requests share one compute.
    ///
    /// `make` may fail; the error (also memoised — response production is
    /// deterministic) is reported to every requester so the serving layer
    /// can answer 500 instead of panicking a worker.
    pub fn response(
        &self,
        key: &str,
        make: impl FnOnce() -> Result<String, String>,
    ) -> Result<Arc<String>, String> {
        self.responses.get_or_init(key, make)
    }
}

/// Keyed once-cache of serialized responses (same slot pattern as the
/// engine's per-type artifacts, so cold keys do not stampede).
#[derive(Debug, Default)]
struct ResponseCache {
    #[allow(clippy::type_complexity)]
    slots: RwLock<HashMap<String, Arc<OnceLock<Result<Arc<String>, String>>>>>,
}

impl ResponseCache {
    fn get_or_init(
        &self,
        key: &str,
        make: impl FnOnce() -> Result<String, String>,
    ) -> Result<Arc<String>, String> {
        let slot = {
            let slots = recover(self.slots.read());
            slots.get(key).cloned()
        };
        let slot = slot.unwrap_or_else(|| {
            let mut slots = recover(self.slots.write());
            Arc::clone(slots.entry(key.to_string()).or_default())
        });
        slot.get_or_init(|| make().map(Arc::new)).clone()
    }
}

/// One registered corpus: its spec, lifetime counters, and the session slot
/// of the current residency (if any).
#[derive(Debug)]
struct CorpusEntry {
    spec: CorpusSpec,
    hits: AtomicU64,
    misses: AtomicU64,
    builds: AtomicU64,
    evictions: AtomicU64,
    snapshot_loads: AtomicU64,
    snapshot_saves: AtomicU64,
    /// `Some(slot)` while resident or being built; `None` when evicted.
    /// Concurrent cold requests clone the same slot and coalesce on its
    /// `OnceLock`.
    session: Mutex<Option<Arc<OnceLock<Arc<CachedCorpus>>>>>,
}

impl CorpusEntry {
    fn new(spec: CorpusSpec) -> Self {
        Self {
            spec,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            builds: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            snapshot_loads: AtomicU64::new(0),
            snapshot_saves: AtomicU64::new(0),
            session: Mutex::new(None),
        }
    }

    fn resident(&self) -> Option<Arc<CachedCorpus>> {
        let session = recover(self.session.lock());
        session.as_ref().and_then(|slot| slot.get()).cloned()
    }
}

/// Lifetime statistics of one registered corpus, as served by `/stats`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CorpusStats {
    /// Registry name.
    pub name: String,
    /// Whether a session is currently resident in the LRU.
    pub resident: bool,
    /// Requests served from the resident session.
    pub hits: u64,
    /// Requests that found the corpus cold (they either started or joined a
    /// session build).
    pub misses: u64,
    /// Session builds actually performed — under concurrent cold traffic
    /// this stays at one per residency (the coalescing invariant).
    pub builds: u64,
    /// Times the session was evicted by LRU pressure or an explicit evict.
    pub evictions: u64,
    /// Session builds that were served from a disk snapshot instead of
    /// computing artifacts (always 0 without a snapshot directory).
    pub snapshot_loads: u64,
    /// Snapshots written for this corpus (evictions spilling, warm writing
    /// through, or an explicit persist).
    pub snapshot_saves: u64,
    /// Activity counters of the resident engine (`None` while cold).
    pub engine: Option<EngineStats>,
}

/// Snapshot of the whole registry, as served by `/stats`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegistryStats {
    /// Maximum number of resident sessions.
    pub capacity: usize,
    /// Similarity-table compute mode engines are built with.
    pub mode: ComputeMode,
    /// Directory of the snapshot disk tier (`None` when disabled).
    pub snapshot_dir: Option<String>,
    /// Currently resident sessions.
    pub resident: usize,
    /// Per-corpus stats, in registration order.
    pub corpora: Vec<CorpusStats>,
}

/// Named corpora behind an LRU of shared [`MatchEngine`] sessions.
///
/// All operations are `&self` and thread-safe; the registry is designed to
/// sit behind an `Arc` shared by every server worker.
#[derive(Debug)]
pub struct Registry {
    capacity: usize,
    mode: ComputeMode,
    /// Directory of the snapshot disk tier; `None` disables persistence.
    snapshot_dir: Option<PathBuf>,
    /// Registered corpora; `Vec` keeps registration order for `/stats`.
    entries: RwLock<Vec<Arc<CorpusEntry>>>,
    /// LRU bookkeeping: name → last-used tick, for resident corpora only.
    lru: Mutex<LruState>,
}

#[derive(Debug, Default)]
struct LruState {
    tick: u64,
    last_used: HashMap<String, u64>,
}

impl Registry {
    /// Creates a registry holding at most `capacity` resident sessions
    /// (minimum 1), building engines with the given compute mode.
    pub fn new(capacity: usize, mode: ComputeMode) -> Self {
        Self {
            capacity: capacity.max(1),
            mode,
            snapshot_dir: None,
            entries: RwLock::new(Vec::new()),
            lru: Mutex::new(LruState::default()),
        }
    }

    /// Enables the snapshot disk tier under the LRU: cold requests check
    /// `dir` for a persisted session before building, evicted sessions
    /// spill their artifacts there, and [`warm`](Self::warm) writes
    /// through. See [`wikimatch::snapshot`] for the file format and its
    /// validation (fingerprint, version, checksum).
    pub fn with_snapshot_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.snapshot_dir = Some(dir.into());
        self
    }

    /// The snapshot directory of the disk tier, if enabled.
    pub fn snapshot_dir(&self) -> Option<&Path> {
        self.snapshot_dir.as_deref()
    }

    /// The snapshot file of a corpus. Names made entirely of filesystem-safe
    /// characters map to `<name>.snap`; anything else is sanitised **and**
    /// suffixed with a hash of the raw name, so two distinct corpora (e.g.
    /// `"a b"` and `"a_b"`) can never clobber each other's snapshot.
    fn snapshot_path(&self, name: &str) -> Option<PathBuf> {
        let dir = self.snapshot_dir.as_ref()?;
        let safe = |c: char| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.');
        let stem = if !name.is_empty() && name.chars().all(safe) {
            name.to_string()
        } else {
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for byte in name.bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            let sanitised: String = name
                .chars()
                .map(|c| if safe(c) { c } else { '_' })
                .collect();
            format!("{sanitised}-{:08x}", (hash as u32) ^ ((hash >> 32) as u32))
        };
        Some(dir.join(format!("{stem}.snap")))
    }

    /// Builds (or disk-loads) the session of one corpus. Runs inside the
    /// entry's build slot, so it executes at most once per residency.
    fn build_corpus(&self, entry: &CorpusEntry) -> CachedCorpus {
        let dataset = Arc::new(entry.spec.dataset());
        if let Some(path) = self.snapshot_path(&entry.spec.name) {
            match EngineSnapshot::load(&path) {
                Ok(snapshot) => {
                    let restored = MatchEngine::builder(Arc::clone(&dataset))
                        .compute_mode(self.mode)
                        .build_from_snapshot(snapshot);
                    match restored {
                        Ok(engine) => {
                            entry.snapshot_loads.fetch_add(1, Ordering::Relaxed);
                            return CachedCorpus::from_engine(engine);
                        }
                        Err(err) => eprintln!(
                            "warning: snapshot {} rejected for corpus {:?}: {err}; rebuilding",
                            path.display(),
                            entry.spec.name
                        ),
                    }
                }
                // No snapshot yet: the common cold-start case, not an error.
                Err(SnapshotError::Io(err)) if err.kind() == std::io::ErrorKind::NotFound => {}
                Err(err) => eprintln!(
                    "warning: ignoring unreadable snapshot {} for corpus {:?}: {err}",
                    path.display(),
                    entry.spec.name
                ),
            }
        }
        CachedCorpus::from_engine(
            MatchEngine::builder(dataset)
                .compute_mode(self.mode)
                .build(),
        )
    }

    /// Writes the session's current artifacts to the disk tier (no-op
    /// without a snapshot directory). Failures are reported and swallowed:
    /// persistence is an optimisation, never a serving error.
    fn spill(&self, entry: &CorpusEntry, cached: &CachedCorpus) {
        let Some(path) = self.snapshot_path(&entry.spec.name) else {
            return;
        };
        spill_to(&path, entry, cached);
    }

    /// Spills every currently resident session to the disk tier — the
    /// graceful-shutdown hook behind `matchd --persist`, so the next start
    /// serves from disk without rebuilding anything. Returns the number of
    /// sessions written; always 0 without a snapshot directory.
    pub fn persist_resident(&self) -> usize {
        if self.snapshot_dir.is_none() {
            return 0;
        }
        let entries: Vec<Arc<CorpusEntry>> = recover(self.entries.read()).clone();
        let mut written = 0;
        for entry in entries {
            if let Some(cached) = entry.resident() {
                let before = entry.snapshot_saves.load(Ordering::Relaxed);
                self.spill(&entry, &cached);
                if entry.snapshot_saves.load(Ordering::Relaxed) > before {
                    written += 1;
                }
            }
        }
        written
    }

    /// Registers a corpus; replaces any previous spec with the same name
    /// (dropping its resident session, counters and LRU slot).
    pub fn register(&self, spec: CorpusSpec) {
        let name = spec.name.clone();
        {
            let mut entries = recover(self.entries.write());
            let entry = Arc::new(CorpusEntry::new(spec));
            if let Some(existing) = entries.iter_mut().find(|e| e.spec.name == entry.spec.name) {
                *existing = entry;
            } else {
                entries.push(entry);
            }
        }
        // A replaced corpus has no resident session any more; its stale LRU
        // entry must go with it or capacity enforcement would count (and
        // try to evict) a ghost.
        let mut lru = recover(self.lru.lock());
        lru.last_used.remove(&name);
    }

    /// Registers every spec of an iterator.
    pub fn register_all(&self, specs: impl IntoIterator<Item = CorpusSpec>) {
        for spec in specs {
            self.register(spec);
        }
    }

    /// Maximum number of resident sessions.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The compute mode engines are built with.
    pub fn mode(&self) -> ComputeMode {
        self.mode
    }

    /// Names of the registered corpora, in registration order.
    pub fn names(&self) -> Vec<String> {
        recover(self.entries.read())
            .iter()
            .map(|e| e.spec.name.clone())
            .collect()
    }

    /// The registered specs, in registration order.
    pub fn specs(&self) -> Vec<CorpusSpec> {
        recover(self.entries.read())
            .iter()
            .map(|e| e.spec.clone())
            .collect()
    }

    fn entry(&self, name: &str) -> Result<Arc<CorpusEntry>, RegistryError> {
        recover(self.entries.read())
            .iter()
            .find(|e| e.spec.name == name)
            .cloned()
            .ok_or_else(|| RegistryError::UnknownCorpus(name.to_string()))
    }

    /// The resident session of `name`, building it (once, even under
    /// concurrent cold requests) if necessary. The hot path is one entry
    /// lookup plus one mutex-guarded slot clone.
    pub fn corpus(&self, name: &str) -> Result<Arc<CachedCorpus>, RegistryError> {
        let entry = self.entry(name)?;
        let slot = {
            let mut session = recover(entry.session.lock());
            match session.as_ref() {
                Some(slot) => {
                    if slot.get().is_some() {
                        entry.hits.fetch_add(1, Ordering::Relaxed);
                    } else {
                        // Joining an in-flight build still counts as a miss.
                        entry.misses.fetch_add(1, Ordering::Relaxed);
                    }
                    Arc::clone(slot)
                }
                None => {
                    entry.misses.fetch_add(1, Ordering::Relaxed);
                    let slot: Arc<OnceLock<Arc<CachedCorpus>>> = Arc::default();
                    *session = Some(Arc::clone(&slot));
                    slot
                }
            }
        };
        let mut built_here = false;
        let cached = Arc::clone(slot.get_or_init(|| {
            built_here = true;
            entry.builds.fetch_add(1, Ordering::Relaxed);
            Arc::new(self.build_corpus(&entry))
        }));
        self.touch(name);
        if built_here {
            self.enforce_capacity();
        }
        Ok(cached)
    }

    /// Convenience accessor for the engine of a corpus.
    pub fn engine(&self, name: &str) -> Result<Arc<MatchEngine>, RegistryError> {
        Ok(Arc::clone(self.corpus(name)?.engine()))
    }

    /// Builds the session of `name` (if cold) and precomputes the per-type
    /// artifacts of every entity type, in parallel. With a snapshot
    /// directory configured the fully warmed session is written through to
    /// disk, so the *next* process start serves it without rebuilding.
    pub fn warm(&self, name: &str) -> Result<Arc<CachedCorpus>, RegistryError> {
        let entry = self.entry(name)?;
        let cached = self.corpus(name)?;
        cached.engine().prepare_all();
        self.spill(&entry, &cached);
        Ok(cached)
    }

    /// Evicts the resident session of `name` (if any); returns whether a
    /// session was actually dropped. In-flight holders of the session keep
    /// it alive through their `Arc`s. With a snapshot directory configured
    /// the evicted session's artifacts are spilled to disk first, so a
    /// later request restores them instead of recomputing.
    pub fn evict(&self, name: &str) -> Result<bool, RegistryError> {
        // Explicit evictions (admin `/evict`) spill synchronously: the
        // caller asked for the eviction and can absorb the write latency,
        // and the spill is guaranteed done when the response goes out.
        self.evict_spilling(name, SpillMode::Synchronous)
    }

    fn evict_spilling(&self, name: &str, mode: SpillMode) -> Result<bool, RegistryError> {
        let entry = self.entry(name)?;
        let dropped = {
            let mut session = recover(entry.session.lock());
            // Only drop *completed* sessions: evicting an in-flight build
            // would detach the builders from the slot bookkeeping.
            match session.as_ref() {
                Some(slot) if slot.get().is_some() => {
                    let cached = slot.get().cloned();
                    *session = None;
                    cached
                }
                _ => None,
            }
        };
        if let Some(cached) = dropped.clone() {
            entry.evictions.fetch_add(1, Ordering::Relaxed);
            // Spill outside the session lock: a slow disk must not block
            // concurrent requests (they may even start rebuilding the
            // session meanwhile — the artifacts are identical either way,
            // and the save is atomic).
            if let Some(path) = self.snapshot_path(name) {
                match mode {
                    SpillMode::Synchronous => spill_to(&path, &entry, &cached),
                    // LRU pressure evicts on whatever worker thread tipped
                    // the capacity — that request must not pay for a
                    // multi-megabyte serialization of an unrelated corpus,
                    // so the spill moves to a background thread.
                    SpillMode::Background => {
                        let entry = Arc::clone(&entry);
                        std::thread::spawn(move || spill_to(&path, &entry, &cached));
                    }
                }
            }
        }
        // Always clear the LRU slot, even when nothing was resident: a
        // stale entry (e.g. left by a touch racing an evict) would
        // otherwise be re-selected as the LRU victim forever.
        let mut lru = recover(self.lru.lock());
        lru.last_used.remove(name);
        Ok(dropped.is_some())
    }

    fn touch(&self, name: &str) {
        let mut lru = recover(self.lru.lock());
        lru.tick += 1;
        let tick = lru.tick;
        lru.last_used.insert(name.to_string(), tick);
    }

    /// Evicts least-recently-used sessions until at most `capacity` are
    /// resident. The victim is always the *global* oldest entry (ties
    /// broken by name) — concurrent enforcers therefore agree on the same
    /// victim instead of mutually evicting each other's fresh builds, and
    /// the loop stops as soon as the count is back under capacity.
    fn enforce_capacity(&self) {
        loop {
            let victim = {
                let lru = recover(self.lru.lock());
                if lru.last_used.len() <= self.capacity {
                    return;
                }
                lru.last_used
                    .iter()
                    .min_by_key(|(name, &tick)| (tick, (*name).clone()))
                    .map(|(name, _)| name.clone())
            };
            match victim {
                Some(name) => {
                    // `evict_spilling` removes the LRU slot even when the
                    // session is already gone, so every iteration shrinks
                    // `last_used` — but drop the slot by hand if the corpus
                    // itself has been unregistered, or the loop would never
                    // progress. Spills run in the background: capacity
                    // enforcement happens on a request worker serving some
                    // unrelated corpus.
                    if self.evict_spilling(&name, SpillMode::Background).is_err() {
                        let mut lru = recover(self.lru.lock());
                        lru.last_used.remove(&name);
                    }
                }
                None => return,
            }
        }
    }

    /// A point-in-time snapshot of the registry.
    pub fn stats(&self) -> RegistryStats {
        let entries = recover(self.entries.read());
        let corpora: Vec<CorpusStats> = entries
            .iter()
            .map(|entry| {
                let resident = entry.resident();
                CorpusStats {
                    name: entry.spec.name.clone(),
                    resident: resident.is_some(),
                    hits: entry.hits.load(Ordering::Relaxed),
                    misses: entry.misses.load(Ordering::Relaxed),
                    builds: entry.builds.load(Ordering::Relaxed),
                    evictions: entry.evictions.load(Ordering::Relaxed),
                    snapshot_loads: entry.snapshot_loads.load(Ordering::Relaxed),
                    snapshot_saves: entry.snapshot_saves.load(Ordering::Relaxed),
                    engine: resident.map(|cached| cached.engine().stats()),
                }
            })
            .collect();
        RegistryStats {
            capacity: self.capacity,
            mode: self.mode,
            snapshot_dir: self
                .snapshot_dir
                .as_ref()
                .map(|dir| dir.display().to_string()),
            resident: corpora.iter().filter(|c| c.resident).count(),
            corpora,
        }
    }
}

// The registry is shared by every server worker thread.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Registry>();
    assert_send_sync::<CachedCorpus>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn test_spec(name: &str) -> CorpusSpec {
        CorpusSpec {
            name: name.to_string(),
            language: Language::Pt,
            config: SyntheticConfig::tiny(),
        }
    }

    fn registry_with(names: &[&str], capacity: usize) -> Registry {
        let registry = Registry::new(capacity, ComputeMode::default());
        registry.register_all(names.iter().map(|n| test_spec(n)));
        registry
    }

    #[test]
    fn unknown_corpus_is_an_error() {
        let registry = registry_with(&["a"], 2);
        assert_eq!(
            registry.engine("nope").unwrap_err(),
            RegistryError::UnknownCorpus("nope".to_string())
        );
        assert!(registry.engine("a").is_ok());
    }

    #[test]
    fn sessions_are_shared_and_counted() {
        let registry = registry_with(&["a"], 2);
        let first = registry.engine("a").unwrap();
        let second = registry.engine("a").unwrap();
        assert!(Arc::ptr_eq(&first, &second));
        let stats = registry.stats();
        assert_eq!(stats.resident, 1);
        let corpus = &stats.corpora[0];
        assert_eq!((corpus.misses, corpus.hits, corpus.builds), (1, 1, 1));
        assert!(corpus.engine.is_some());
    }

    #[test]
    fn concurrent_cold_requests_build_once() {
        let registry = Arc::new(registry_with(&["a"], 2));
        thread::scope(|scope| {
            for _ in 0..8 {
                let registry = Arc::clone(&registry);
                scope.spawn(move || registry.engine("a").unwrap());
            }
        });
        let stats = registry.stats();
        assert_eq!(stats.corpora[0].builds, 1, "cold stampede not coalesced");
        assert_eq!(stats.corpora[0].misses + stats.corpora[0].hits, 8);
    }

    #[test]
    fn lru_evicts_the_least_recently_used_session() {
        let registry = registry_with(&["a", "b", "c"], 2);
        registry.engine("a").unwrap();
        registry.engine("b").unwrap();
        registry.engine("a").unwrap(); // refresh "a"; "b" is now LRU
        registry.engine("c").unwrap(); // evicts "b"
        let stats = registry.stats();
        let by_name = |n: &str| stats.corpora.iter().find(|c| c.name == n).unwrap().clone();
        assert_eq!(stats.resident, 2);
        assert!(by_name("a").resident);
        assert!(!by_name("b").resident);
        assert!(by_name("c").resident);
        assert_eq!(by_name("b").evictions, 1);
        // Touching "b" again rebuilds it.
        registry.engine("b").unwrap();
        assert_eq!(registry.stats().resident, 2);
        let b = registry
            .stats()
            .corpora
            .iter()
            .find(|c| c.name == "b")
            .unwrap()
            .clone();
        assert_eq!(b.builds, 2);
    }

    #[test]
    fn explicit_evict_and_warm() {
        let registry = registry_with(&["a"], 1);
        assert!(!registry.evict("a").unwrap(), "nothing resident yet");
        let cached = registry.warm("a").unwrap();
        assert_eq!(
            cached.engine().cached_types(),
            cached.engine().dataset().types.len()
        );
        assert!(registry.evict("a").unwrap());
        assert_eq!(registry.stats().resident, 0);
    }

    #[test]
    fn concurrent_builds_converge_to_capacity_not_below() {
        // Concurrent first builds must not mutually evict each other down
        // to zero residents: victim selection is global-oldest, so every
        // enforcer agrees and the count settles at exactly `capacity`.
        let registry = Arc::new(registry_with(&["a", "b", "c", "d"], 2));
        thread::scope(|scope| {
            for name in ["a", "b", "c", "d"] {
                let registry = Arc::clone(&registry);
                scope.spawn(move || registry.engine(name).unwrap());
            }
        });
        let resident = registry.stats().resident;
        assert!(
            (1..=2).contains(&resident),
            "expected 1..=2 residents, got {resident}"
        );
    }

    #[test]
    fn re_registering_a_resident_corpus_clears_its_lru_slot() {
        let registry = registry_with(&["a", "b"], 1);
        registry.engine("a").unwrap();
        // Replacing "a" drops its session; its LRU slot must go with it,
        // otherwise the next capacity check would pick the ghost as its
        // victim forever.
        registry.register(test_spec("a"));
        registry.engine("b").unwrap();
        let stats = registry.stats();
        assert_eq!(stats.resident, 1);
        let b = stats.corpora.iter().find(|c| c.name == "b").unwrap();
        assert!(b.resident);
        // Rebuilding "a" works and evicts "b" (capacity 1).
        registry.engine("a").unwrap();
        assert_eq!(registry.stats().resident, 1);
    }

    #[test]
    fn evicting_a_cold_corpus_is_a_clean_no_op() {
        let registry = registry_with(&["a", "b"], 1);
        registry.engine("a").unwrap();
        assert!(!registry.evict("b").unwrap());
        // Capacity enforcement still progresses normally afterwards.
        registry.engine("b").unwrap();
        let stats = registry.stats();
        assert_eq!(stats.resident, 1);
        assert!(stats.corpora.iter().any(|c| c.name == "b" && c.resident));
    }

    #[test]
    fn response_cache_memoises_per_key() {
        let registry = registry_with(&["a"], 1);
        let cached = registry.corpus("a").unwrap();
        let first = cached.response("k", || Ok("payload".to_string())).unwrap();
        let second = cached.response("k", || panic!("must be memoised")).unwrap();
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(
            *cached.response("other", || Ok("x".to_string())).unwrap(),
            "x"
        );
        // Failures are memoised too (response production is deterministic),
        // and every requester sees the error instead of a stuck slot.
        let err = cached
            .response("bad", || Err("boom".to_string()))
            .unwrap_err();
        assert_eq!(err, "boom");
        let again = cached
            .response("bad", || Ok("never runs".to_string()))
            .unwrap_err();
        assert_eq!(again, "boom");
    }

    /// A unique (per test, per process) snapshot directory.
    fn snapshot_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("wm-registry-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn warm_writes_through_and_a_cold_registry_loads_from_disk() {
        let dir = snapshot_dir("warm");
        let first = registry_with(&["a"], 1).with_snapshot_dir(&dir);
        let warmed = first.warm("a").unwrap();
        let reference = warmed.engine().align("film").unwrap().cross_pairs();
        let stats = first.stats();
        assert_eq!(stats.snapshot_dir.as_deref(), Some(dir.to_str().unwrap()));
        assert_eq!(stats.corpora[0].snapshot_saves, 1);
        assert_eq!(stats.corpora[0].snapshot_loads, 0);

        // A brand-new registry (a restarted process) restores the session
        // from disk: zero artifact builds, identical alignments.
        let second = registry_with(&["a"], 1).with_snapshot_dir(&dir);
        let restored = second.corpus("a").unwrap();
        let engine_stats = restored.engine().stats();
        assert_eq!(
            restored.engine().cached_types(),
            restored.engine().dataset().types.len()
        );
        assert_eq!(
            engine_stats.artifact_builds, 0,
            "warm start rebuilt artifacts"
        );
        assert_eq!(
            restored.engine().align("film").unwrap().cross_pairs(),
            reference
        );
        let stats = second.stats();
        assert_eq!(stats.corpora[0].snapshot_loads, 1);
        assert_eq!(stats.corpora[0].builds, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn evictions_spill_and_the_next_request_restores_from_disk() {
        let dir = snapshot_dir("evict");
        let registry = registry_with(&["a"], 1).with_snapshot_dir(&dir);
        // Build and cache one type's artifacts, then evict.
        registry
            .corpus("a")
            .unwrap()
            .engine()
            .align("film")
            .unwrap();
        assert!(registry.evict("a").unwrap());
        let stats = registry.stats();
        assert_eq!(stats.corpora[0].snapshot_saves, 1);
        // The rebuilt residency restores the spilled artifact set.
        let restored = registry.corpus("a").unwrap();
        assert_eq!(restored.engine().cached_types(), 1);
        assert_eq!(restored.engine().stats().artifact_builds, 0);
        assert_eq!(registry.stats().corpora[0].snapshot_loads, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_or_foreign_snapshots_fall_back_to_building() {
        let dir = snapshot_dir("corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        // Garbage bytes under the expected file name.
        std::fs::write(dir.join("a.snap"), b"definitely not a snapshot").unwrap();
        let registry = registry_with(&["a"], 1).with_snapshot_dir(&dir);
        let cached = registry.corpus("a").unwrap();
        assert!(!cached
            .engine()
            .align("film")
            .unwrap()
            .cross_pairs()
            .is_empty());
        let stats = registry.stats();
        assert_eq!(stats.corpora[0].snapshot_loads, 0);
        assert_eq!(stats.corpora[0].builds, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corpora_whose_names_sanitise_alike_get_distinct_snapshot_files() {
        let dir = snapshot_dir("collide");
        // "a b" and "a_b" both sanitise to the stem "a_b"; the hash suffix
        // keeps their snapshot files apart, so neither clobbers the other.
        let registry = registry_with(&["a b", "a_b"], 2).with_snapshot_dir(&dir);
        registry.corpus("a b").unwrap();
        registry.corpus("a_b").unwrap();
        assert_eq!(registry.persist_resident(), 2);
        let files: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(files.len(), 2, "snapshot files collided: {files:?}");
        // The clean name keeps its plain stem; the unsafe one is suffixed.
        assert!(files.contains(&"a_b.snap".to_string()), "{files:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn persist_resident_writes_every_resident_session() {
        let dir = snapshot_dir("persist");
        let registry = registry_with(&["a", "b"], 2).with_snapshot_dir(&dir);
        registry.corpus("a").unwrap();
        registry.corpus("b").unwrap();
        assert_eq!(registry.persist_resident(), 2);
        assert!(dir.join("a.snap").is_file());
        assert!(dir.join("b.snap").is_file());
        // Without a snapshot dir the hook is a no-op.
        let plain = registry_with(&["a"], 1);
        plain.corpus("a").unwrap();
        assert_eq!(plain.persist_resident(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dictionary_is_built_once_per_residency() {
        let registry = registry_with(&["a"], 1);
        let cached = registry.corpus("a").unwrap();
        let dict = cached.dictionary();
        assert!(!dict.is_empty());
        // Second call returns the same allocation.
        assert!(std::ptr::eq(dict, cached.dictionary()));
    }

    #[test]
    fn scale_tier_catalog_covers_both_pairs() {
        let specs = CorpusSpec::scale_tiers(&["tiny", "medium"]);
        let names: Vec<&str> = specs.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["pt-tiny", "pt-medium", "vi-tiny", "vi-medium"]);
        assert!(CorpusSpec::tier(Language::Pt, "galactic").is_none());
    }
}
