//! The corpus registry: named corpora behind an LRU of shared
//! [`MatchEngine`] sessions.
//!
//! A [`Registry`] owns a set of [`CorpusSpec`]s — descriptions of datasets
//! the service can serve. Sessions are built **lazily** on first request and
//! cached behind an LRU with a configurable capacity, so a `matchd` process
//! can advertise every synthetic scale tier while only paying (memory and
//! build time) for the corpora traffic actually touches.
//!
//! Two levels of request coalescing keep cold corpora from stampeding:
//!
//! 1. **Session builds** — concurrent first requests for the same corpus
//!    rendezvous on a per-corpus `OnceLock` slot: exactly one thread
//!    generates the dataset and builds the engine, the rest block and share
//!    the result (observable through [`CorpusStats::builds`]).
//! 2. **Per-type artifacts** — inside the shared engine, the per-type
//!    schema/similarity builds coalesce the same way (observable through
//!    [`wikimatch::EngineStats::artifact_builds`]).
//!
//! On top of the engine, [`CachedCorpus`] memoises two serving-layer
//! artifacts: the [`CorrespondenceDictionary`] used by query translation and
//! a keyed cache of serialized responses, both built once per residency.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

use serde::{Deserialize, Serialize};

use wiki_corpus::{Dataset, Language, SyntheticConfig};
use wiki_query::CorrespondenceDictionary;
use wikimatch::{ComputeMode, EngineStats, MatchEngine};

/// Description of one corpus a [`Registry`] can serve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CorpusSpec {
    /// Registry name of the corpus (e.g. `"pt-medium"`).
    pub name: String,
    /// Foreign language of the pair (English is always the other side).
    pub language: Language,
    /// Generator configuration of the synthetic dataset.
    pub config: SyntheticConfig,
}

impl CorpusSpec {
    /// A spec for one language pair and named scale tier
    /// (`tiny` / `small` / `medium` / `large`), named `"<code>-<tier>"`.
    pub fn tier(language: Language, tier: &str) -> Option<Self> {
        let config = match tier {
            "tiny" => SyntheticConfig::tiny(),
            "small" => SyntheticConfig::small(),
            "medium" => SyntheticConfig::medium(),
            "large" => SyntheticConfig::large(),
            _ => return None,
        };
        Some(Self {
            name: format!("{}-{tier}", language.code()),
            language,
            config,
        })
    }

    /// The built-in serving catalog: every synthetic scale tier for both of
    /// the paper's language pairs (`pt-tiny` … `vi-large`).
    pub fn scale_tiers(tiers: &[&str]) -> Vec<Self> {
        let mut specs = Vec::new();
        for language in [Language::Pt, Language::Vn] {
            for tier in tiers {
                if let Some(spec) = Self::tier(language.clone(), tier) {
                    specs.push(spec);
                }
            }
        }
        specs
    }

    /// Generates the dataset this spec describes.
    pub fn dataset(&self) -> Dataset {
        Dataset::generate(self.language.clone(), &self.config)
    }
}

/// Error returned by registry operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// No corpus with the given name is registered.
    UnknownCorpus(String),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::UnknownCorpus(name) => write!(f, "unknown corpus {name:?}"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// A resident corpus: the shared engine session plus serving-layer caches
/// that live and die with the residency.
#[derive(Debug)]
pub struct CachedCorpus {
    engine: Arc<MatchEngine>,
    dictionary: OnceLock<CorrespondenceDictionary>,
    responses: ResponseCache,
}

impl CachedCorpus {
    fn build(spec: &CorpusSpec, mode: ComputeMode) -> Self {
        let engine = MatchEngine::builder(spec.dataset())
            .compute_mode(mode)
            .build();
        Self {
            engine: Arc::new(engine),
            dictionary: OnceLock::new(),
            responses: ResponseCache::default(),
        }
    }

    /// The shared engine session.
    pub fn engine(&self) -> &Arc<MatchEngine> {
        &self.engine
    }

    /// The correspondence dictionary for query translation, derived from a
    /// full alignment of the corpus on first use (concurrent first requests
    /// coalesce on the slot).
    pub fn dictionary(&self) -> &CorrespondenceDictionary {
        self.dictionary.get_or_init(|| {
            let alignments = self.engine.align_all();
            CorrespondenceDictionary::build(self.engine.dataset(), &alignments)
        })
    }

    /// A serialized response memoised under `key`; `make` runs at most once
    /// per key per residency, concurrent first requests share one compute.
    pub fn response(&self, key: &str, make: impl FnOnce() -> String) -> Arc<String> {
        self.responses.get_or_init(key, make)
    }
}

/// Keyed once-cache of serialized responses (same slot pattern as the
/// engine's per-type artifacts, so cold keys do not stampede).
#[derive(Debug, Default)]
struct ResponseCache {
    slots: RwLock<HashMap<String, Arc<OnceLock<Arc<String>>>>>,
}

impl ResponseCache {
    fn get_or_init(&self, key: &str, make: impl FnOnce() -> String) -> Arc<String> {
        let slot = {
            let slots = self.slots.read().expect("response cache poisoned");
            slots.get(key).cloned()
        };
        let slot = slot.unwrap_or_else(|| {
            let mut slots = self.slots.write().expect("response cache poisoned");
            Arc::clone(slots.entry(key.to_string()).or_default())
        });
        Arc::clone(slot.get_or_init(|| Arc::new(make())))
    }
}

/// One registered corpus: its spec, lifetime counters, and the session slot
/// of the current residency (if any).
#[derive(Debug)]
struct CorpusEntry {
    spec: CorpusSpec,
    hits: AtomicU64,
    misses: AtomicU64,
    builds: AtomicU64,
    evictions: AtomicU64,
    /// `Some(slot)` while resident or being built; `None` when evicted.
    /// Concurrent cold requests clone the same slot and coalesce on its
    /// `OnceLock`.
    session: Mutex<Option<Arc<OnceLock<Arc<CachedCorpus>>>>>,
}

impl CorpusEntry {
    fn new(spec: CorpusSpec) -> Self {
        Self {
            spec,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            builds: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            session: Mutex::new(None),
        }
    }

    fn resident(&self) -> Option<Arc<CachedCorpus>> {
        let session = self.session.lock().expect("corpus entry poisoned");
        session.as_ref().and_then(|slot| slot.get()).cloned()
    }
}

/// Lifetime statistics of one registered corpus, as served by `/stats`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CorpusStats {
    /// Registry name.
    pub name: String,
    /// Whether a session is currently resident in the LRU.
    pub resident: bool,
    /// Requests served from the resident session.
    pub hits: u64,
    /// Requests that found the corpus cold (they either started or joined a
    /// session build).
    pub misses: u64,
    /// Session builds actually performed — under concurrent cold traffic
    /// this stays at one per residency (the coalescing invariant).
    pub builds: u64,
    /// Times the session was evicted by LRU pressure or an explicit evict.
    pub evictions: u64,
    /// Activity counters of the resident engine (`None` while cold).
    pub engine: Option<EngineStats>,
}

/// Snapshot of the whole registry, as served by `/stats`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegistryStats {
    /// Maximum number of resident sessions.
    pub capacity: usize,
    /// Similarity-table compute mode engines are built with.
    pub mode: ComputeMode,
    /// Currently resident sessions.
    pub resident: usize,
    /// Per-corpus stats, in registration order.
    pub corpora: Vec<CorpusStats>,
}

/// Named corpora behind an LRU of shared [`MatchEngine`] sessions.
///
/// All operations are `&self` and thread-safe; the registry is designed to
/// sit behind an `Arc` shared by every server worker.
#[derive(Debug)]
pub struct Registry {
    capacity: usize,
    mode: ComputeMode,
    /// Registered corpora; `Vec` keeps registration order for `/stats`.
    entries: RwLock<Vec<Arc<CorpusEntry>>>,
    /// LRU bookkeeping: name → last-used tick, for resident corpora only.
    lru: Mutex<LruState>,
}

#[derive(Debug, Default)]
struct LruState {
    tick: u64,
    last_used: HashMap<String, u64>,
}

impl Registry {
    /// Creates a registry holding at most `capacity` resident sessions
    /// (minimum 1), building engines with the given compute mode.
    pub fn new(capacity: usize, mode: ComputeMode) -> Self {
        Self {
            capacity: capacity.max(1),
            mode,
            entries: RwLock::new(Vec::new()),
            lru: Mutex::new(LruState::default()),
        }
    }

    /// Registers a corpus; replaces any previous spec with the same name
    /// (dropping its resident session, counters and LRU slot).
    pub fn register(&self, spec: CorpusSpec) {
        let name = spec.name.clone();
        {
            let mut entries = self.entries.write().expect("registry poisoned");
            let entry = Arc::new(CorpusEntry::new(spec));
            if let Some(existing) = entries.iter_mut().find(|e| e.spec.name == entry.spec.name) {
                *existing = entry;
            } else {
                entries.push(entry);
            }
        }
        // A replaced corpus has no resident session any more; its stale LRU
        // entry must go with it or capacity enforcement would count (and
        // try to evict) a ghost.
        let mut lru = self.lru.lock().expect("registry LRU poisoned");
        lru.last_used.remove(&name);
    }

    /// Registers every spec of an iterator.
    pub fn register_all(&self, specs: impl IntoIterator<Item = CorpusSpec>) {
        for spec in specs {
            self.register(spec);
        }
    }

    /// Maximum number of resident sessions.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The compute mode engines are built with.
    pub fn mode(&self) -> ComputeMode {
        self.mode
    }

    /// Names of the registered corpora, in registration order.
    pub fn names(&self) -> Vec<String> {
        self.entries
            .read()
            .expect("registry poisoned")
            .iter()
            .map(|e| e.spec.name.clone())
            .collect()
    }

    /// The registered specs, in registration order.
    pub fn specs(&self) -> Vec<CorpusSpec> {
        self.entries
            .read()
            .expect("registry poisoned")
            .iter()
            .map(|e| e.spec.clone())
            .collect()
    }

    fn entry(&self, name: &str) -> Result<Arc<CorpusEntry>, RegistryError> {
        self.entries
            .read()
            .expect("registry poisoned")
            .iter()
            .find(|e| e.spec.name == name)
            .cloned()
            .ok_or_else(|| RegistryError::UnknownCorpus(name.to_string()))
    }

    /// The resident session of `name`, building it (once, even under
    /// concurrent cold requests) if necessary. The hot path is one entry
    /// lookup plus one mutex-guarded slot clone.
    pub fn corpus(&self, name: &str) -> Result<Arc<CachedCorpus>, RegistryError> {
        let entry = self.entry(name)?;
        let slot = {
            let mut session = entry.session.lock().expect("corpus entry poisoned");
            match session.as_ref() {
                Some(slot) => {
                    if slot.get().is_some() {
                        entry.hits.fetch_add(1, Ordering::Relaxed);
                    } else {
                        // Joining an in-flight build still counts as a miss.
                        entry.misses.fetch_add(1, Ordering::Relaxed);
                    }
                    Arc::clone(slot)
                }
                None => {
                    entry.misses.fetch_add(1, Ordering::Relaxed);
                    let slot: Arc<OnceLock<Arc<CachedCorpus>>> = Arc::default();
                    *session = Some(Arc::clone(&slot));
                    slot
                }
            }
        };
        let mut built_here = false;
        let cached = Arc::clone(slot.get_or_init(|| {
            built_here = true;
            entry.builds.fetch_add(1, Ordering::Relaxed);
            Arc::new(CachedCorpus::build(&entry.spec, self.mode))
        }));
        self.touch(name);
        if built_here {
            self.enforce_capacity();
        }
        Ok(cached)
    }

    /// Convenience accessor for the engine of a corpus.
    pub fn engine(&self, name: &str) -> Result<Arc<MatchEngine>, RegistryError> {
        Ok(Arc::clone(self.corpus(name)?.engine()))
    }

    /// Builds the session of `name` (if cold) and precomputes the per-type
    /// artifacts of every entity type, in parallel.
    pub fn warm(&self, name: &str) -> Result<Arc<CachedCorpus>, RegistryError> {
        let cached = self.corpus(name)?;
        cached.engine().prepare_all();
        Ok(cached)
    }

    /// Evicts the resident session of `name` (if any); returns whether a
    /// session was actually dropped. In-flight holders of the session keep
    /// it alive through their `Arc`s.
    pub fn evict(&self, name: &str) -> Result<bool, RegistryError> {
        let entry = self.entry(name)?;
        let dropped = {
            let mut session = entry.session.lock().expect("corpus entry poisoned");
            // Only drop *completed* sessions: evicting an in-flight build
            // would detach the builders from the slot bookkeeping.
            match session.as_ref() {
                Some(slot) if slot.get().is_some() => {
                    *session = None;
                    true
                }
                _ => false,
            }
        };
        if dropped {
            entry.evictions.fetch_add(1, Ordering::Relaxed);
        }
        // Always clear the LRU slot, even when nothing was resident: a
        // stale entry (e.g. left by a touch racing an evict) would
        // otherwise be re-selected as the LRU victim forever.
        let mut lru = self.lru.lock().expect("registry LRU poisoned");
        lru.last_used.remove(name);
        Ok(dropped)
    }

    fn touch(&self, name: &str) {
        let mut lru = self.lru.lock().expect("registry LRU poisoned");
        lru.tick += 1;
        let tick = lru.tick;
        lru.last_used.insert(name.to_string(), tick);
    }

    /// Evicts least-recently-used sessions until at most `capacity` are
    /// resident. The victim is always the *global* oldest entry (ties
    /// broken by name) — concurrent enforcers therefore agree on the same
    /// victim instead of mutually evicting each other's fresh builds, and
    /// the loop stops as soon as the count is back under capacity.
    fn enforce_capacity(&self) {
        loop {
            let victim = {
                let lru = self.lru.lock().expect("registry LRU poisoned");
                if lru.last_used.len() <= self.capacity {
                    return;
                }
                lru.last_used
                    .iter()
                    .min_by_key(|(name, &tick)| (tick, (*name).clone()))
                    .map(|(name, _)| name.clone())
            };
            match victim {
                Some(name) => {
                    // `evict` removes the LRU slot even when the session is
                    // already gone, so every iteration shrinks `last_used`
                    // — but drop the slot by hand if the corpus itself has
                    // been unregistered, or the loop would never progress.
                    if self.evict(&name).is_err() {
                        let mut lru = self.lru.lock().expect("registry LRU poisoned");
                        lru.last_used.remove(&name);
                    }
                }
                None => return,
            }
        }
    }

    /// A point-in-time snapshot of the registry.
    pub fn stats(&self) -> RegistryStats {
        let entries = self.entries.read().expect("registry poisoned");
        let corpora: Vec<CorpusStats> = entries
            .iter()
            .map(|entry| {
                let resident = entry.resident();
                CorpusStats {
                    name: entry.spec.name.clone(),
                    resident: resident.is_some(),
                    hits: entry.hits.load(Ordering::Relaxed),
                    misses: entry.misses.load(Ordering::Relaxed),
                    builds: entry.builds.load(Ordering::Relaxed),
                    evictions: entry.evictions.load(Ordering::Relaxed),
                    engine: resident.map(|cached| cached.engine().stats()),
                }
            })
            .collect();
        RegistryStats {
            capacity: self.capacity,
            mode: self.mode,
            resident: corpora.iter().filter(|c| c.resident).count(),
            corpora,
        }
    }
}

// The registry is shared by every server worker thread.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Registry>();
    assert_send_sync::<CachedCorpus>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn test_spec(name: &str) -> CorpusSpec {
        CorpusSpec {
            name: name.to_string(),
            language: Language::Pt,
            config: SyntheticConfig::tiny(),
        }
    }

    fn registry_with(names: &[&str], capacity: usize) -> Registry {
        let registry = Registry::new(capacity, ComputeMode::default());
        registry.register_all(names.iter().map(|n| test_spec(n)));
        registry
    }

    #[test]
    fn unknown_corpus_is_an_error() {
        let registry = registry_with(&["a"], 2);
        assert_eq!(
            registry.engine("nope").unwrap_err(),
            RegistryError::UnknownCorpus("nope".to_string())
        );
        assert!(registry.engine("a").is_ok());
    }

    #[test]
    fn sessions_are_shared_and_counted() {
        let registry = registry_with(&["a"], 2);
        let first = registry.engine("a").unwrap();
        let second = registry.engine("a").unwrap();
        assert!(Arc::ptr_eq(&first, &second));
        let stats = registry.stats();
        assert_eq!(stats.resident, 1);
        let corpus = &stats.corpora[0];
        assert_eq!((corpus.misses, corpus.hits, corpus.builds), (1, 1, 1));
        assert!(corpus.engine.is_some());
    }

    #[test]
    fn concurrent_cold_requests_build_once() {
        let registry = Arc::new(registry_with(&["a"], 2));
        thread::scope(|scope| {
            for _ in 0..8 {
                let registry = Arc::clone(&registry);
                scope.spawn(move || registry.engine("a").unwrap());
            }
        });
        let stats = registry.stats();
        assert_eq!(stats.corpora[0].builds, 1, "cold stampede not coalesced");
        assert_eq!(stats.corpora[0].misses + stats.corpora[0].hits, 8);
    }

    #[test]
    fn lru_evicts_the_least_recently_used_session() {
        let registry = registry_with(&["a", "b", "c"], 2);
        registry.engine("a").unwrap();
        registry.engine("b").unwrap();
        registry.engine("a").unwrap(); // refresh "a"; "b" is now LRU
        registry.engine("c").unwrap(); // evicts "b"
        let stats = registry.stats();
        let by_name = |n: &str| stats.corpora.iter().find(|c| c.name == n).unwrap().clone();
        assert_eq!(stats.resident, 2);
        assert!(by_name("a").resident);
        assert!(!by_name("b").resident);
        assert!(by_name("c").resident);
        assert_eq!(by_name("b").evictions, 1);
        // Touching "b" again rebuilds it.
        registry.engine("b").unwrap();
        assert_eq!(registry.stats().resident, 2);
        let b = registry
            .stats()
            .corpora
            .iter()
            .find(|c| c.name == "b")
            .unwrap()
            .clone();
        assert_eq!(b.builds, 2);
    }

    #[test]
    fn explicit_evict_and_warm() {
        let registry = registry_with(&["a"], 1);
        assert!(!registry.evict("a").unwrap(), "nothing resident yet");
        let cached = registry.warm("a").unwrap();
        assert_eq!(
            cached.engine().cached_types(),
            cached.engine().dataset().types.len()
        );
        assert!(registry.evict("a").unwrap());
        assert_eq!(registry.stats().resident, 0);
    }

    #[test]
    fn concurrent_builds_converge_to_capacity_not_below() {
        // Concurrent first builds must not mutually evict each other down
        // to zero residents: victim selection is global-oldest, so every
        // enforcer agrees and the count settles at exactly `capacity`.
        let registry = Arc::new(registry_with(&["a", "b", "c", "d"], 2));
        thread::scope(|scope| {
            for name in ["a", "b", "c", "d"] {
                let registry = Arc::clone(&registry);
                scope.spawn(move || registry.engine(name).unwrap());
            }
        });
        let resident = registry.stats().resident;
        assert!(
            (1..=2).contains(&resident),
            "expected 1..=2 residents, got {resident}"
        );
    }

    #[test]
    fn re_registering_a_resident_corpus_clears_its_lru_slot() {
        let registry = registry_with(&["a", "b"], 1);
        registry.engine("a").unwrap();
        // Replacing "a" drops its session; its LRU slot must go with it,
        // otherwise the next capacity check would pick the ghost as its
        // victim forever.
        registry.register(test_spec("a"));
        registry.engine("b").unwrap();
        let stats = registry.stats();
        assert_eq!(stats.resident, 1);
        let b = stats.corpora.iter().find(|c| c.name == "b").unwrap();
        assert!(b.resident);
        // Rebuilding "a" works and evicts "b" (capacity 1).
        registry.engine("a").unwrap();
        assert_eq!(registry.stats().resident, 1);
    }

    #[test]
    fn evicting_a_cold_corpus_is_a_clean_no_op() {
        let registry = registry_with(&["a", "b"], 1);
        registry.engine("a").unwrap();
        assert!(!registry.evict("b").unwrap());
        // Capacity enforcement still progresses normally afterwards.
        registry.engine("b").unwrap();
        let stats = registry.stats();
        assert_eq!(stats.resident, 1);
        assert!(stats.corpora.iter().any(|c| c.name == "b" && c.resident));
    }

    #[test]
    fn response_cache_memoises_per_key() {
        let registry = registry_with(&["a"], 1);
        let cached = registry.corpus("a").unwrap();
        let first = cached.response("k", || "payload".to_string());
        let second = cached.response("k", || panic!("must be memoised"));
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(*cached.response("other", || "x".to_string()), "x");
    }

    #[test]
    fn dictionary_is_built_once_per_residency() {
        let registry = registry_with(&["a"], 1);
        let cached = registry.corpus("a").unwrap();
        let dict = cached.dictionary();
        assert!(!dict.is_empty());
        // Second call returns the same allocation.
        assert!(std::ptr::eq(dict, cached.dictionary()));
    }

    #[test]
    fn scale_tier_catalog_covers_both_pairs() {
        let specs = CorpusSpec::scale_tiers(&["tiny", "medium"]);
        let names: Vec<&str> = specs.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["pt-tiny", "pt-medium", "vi-tiny", "vi-medium"]);
        assert!(CorpusSpec::tier(Language::Pt, "galactic").is_none());
    }
}
