//! The corpus registry: named corpora behind an LRU of shared
//! [`MatchEngine`] sessions.
//!
//! A [`Registry`] owns a set of [`CorpusSpec`]s — descriptions of datasets
//! the service can serve. Sessions are built **lazily** on first request and
//! cached behind an LRU with a configurable capacity, so a `matchd` process
//! can advertise every synthetic scale tier while only paying (memory and
//! build time) for the corpora traffic actually touches.
//!
//! Two levels of request coalescing keep cold corpora from stampeding:
//!
//! 1. **Session builds** — concurrent first requests for the same corpus
//!    rendezvous on a per-corpus `OnceLock` slot: exactly one thread
//!    generates the dataset and builds the engine, the rest block and share
//!    the result (observable through [`CorpusStats::builds`]).
//! 2. **Per-type artifacts** — inside the shared engine, the per-type
//!    schema/similarity builds coalesce the same way (observable through
//!    [`wikimatch::EngineStats::artifact_builds`]).
//!
//! On top of the engine, [`CachedCorpus`] memoises two serving-layer
//! artifacts: the [`CorrespondenceDictionary`] used by query translation and
//! a keyed cache of serialized responses, both built once per residency.
//!
//! ## The disk tier
//!
//! With [`Registry::with_snapshot_dir`] the LRU gains a tier *under* it:
//! evicted sessions spill their computed artifacts to a
//! [`wikimatch::snapshot`] file, [`Registry::warm`] writes through, and a
//! cold request checks the directory before building — a hit restores the
//! dictionary and every persisted per-type artifact **bit-identical** to a
//! fresh build, with zero artifact computation. Stale or damaged files are
//! never trusted: the snapshot layer validates a corpus fingerprint, format
//! version and checksum, and any rejection simply falls back to building.
//!
//! ## The out-of-core tier
//!
//! [`Registry::with_resident_budget_mb`] turns the disk tier into a real
//! out-of-core store: spills are written in the directly-addressable (v4)
//! snapshot format, cold loads **memory-map** those files instead of
//! decoding them onto the heap (artifacts borrow from the mapping and
//! materialize lazily per channel on first touch), and whenever the total
//! *materialized* bytes across resident sessions exceed the budget, LRU
//! sessions are evicted by dropping their maps — the disk file already
//! holds their artifacts, so re-opening is another cheap map, not a
//! rebuild. A registry can thereby advertise a corpus set many times its
//! budget while its heap working set stays bounded. Orphaned `.tmp` files
//! from a crashed save are swept at startup.
//!
//! ## Live corpora
//!
//! [`Registry::mutate`] applies a [`CorpusDelta`] to the resident session
//! through the engine's incremental patcher and journals the resulting
//! record: in memory on the entry (so mutations survive LRU eviction — a
//! rebuild regenerates the pristine dataset and replays the journal) and,
//! with a snapshot directory configured, appended to a checksummed
//! write-ahead journal file next to the snapshot (so they survive a
//! process restart too). The journal is always rooted at the fingerprint
//! of the *pristine* spec-generated dataset; a warm start positions the
//! snapshot on the fingerprint chain, restores its artifacts there, and
//! replays only the journal suffix through `apply_delta` — base + replay,
//! never a cold rebuild just because the corpus has moved past its
//! snapshot. Reaching [`COMPACTION_THRESHOLD`] records compacts the chain
//! into a single diff-derived record and re-snapshots the session at the
//! tip.

use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError, RwLock};

use serde::{Deserialize, Serialize};

use wiki_corpus::{Dataset, Language, ScaleTier, SyntheticConfig};
use wiki_query::CorrespondenceDictionary;
use wikimatch::snapshot::{EngineSnapshot, FORMAT_VERSION};
use wikimatch::{
    corpus_fingerprint, ComputeMode, CorpusDelta, DeltaJournal, DeltaReport, EngineStats,
    MappedSnapshot, MatchEngine, SnapshotError, DIRECT_FORMAT_VERSION,
};

/// Journal length at which [`Registry::mutate`] compacts: the whole chain
/// is composed into one diff-derived record (fingerprint-verified against
/// a fresh pristine replay before it replaces anything) and the session is
/// re-snapshotted at the tip, bounding both replay time on restart and
/// journal growth under sustained mutation.
pub const COMPACTION_THRESHOLD: usize = 8;

/// Whether an eviction's disk spill runs on the calling thread or on a
/// detached background thread.
#[derive(Debug, Clone, Copy)]
enum SpillMode {
    /// Spill before returning (explicit `/evict`, shutdown persistence).
    Synchronous,
    /// Spill on a background thread (LRU-pressure evictions, which run on
    /// whatever request worker tipped the capacity).
    Background,
}

/// On-disk encoding the registry spills sessions in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SnapshotFormat {
    /// The compact varint wire/archive encoding (format v3).
    Compact,
    /// The directly-addressable layout (format v4), memory-mappable by the
    /// out-of-core tier.
    Direct,
}

impl SnapshotFormat {
    fn version(self) -> u32 {
        match self {
            SnapshotFormat::Compact => FORMAT_VERSION,
            SnapshotFormat::Direct => DIRECT_FORMAT_VERSION,
        }
    }
}

/// Attempts a spill makes before declaring the disk tier degraded for
/// this snapshot and quarantining the (now unrefreshable) target.
const SPILL_ATTEMPTS: u32 = 3;
/// First-retry backoff envelope of a failed spill, in milliseconds.
const SPILL_BACKOFF_BASE_MS: u64 = 5;
/// Backoff-envelope cap of a failed spill, in milliseconds.
const SPILL_BACKOFF_CAP_MS: u64 = 50;

/// Counts one graceful-degradation event in the process-wide metrics
/// registry (`wm_degraded_events_total{kind=…}`).
fn degraded_event(kind: &str) {
    wiki_obs::registry()
        .counter_with(
            "wm_degraded_events_total",
            "Graceful-degradation events by kind (spill_failure, \
             snapshot_load_failure, journal_quarantine, snapshot_quarantine, \
             mutation_not_durable).",
            &[("kind", kind)],
        )
        .inc();
}

/// Moves a disk artifact aside to `<path>.corrupt` so it can never be
/// loaded again (while staying available for post-mortem inspection),
/// bumping the corpus' quarantine counter. `copy` preserves the original
/// in place too — used when the caller is about to rewrite `path` with a
/// repaired version and only wants the pre-repair bytes kept.
fn quarantine(path: &Path, entry: &CorpusEntry, kind: &str, copy: bool) {
    let mut target = path.as_os_str().to_owned();
    target.push(".corrupt");
    let target = PathBuf::from(target);
    let moved = if copy {
        std::fs::copy(path, &target).map(|_| ())
    } else {
        std::fs::rename(path, &target)
    };
    match moved {
        Ok(()) => {
            eprintln!(
                "warning: quarantined {} artifact {} -> {}",
                kind,
                path.display(),
                target.display()
            );
            entry.quarantines.fetch_add(1, Ordering::Relaxed);
            degraded_event(kind);
        }
        Err(err) => eprintln!(
            "warning: failed to quarantine {} artifact {}: {err}",
            kind,
            path.display()
        ),
    }
}

/// Captures and saves one session's artifacts, bumping the corpus'
/// `snapshot_saves` on success. Failures are reported and swallowed —
/// persistence is an optimisation, never a serving error — but not
/// silently accepted: a failed write is retried under a seeded,
/// jittered, capped exponential backoff, and when every attempt fails
/// the stale target (which the journal may have moved past, and which
/// this process can evidently no longer refresh) is quarantined so the
/// next cold load rebuilds instead of resurrecting it.
fn spill_to(path: &Path, entry: &CorpusEntry, engine: &MatchEngine, format: SnapshotFormat) {
    // A disk snapshot already at the engine's fingerprint, in the wanted
    // format, makes the capture redundant — the common case when a mapped,
    // never-mutated session is evicted under the resident budget: dropping
    // the map *is* the spill.
    if let Ok((version, fingerprint)) = EngineSnapshot::peek_header(path) {
        if version == format.version() && fingerprint == engine.fingerprint() {
            return;
        }
    }
    let mut backoff = wiki_fault::Backoff::new(
        SPILL_BACKOFF_BASE_MS,
        SPILL_BACKOFF_CAP_MS,
        wiki_fault::seed_from_name(&entry.spec.name),
    );
    for attempt in 1..=SPILL_ATTEMPTS {
        if attempt > 1 {
            std::thread::sleep(backoff.next_delay());
        }
        // Sparse-mode engines (`--mode filtered` / `--mode lsh`) refuse
        // capture: their registries simply run without a disk tier.
        let result = wiki_fault::check_io("registry.spill")
            .map_err(SnapshotError::Io)
            .and_then(|()| EngineSnapshot::capture(engine))
            .and_then(|snapshot| match format {
                SnapshotFormat::Compact => snapshot.save(path),
                SnapshotFormat::Direct => snapshot.save_direct(path),
            });
        match result {
            Ok(()) => {
                entry.snapshot_saves.fetch_add(1, Ordering::Relaxed);
                return;
            }
            Err(SnapshotError::InexactMode(_)) => {
                // Deterministic refusal, not a transient fault: retrying
                // (or quarantining a snapshot that cannot exist) is noise.
                return;
            }
            Err(err) => eprintln!(
                "warning: failed to persist snapshot for corpus {:?} \
                 (attempt {attempt}/{SPILL_ATTEMPTS}): {err}",
                entry.spec.name
            ),
        }
    }
    entry.spill_failures.fetch_add(1, Ordering::Relaxed);
    degraded_event("spill_failure");
    if path.exists() {
        quarantine(path, entry, "snapshot_quarantine", false);
    }
}

/// Recovers the guarded value of a poisoned lock.
///
/// Registry state is a set of once-cells and counters that are consistent
/// at every instruction boundary, so a panic in some worker (caught by the
/// server's panic barrier) must not wedge every other worker sharing the
/// registry.
fn recover<T>(result: Result<T, PoisonError<T>>) -> T {
    result.unwrap_or_else(PoisonError::into_inner)
}

/// Description of one corpus a [`Registry`] can serve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CorpusSpec {
    /// Registry name of the corpus (e.g. `"pt-medium"`).
    pub name: String,
    /// Foreign language of the pair (English is always the other side).
    pub language: Language,
    /// Generator configuration of the synthetic dataset.
    pub config: SyntheticConfig,
}

impl CorpusSpec {
    /// A spec for one language pair and named scale tier
    /// (`tiny` / `small` / `medium` / `large` / `xlarge`), named
    /// `"<code>-<tier>"`. Tier names are resolved through
    /// [`ScaleTier`], so the registry automatically follows the corpus
    /// crate's tier catalog.
    pub fn tier(language: Language, tier: &str) -> Option<Self> {
        let parsed: ScaleTier = tier.parse().ok()?;
        Some(Self {
            name: format!("{}-{}", language.code(), parsed.name()),
            language,
            config: parsed.config(),
        })
    }

    /// The built-in serving catalog: every synthetic scale tier for both of
    /// the paper's language pairs (`pt-tiny` … `vi-xlarge`).
    pub fn scale_tiers(tiers: &[&str]) -> Vec<Self> {
        let mut specs = Vec::new();
        for language in [Language::Pt, Language::Vn] {
            for tier in tiers {
                if let Some(spec) = Self::tier(language.clone(), tier) {
                    specs.push(spec);
                }
            }
        }
        specs
    }

    /// Generates the dataset this spec describes.
    pub fn dataset(&self) -> Dataset {
        Dataset::generate(self.language.clone(), &self.config)
    }
}

/// Error returned by registry operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// No corpus with the given name is registered.
    UnknownCorpus(String),
    /// A mutation was applied to the live session but could not be made
    /// durable: both the write-ahead append and the full-journal rewrite
    /// failed. The caller must not ack the mutation as persisted — the
    /// server answers 503 with `Retry-After` so the (idempotent) delta is
    /// retried once the disk recovers; the entry stays marked dirty and
    /// the next successful mutation rewrites the whole chain.
    MutationNotDurable {
        /// Corpus the mutation targeted.
        corpus: String,
        /// The underlying persistence error.
        detail: String,
    },
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::UnknownCorpus(name) => write!(f, "unknown corpus {name:?}"),
            RegistryError::MutationNotDurable { corpus, detail } => write!(
                f,
                "mutation applied to corpus {corpus:?} but not yet durable \
                 (journal write failed: {detail}); retry to re-persist"
            ),
        }
    }
}

impl std::error::Error for RegistryError {}

/// A resident corpus: the shared engine session plus serving-layer caches
/// that live and die with the residency.
#[derive(Debug)]
pub struct CachedCorpus {
    engine: Arc<MatchEngine>,
    dictionary: OnceLock<CorrespondenceDictionary>,
    responses: ResponseCache,
}

impl CachedCorpus {
    fn from_engine(engine: MatchEngine) -> Self {
        Self::sharing(Arc::new(engine))
    }

    /// A fresh cache shell around an already-shared engine session — the
    /// post-mutation residency swap: the engine's patched artifacts carry
    /// over, the memoised dictionary and serialized responses (computed
    /// against the previous corpus state) start empty.
    fn sharing(engine: Arc<MatchEngine>) -> Self {
        Self {
            engine,
            dictionary: OnceLock::new(),
            responses: ResponseCache::default(),
        }
    }

    /// The shared engine session.
    pub fn engine(&self) -> &Arc<MatchEngine> {
        &self.engine
    }

    /// The correspondence dictionary for query translation, derived from a
    /// full alignment of the corpus on first use (concurrent first requests
    /// coalesce on the slot).
    pub fn dictionary(&self) -> &CorrespondenceDictionary {
        self.dictionary.get_or_init(|| {
            let alignments = self.engine.align_all();
            CorrespondenceDictionary::build(&self.engine.dataset(), &alignments)
        })
    }

    /// A serialized response memoised under `key`; `make` runs at most once
    /// per key per residency, concurrent first requests share one compute.
    ///
    /// `make` may fail; the error (also memoised — response production is
    /// deterministic) is reported to every requester so the serving layer
    /// can answer 500 instead of panicking a worker.
    pub fn response(
        &self,
        key: &str,
        make: impl FnOnce() -> Result<String, String>,
    ) -> Result<Arc<String>, String> {
        self.responses.get_or_init(key, make)
    }
}

/// Keyed once-cache of serialized responses (same slot pattern as the
/// engine's per-type artifacts, so cold keys do not stampede).
#[derive(Debug, Default)]
struct ResponseCache {
    #[allow(clippy::type_complexity)]
    slots: RwLock<HashMap<String, Arc<OnceLock<Result<Arc<String>, String>>>>>,
}

impl ResponseCache {
    fn get_or_init(
        &self,
        key: &str,
        make: impl FnOnce() -> Result<String, String>,
    ) -> Result<Arc<String>, String> {
        let slot = {
            let slots = recover(self.slots.read());
            slots.get(key).cloned()
        };
        let slot = slot.unwrap_or_else(|| {
            let mut slots = recover(self.slots.write());
            Arc::clone(slots.entry(key.to_string()).or_default())
        });
        slot.get_or_init(|| make().map(Arc::new)).clone()
    }
}

/// One registered corpus: its spec, lifetime counters, and the session slot
/// of the current residency (if any).
#[derive(Debug)]
struct CorpusEntry {
    spec: CorpusSpec,
    hits: AtomicU64,
    misses: AtomicU64,
    builds: AtomicU64,
    evictions: AtomicU64,
    snapshot_loads: AtomicU64,
    snapshot_saves: AtomicU64,
    compactions: AtomicU64,
    snapshot_load_failures: AtomicU64,
    spill_failures: AtomicU64,
    quarantines: AtomicU64,
    mutations_not_durable: AtomicU64,
    /// Set when a write-ahead journal append failed after the in-memory
    /// journal (and the live engine) already advanced: the on-disk chain
    /// is behind or broken, so the next journal write must be a full
    /// rewrite, not an append. Read and written under the journal lock.
    journal_dirty: AtomicBool,
    /// `Some(slot)` while resident or being built; `None` when evicted.
    /// Concurrent cold requests clone the same slot and coalesce on its
    /// `OnceLock`.
    session: Mutex<Option<Arc<OnceLock<Arc<CachedCorpus>>>>>,
    /// The corpus' mutation lineage, rooted at the fingerprint of the
    /// pristine spec-generated dataset. Lives on the entry (not the
    /// residency) so mutations survive LRU eviction; the lock also
    /// serializes registry-level mutations of the corpus, keeping the
    /// append order identical to the engine's application order.
    journal: Mutex<Option<DeltaJournal>>,
}

impl CorpusEntry {
    fn new(spec: CorpusSpec) -> Self {
        Self {
            spec,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            builds: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            snapshot_loads: AtomicU64::new(0),
            snapshot_saves: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
            snapshot_load_failures: AtomicU64::new(0),
            spill_failures: AtomicU64::new(0),
            quarantines: AtomicU64::new(0),
            mutations_not_durable: AtomicU64::new(0),
            journal_dirty: AtomicBool::new(false),
            session: Mutex::new(None),
            journal: Mutex::new(None),
        }
    }

    fn resident(&self) -> Option<Arc<CachedCorpus>> {
        let session = recover(self.session.lock());
        session.as_ref().and_then(|slot| slot.get()).cloned()
    }
}

/// Lifetime statistics of one registered corpus, as served by `/stats`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CorpusStats {
    /// Registry name.
    pub name: String,
    /// Whether a session is currently resident in the LRU.
    pub resident: bool,
    /// Requests served from the resident session.
    pub hits: u64,
    /// Requests that found the corpus cold (they either started or joined a
    /// session build).
    pub misses: u64,
    /// Session builds actually performed — under concurrent cold traffic
    /// this stays at one per residency (the coalescing invariant).
    pub builds: u64,
    /// Times the session was evicted by LRU pressure or an explicit evict.
    pub evictions: u64,
    /// Session builds that were served from a disk snapshot instead of
    /// computing artifacts (always 0 without a snapshot directory).
    pub snapshot_loads: u64,
    /// Snapshots written for this corpus (evictions spilling, warm writing
    /// through, or an explicit persist).
    pub snapshot_saves: u64,
    /// Records currently on the corpus' delta journal (0 while pristine;
    /// drops back to 1 after a compaction).
    pub journal_records: u64,
    /// Serialized size of the current journal, in bytes.
    pub journal_bytes: u64,
    /// Times the journal was compacted into a single composed record.
    pub compactions: u64,
    /// Disk-tier loads that failed and degraded to a rebuild: unreadable
    /// or off-chain snapshots, and snapshots the engine rejected.
    pub snapshot_load_failures: u64,
    /// Spills abandoned after every backoff retry failed (the session
    /// keeps serving from memory; the stale target is quarantined).
    pub spill_failures: u64,
    /// Disk artifacts moved aside to `*.corrupt` (unreadable journals,
    /// torn-tail originals, unrefreshable snapshots).
    pub quarantines: u64,
    /// Mutations applied to the live session that could not be journaled
    /// to disk and were answered [`RegistryError::MutationNotDurable`].
    pub mutations_not_durable: u64,
    /// Heap bytes held by the resident session's artifacts (0 while cold).
    /// For a mapped session this counts only what has been *materialized* —
    /// the working set the `--max-resident-mb` budget evicts against.
    pub resident_bytes: u64,
    /// Bytes of memory-mapped snapshot backing the resident session (0
    /// while cold, or when the session owns its artifacts on the heap).
    pub mapped_bytes: u64,
    /// Lazy materialisations of mapped channels since the session was
    /// opened (0 for owned sessions).
    pub page_ins: u64,
    /// Activity counters of the resident engine (`None` while cold).
    pub engine: Option<EngineStats>,
}

/// Snapshot of the whole registry, as served by `/stats`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegistryStats {
    /// Maximum number of resident sessions.
    pub capacity: usize,
    /// Similarity-table compute mode engines are built with.
    pub mode: ComputeMode,
    /// Directory of the snapshot disk tier (`None` when disabled).
    pub snapshot_dir: Option<String>,
    /// Resident-bytes budget of the out-of-core tier, in bytes (`None`
    /// when unlimited).
    pub resident_budget_bytes: Option<u64>,
    /// Currently resident sessions.
    pub resident: usize,
    /// Total artifact heap bytes across resident sessions.
    pub resident_bytes: u64,
    /// Total memory-mapped snapshot bytes across resident sessions.
    pub mapped_bytes: u64,
    /// Total lazy page-ins across resident sessions.
    pub page_ins: u64,
    /// Per-corpus stats, in registration order.
    pub corpora: Vec<CorpusStats>,
}

/// Named corpora behind an LRU of shared [`MatchEngine`] sessions.
///
/// All operations are `&self` and thread-safe; the registry is designed to
/// sit behind an `Arc` shared by every server worker.
#[derive(Debug)]
pub struct Registry {
    capacity: usize,
    mode: ComputeMode,
    /// Directory of the snapshot disk tier; `None` disables persistence.
    snapshot_dir: Option<PathBuf>,
    /// Resident-bytes budget of the out-of-core tier, in bytes; `None`
    /// means unlimited (the LRU capacity is the only bound).
    resident_budget: Option<u64>,
    /// Registered corpora; `Vec` keeps registration order for `/stats`.
    entries: RwLock<Vec<Arc<CorpusEntry>>>,
    /// LRU bookkeeping: name → last-used tick, for resident corpora only.
    lru: Mutex<LruState>,
}

#[derive(Debug, Default)]
struct LruState {
    tick: u64,
    last_used: HashMap<String, u64>,
}

impl Registry {
    /// Creates a registry holding at most `capacity` resident sessions
    /// (minimum 1), building engines with the given compute mode.
    pub fn new(capacity: usize, mode: ComputeMode) -> Self {
        Self {
            capacity: capacity.max(1),
            mode,
            snapshot_dir: None,
            resident_budget: None,
            entries: RwLock::new(Vec::new()),
            lru: Mutex::new(LruState::default()),
        }
    }

    /// Enables the snapshot disk tier under the LRU: cold requests check
    /// `dir` for a persisted session before building, evicted sessions
    /// spill their artifacts there, and [`warm`](Self::warm) writes
    /// through. See [`wikimatch::snapshot`] for the file format and its
    /// validation (fingerprint, version, checksum).
    ///
    /// Orphaned temporary files from a save that crashed mid-write (the
    /// atomic-save protocol writes `.{name}.tmp-{pid}-{seq}` siblings and
    /// renames them into place) are swept from `dir` here, so they cannot
    /// accumulate across restarts.
    pub fn with_snapshot_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        let dir = dir.into();
        Self::sweep_orphaned_tmp(&dir);
        self.snapshot_dir = Some(dir);
        self
    }

    /// Enables the out-of-core resident-bytes budget: snapshots are written
    /// in the directly-addressable (v4) format, cold loads memory-map them
    /// instead of decoding onto the heap, and whenever the *materialized*
    /// bytes across resident sessions exceed `mb` megabytes, least-recently
    /// used sessions are evicted (their maps dropped) until the total is
    /// back under budget — always keeping at least the most recent session
    /// resident. Requires a snapshot directory, which is where the mapped
    /// files live.
    ///
    /// # Panics
    ///
    /// Panics if no snapshot directory is configured; call
    /// [`with_snapshot_dir`](Self::with_snapshot_dir) first.
    pub fn with_resident_budget_mb(mut self, mb: u64) -> Self {
        assert!(
            self.snapshot_dir.is_some(),
            "a resident budget requires a snapshot directory (call with_snapshot_dir first)"
        );
        self.resident_budget = Some(mb.saturating_mul(1024 * 1024));
        self
    }

    /// Removes orphaned snapshot/journal temp files (left by a crash
    /// between the temp write and the rename) from the disk-tier directory.
    fn sweep_orphaned_tmp(dir: &Path) {
        let Ok(entries) = std::fs::read_dir(dir) else {
            return; // Directory not created yet: nothing to sweep.
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.starts_with('.') && name.contains(".tmp-") {
                let path = entry.path();
                match std::fs::remove_file(&path) {
                    Ok(()) => {
                        eprintln!("info: swept orphaned snapshot temp file {}", path.display())
                    }
                    Err(err) => eprintln!(
                        "warning: failed to sweep orphaned temp file {}: {err}",
                        path.display()
                    ),
                }
            }
        }
    }

    /// The format [`spill_to`] writes: directly-addressable under a
    /// resident budget (so the next cold load can map it), compact
    /// otherwise.
    fn snapshot_format(&self) -> SnapshotFormat {
        if self.resident_budget.is_some() {
            SnapshotFormat::Direct
        } else {
            SnapshotFormat::Compact
        }
    }

    /// The snapshot directory of the disk tier, if enabled.
    pub fn snapshot_dir(&self) -> Option<&Path> {
        self.snapshot_dir.as_deref()
    }

    /// The filesystem stem of a corpus' disk-tier files. Names made
    /// entirely of filesystem-safe characters map to themselves; anything
    /// else is sanitised **and** suffixed with a hash of the raw name, so
    /// two distinct corpora (e.g. `"a b"` and `"a_b"`) can never clobber
    /// each other's files.
    fn artifact_stem(name: &str) -> String {
        let safe = |c: char| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.');
        if !name.is_empty() && name.chars().all(safe) {
            name.to_string()
        } else {
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for byte in name.bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            let sanitised: String = name
                .chars()
                .map(|c| if safe(c) { c } else { '_' })
                .collect();
            format!("{sanitised}-{:08x}", (hash as u32) ^ ((hash >> 32) as u32))
        }
    }

    /// The snapshot file of a corpus (`<stem>.snap`).
    fn snapshot_path(&self, name: &str) -> Option<PathBuf> {
        let dir = self.snapshot_dir.as_ref()?;
        Some(dir.join(format!("{}.snap", Self::artifact_stem(name))))
    }

    /// The write-ahead delta journal of a corpus (`<stem>.journal`), a
    /// sibling of its snapshot.
    fn journal_path(&self, name: &str) -> Option<PathBuf> {
        let dir = self.snapshot_dir.as_ref()?;
        Some(dir.join(format!("{}.journal", Self::artifact_stem(name))))
    }

    /// Resolves the delta journal of a corpus, always rooted at the
    /// fingerprint of the pristine spec-generated dataset. Prefers the
    /// in-memory journal on the entry (it survives LRU eviction), falls
    /// back to the disk tier (recovering a torn tail and rewriting the
    /// file), and roots a fresh empty journal otherwise. A journal rooted
    /// at a different fingerprint — the spec was re-registered with a new
    /// generator — is discarded: its lineage no longer applies. The
    /// resolved journal is installed on the entry before returning.
    fn resident_journal(&self, entry: &CorpusEntry, base_fingerprint: u64) -> DeltaJournal {
        let mut slot = recover(entry.journal.lock());
        if let Some(journal) = slot.as_ref() {
            if journal.base_fingerprint == base_fingerprint {
                return journal.clone();
            }
        }
        let mut resolved = DeltaJournal::new(base_fingerprint);
        if let Some(path) = self.journal_path(&entry.spec.name) {
            match DeltaJournal::load_recovering(&path) {
                Ok((journal, dropped)) if journal.base_fingerprint == base_fingerprint => {
                    if dropped {
                        eprintln!(
                            "warning: journal {} had a torn tail; recovered {} records",
                            path.display(),
                            journal.len()
                        );
                        // Keep the pre-repair bytes for inspection, then
                        // rewrite the file as the verified prefix so the
                        // torn suffix cannot resurface.
                        quarantine(&path, entry, "journal_quarantine", true);
                        if let Err(err) = journal.save(&path) {
                            eprintln!(
                                "warning: failed to rewrite recovered journal {}: {err}",
                                path.display()
                            );
                        }
                    }
                    resolved = journal;
                }
                Ok((journal, _)) => {
                    eprintln!(
                        "warning: journal {} is rooted at {:016x}, expected {:016x}; \
                         quarantining its {} records",
                        path.display(),
                        journal.base_fingerprint,
                        base_fingerprint,
                        journal.len()
                    );
                    // An off-lineage journal must leave the append path:
                    // writing this corpus' records after its foreign
                    // header would corrupt both chains.
                    quarantine(&path, entry, "journal_quarantine", false);
                }
                Err(SnapshotError::Io(err)) if err.kind() == std::io::ErrorKind::NotFound => {}
                Err(err) => {
                    // Nothing recoverable at all (e.g. a torn *header*
                    // from a crash inside the first append). Move the
                    // garbage aside: appending acked records after it
                    // would make every one of them unrecoverable.
                    eprintln!(
                        "warning: quarantining unreadable journal {}: {err}",
                        path.display()
                    );
                    quarantine(&path, entry, "journal_quarantine", false);
                }
            }
        }
        *slot = Some(resolved.clone());
        resolved
    }

    /// Replays `journal.records[..upto]` over a copy of `pristine`,
    /// verifying every record's post fingerprint as it lands. Returns the
    /// replayed dataset and how many records verified — fewer than `upto`
    /// only if a record fails to replay to its recorded fingerprint, which
    /// the checksummed, chain-validated journal format makes practically
    /// unreachable; the surviving prefix is still exact (divergence is
    /// detected *after* the bad record, so the returned dataset is rebuilt
    /// from the prefix alone).
    fn replay_prefix(pristine: &Dataset, journal: &DeltaJournal, upto: usize) -> (Dataset, usize) {
        let mut dataset = pristine.clone();
        let mut verified = 0;
        for record in &journal.records[..upto] {
            record.delta.apply_to(&mut dataset.corpus);
            if corpus_fingerprint(&dataset) != record.post_fingerprint {
                // Roll back to the verified prefix by replaying it afresh.
                dataset = pristine.clone();
                for good in &journal.records[..verified] {
                    good.delta.apply_to(&mut dataset.corpus);
                }
                break;
            }
            verified += 1;
        }
        (dataset, verified)
    }

    /// Builds (or disk-loads) the session of one corpus. Runs inside the
    /// entry's build slot, so it executes at most once per residency.
    ///
    /// A corpus with a non-empty journal is *mutated*: its current state is
    /// the pristine spec-generated dataset plus the journal's replay. The
    /// snapshot (which may have been written at any point of the lineage)
    /// is positioned on the fingerprint chain, its artifacts restored
    /// there, and only the journal suffix is replayed through the engine's
    /// incremental patcher — a corpus that has moved past its snapshot
    /// falls back to base + replay, never to a cold rebuild.
    fn build_corpus(&self, entry: &CorpusEntry) -> CachedCorpus {
        let pristine = entry.spec.dataset();
        let base_fingerprint = corpus_fingerprint(&pristine);
        let mut journal = self.resident_journal(entry, base_fingerprint);

        let snapshot = self.snapshot_path(&entry.spec.name).and_then(|path| {
            // Under a resident budget the out-of-core open is preferred:
            // a directly-addressable (v4) file is validated and *mapped* —
            // its artifacts borrow from the file and materialize lazily. A
            // compact (v3) file falls back to the owned decoder; the next
            // spill rewrites it in the direct form.
            let loaded = if self.resident_budget.is_some() {
                match MappedSnapshot::open(&path) {
                    Ok(mapped) => Ok(mapped.snapshot),
                    Err(SnapshotError::UnsupportedVersion { .. }) => EngineSnapshot::load(&path),
                    Err(err) => Err(err),
                }
            } else {
                EngineSnapshot::load(&path)
            };
            match loaded {
                Ok(snapshot) => Some(snapshot),
                // No snapshot yet: the common cold-start case, not an error.
                Err(SnapshotError::Io(err)) if err.kind() == std::io::ErrorKind::NotFound => None,
                Err(err) => {
                    // Degrade to a rebuild and quarantine the file: a
                    // snapshot that failed validation once will fail it
                    // on every future cold load too.
                    eprintln!(
                        "warning: unreadable snapshot {} for corpus {:?}: {err}; rebuilding",
                        path.display(),
                        entry.spec.name
                    );
                    entry.snapshot_load_failures.fetch_add(1, Ordering::Relaxed);
                    degraded_event("snapshot_load_failure");
                    quarantine(&path, entry, "snapshot_quarantine", false);
                    None
                }
            }
        });

        // Position the snapshot on the journal's fingerprint chain:
        // `Some(r)` restores it over the corpus as of record `r`.
        let position = snapshot.as_ref().and_then(|snapshot| {
            if snapshot.fingerprint == base_fingerprint {
                Some(0)
            } else {
                journal
                    .records
                    .iter()
                    .position(|r| r.post_fingerprint == snapshot.fingerprint)
                    .map(|i| i + 1)
            }
        });
        if snapshot.is_some() && position.is_none() {
            eprintln!(
                "warning: snapshot for corpus {:?} is not on the journal's \
                 fingerprint chain; rebuilding",
                entry.spec.name
            );
            entry.snapshot_load_failures.fetch_add(1, Ordering::Relaxed);
            degraded_event("snapshot_load_failure");
        }

        if let (Some(snapshot), Some(at)) = (snapshot, position) {
            let (dataset, verified) = Self::replay_prefix(&pristine, &journal, at);
            if verified < at {
                self.truncate_journal(entry, &mut journal, verified);
            } else {
                let restored = MatchEngine::builder(Arc::new(dataset))
                    .compute_mode(self.mode)
                    .build_from_snapshot(snapshot);
                match restored {
                    Ok(engine) => {
                        entry.snapshot_loads.fetch_add(1, Ordering::Relaxed);
                        // Replay the suffix through the incremental patcher:
                        // restored artifacts are patched, not rebuilt.
                        let mut reached = at;
                        for record in &journal.records[at..] {
                            let report = engine.apply_delta(&record.delta);
                            if report.fingerprint != record.post_fingerprint {
                                break;
                            }
                            reached += 1;
                        }
                        if reached == journal.len() {
                            return CachedCorpus::from_engine(engine);
                        }
                        // A record diverged mid-suffix and is already
                        // applied to the engine: discard the engine and
                        // rebuild cold over the verified prefix instead.
                        self.truncate_journal(entry, &mut journal, reached);
                    }
                    Err(err) => {
                        eprintln!(
                            "warning: snapshot rejected for corpus {:?}: {err}; rebuilding",
                            entry.spec.name
                        );
                        entry.snapshot_load_failures.fetch_add(1, Ordering::Relaxed);
                        degraded_event("snapshot_load_failure");
                    }
                }
            }
        }

        // No usable snapshot: cold build over base + replay, so journaled
        // mutations are never lost.
        let (dataset, verified) = Self::replay_prefix(&pristine, &journal, journal.len());
        if verified < journal.len() {
            self.truncate_journal(entry, &mut journal, verified);
        }
        CachedCorpus::from_engine(
            MatchEngine::builder(Arc::new(dataset))
                .compute_mode(self.mode)
                .build(),
        )
    }

    /// Truncates a corpus' journal to its first `keep` records — the
    /// last-resort response to a record that fails to replay to its
    /// recorded fingerprint — updating the entry's journal and rewriting
    /// the disk file so the dropped suffix cannot resurface.
    fn truncate_journal(&self, entry: &CorpusEntry, journal: &mut DeltaJournal, keep: usize) {
        eprintln!(
            "warning: truncating journal of corpus {:?} from {} to {keep} records",
            entry.spec.name,
            journal.len()
        );
        journal.records.truncate(keep);
        if let Some(path) = self.journal_path(&entry.spec.name) {
            // Preserve the pre-truncation bytes: the dropped suffix is
            // evidence of a divergence the checksummed format should have
            // made unreachable.
            if path.exists() {
                quarantine(&path, entry, "journal_quarantine", true);
            }
            if let Err(err) = journal.save(&path) {
                eprintln!(
                    "warning: failed to rewrite truncated journal {}: {err}",
                    path.display()
                );
            }
        }
        *recover(entry.journal.lock()) = Some(journal.clone());
    }

    /// Writes the session's current artifacts to the disk tier (no-op
    /// without a snapshot directory). Failures are reported and swallowed:
    /// persistence is an optimisation, never a serving error.
    fn spill(&self, entry: &CorpusEntry, engine: &MatchEngine) {
        let Some(path) = self.snapshot_path(&entry.spec.name) else {
            return;
        };
        spill_to(&path, entry, engine, self.snapshot_format());
    }

    /// Spills every currently resident session to the disk tier — the
    /// graceful-shutdown hook behind `matchd --persist`, so the next start
    /// serves from disk without rebuilding anything. Returns the number of
    /// sessions written; always 0 without a snapshot directory.
    pub fn persist_resident(&self) -> usize {
        if self.snapshot_dir.is_none() {
            return 0;
        }
        let entries: Vec<Arc<CorpusEntry>> = recover(self.entries.read()).clone();
        let mut written = 0;
        for entry in entries {
            if let Some(cached) = entry.resident() {
                let before = entry.snapshot_saves.load(Ordering::Relaxed);
                self.spill(&entry, cached.engine());
                if entry.snapshot_saves.load(Ordering::Relaxed) > before {
                    written += 1;
                }
            }
        }
        written
    }

    /// Registers a corpus; replaces any previous spec with the same name
    /// (dropping its resident session, counters and LRU slot).
    pub fn register(&self, spec: CorpusSpec) {
        let name = spec.name.clone();
        {
            let mut entries = recover(self.entries.write());
            let entry = Arc::new(CorpusEntry::new(spec));
            if let Some(existing) = entries.iter_mut().find(|e| e.spec.name == entry.spec.name) {
                *existing = entry;
            } else {
                entries.push(entry);
            }
        }
        // A replaced corpus has no resident session any more; its stale LRU
        // entry must go with it or capacity enforcement would count (and
        // try to evict) a ghost.
        let mut lru = recover(self.lru.lock());
        lru.last_used.remove(&name);
    }

    /// Registers every spec of an iterator.
    pub fn register_all(&self, specs: impl IntoIterator<Item = CorpusSpec>) {
        for spec in specs {
            self.register(spec);
        }
    }

    /// Maximum number of resident sessions.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The compute mode engines are built with.
    pub fn mode(&self) -> ComputeMode {
        self.mode
    }

    /// Names of the registered corpora, in registration order.
    pub fn names(&self) -> Vec<String> {
        recover(self.entries.read())
            .iter()
            .map(|e| e.spec.name.clone())
            .collect()
    }

    /// The registered specs, in registration order.
    pub fn specs(&self) -> Vec<CorpusSpec> {
        recover(self.entries.read())
            .iter()
            .map(|e| e.spec.clone())
            .collect()
    }

    fn entry(&self, name: &str) -> Result<Arc<CorpusEntry>, RegistryError> {
        recover(self.entries.read())
            .iter()
            .find(|e| e.spec.name == name)
            .cloned()
            .ok_or_else(|| RegistryError::UnknownCorpus(name.to_string()))
    }

    /// The resident session of `name`, building it (once, even under
    /// concurrent cold requests) if necessary. The hot path is one entry
    /// lookup plus one mutex-guarded slot clone.
    pub fn corpus(&self, name: &str) -> Result<Arc<CachedCorpus>, RegistryError> {
        let entry = self.entry(name)?;
        let slot = {
            let mut session = recover(entry.session.lock());
            match session.as_ref() {
                Some(slot) => {
                    if slot.get().is_some() {
                        entry.hits.fetch_add(1, Ordering::Relaxed);
                    } else {
                        // Joining an in-flight build still counts as a miss.
                        entry.misses.fetch_add(1, Ordering::Relaxed);
                    }
                    Arc::clone(slot)
                }
                None => {
                    entry.misses.fetch_add(1, Ordering::Relaxed);
                    let slot: Arc<OnceLock<Arc<CachedCorpus>>> = Arc::default();
                    *session = Some(Arc::clone(&slot));
                    slot
                }
            }
        };
        let mut built_here = false;
        let cached = Arc::clone(slot.get_or_init(|| {
            built_here = true;
            entry.builds.fetch_add(1, Ordering::Relaxed);
            Arc::new(self.build_corpus(&entry))
        }));
        self.touch(name);
        if built_here {
            self.enforce_capacity();
        }
        // The budget is enforced on every access, not just on builds:
        // mapped sessions grow their materialized working set lazily as
        // channels are touched, so a hit can tip the total over as surely
        // as a build can.
        self.enforce_budget();
        Ok(cached)
    }

    /// Convenience accessor for the engine of a corpus.
    pub fn engine(&self, name: &str) -> Result<Arc<MatchEngine>, RegistryError> {
        Ok(Arc::clone(self.corpus(name)?.engine()))
    }

    /// Builds the session of `name` (if cold) and precomputes the per-type
    /// artifacts of every entity type, in parallel. With a snapshot
    /// directory configured the fully warmed session is written through to
    /// disk, so the *next* process start serves it without rebuilding.
    pub fn warm(&self, name: &str) -> Result<Arc<CachedCorpus>, RegistryError> {
        let entry = self.entry(name)?;
        let cached = self.corpus(name)?;
        cached.engine().prepare_all();
        self.spill(&entry, cached.engine());
        Ok(cached)
    }

    /// Applies a mutation delta to the session of `name` (building it
    /// first if cold) and journals the resulting record, so the mutation
    /// survives both LRU eviction (in-memory journal on the entry) and —
    /// with a snapshot directory configured — a process restart
    /// (write-ahead append to the corpus' journal file).
    ///
    /// The engine patches its artifacts incrementally; the residency's
    /// serving-layer caches (memoised dictionary, serialized responses)
    /// are swapped for fresh ones, since they were computed against the
    /// previous corpus state. Reaching [`COMPACTION_THRESHOLD`] journal
    /// records triggers a compaction.
    ///
    /// A delta that leaves the corpus fingerprint unchanged (e.g. only
    /// removals of unknown keys) is reported but not journaled.
    pub fn mutate(&self, name: &str, delta: &CorpusDelta) -> Result<DeltaReport, RegistryError> {
        let entry = self.entry(name)?;
        let cached = self.corpus(name)?;
        // The journal lock serializes registry-level mutations of this
        // corpus: `apply_delta` runs under it, so journal append order is
        // exactly the engine's application order and the fingerprint chain
        // stays linked.
        let mut journal_slot = recover(entry.journal.lock());
        let report = cached.engine().apply_delta(delta);
        if report.fingerprint == report.fingerprint_before {
            // The retry of a mutation answered `MutationNotDurable` lands
            // here (upserts are idempotent, so the replayed delta is a
            // fingerprint no-op): the chain on disk is still behind the
            // engine, so repair it before acking, or keep refusing.
            if entry.journal_dirty.load(Ordering::Relaxed) {
                if let (Some(path), Some(journal)) =
                    (self.journal_path(name), journal_slot.as_ref())
                {
                    match journal.save(&path) {
                        Ok(()) => entry.journal_dirty.store(false, Ordering::Relaxed),
                        Err(err) => {
                            entry.mutations_not_durable.fetch_add(1, Ordering::Relaxed);
                            degraded_event("mutation_not_durable");
                            return Err(RegistryError::MutationNotDurable {
                                corpus: name.to_string(),
                                detail: err.to_string(),
                            });
                        }
                    }
                }
            }
            return Ok(report);
        }
        let journal =
            journal_slot.get_or_insert_with(|| DeltaJournal::new(report.fingerprint_before));
        if journal.tip() != report.fingerprint_before {
            // Unreachable in normal operation (every mutation holds this
            // lock): re-root defensively so the in-memory chain stays
            // linked. The re-rooted journal no longer reaches back to the
            // pristine dataset, so a restart will discard it — consistency
            // of the live session wins over persistence.
            eprintln!(
                "warning: journal of corpus {name:?} lost its lineage \
                 (tip {:016x}, engine was at {:016x}); re-rooting",
                journal.tip(),
                report.fingerprint_before
            );
            *journal = DeltaJournal::new(report.fingerprint_before);
        }
        let record = journal.append(delta.clone(), report.fingerprint).clone();
        let mut not_durable: Option<String> = None;
        if let Some(path) = self.journal_path(name) {
            // A dirty chain (an earlier append failed after the in-memory
            // journal advanced) cannot be appended to — the file is behind
            // or torn — so the whole verified chain is rewritten instead.
            let written = if entry.journal_dirty.load(Ordering::Relaxed) {
                journal.save(&path)
            } else {
                DeltaJournal::append_record_to(&path, journal.base_fingerprint, &record).or_else(
                    |err| {
                        eprintln!(
                            "warning: failed to journal delta for corpus {name:?}: {err}; \
                             rewriting the full journal"
                        );
                        journal.save(&path)
                    },
                )
            };
            match written {
                Ok(()) => entry.journal_dirty.store(false, Ordering::Relaxed),
                Err(err) => {
                    entry.journal_dirty.store(true, Ordering::Relaxed);
                    entry.mutations_not_durable.fetch_add(1, Ordering::Relaxed);
                    degraded_event("mutation_not_durable");
                    not_durable = Some(err.to_string());
                }
            }
        }
        // Swap the residency's cache shell: the engine (with its patched
        // artifacts) carries over, the stale memoised responses do not.
        // This happens even when the append failed — the live session has
        // moved, so stale caches would serve pre-delta answers.
        {
            let mut session = recover(entry.session.lock());
            let slot: Arc<OnceLock<Arc<CachedCorpus>>> = Arc::default();
            let _ = slot.set(Arc::new(CachedCorpus::sharing(Arc::clone(cached.engine()))));
            *session = Some(slot);
        }
        if let Some(detail) = not_durable {
            // No compaction while not durable: compacting rewrites the
            // disk chain, and the priority is answering the caller that
            // their ack is withheld.
            return Err(RegistryError::MutationNotDurable {
                corpus: name.to_string(),
                detail,
            });
        }
        if journal.len() >= COMPACTION_THRESHOLD && self.compact(&entry, journal, cached.engine()) {
            entry.compactions.fetch_add(1, Ordering::Relaxed);
        }
        Ok(report)
    }

    /// Compacts a journal: composes the whole chain into one diff-derived
    /// record `[pristine → tip]`, verified by replaying the composition
    /// over a freshly generated pristine dataset and checking its
    /// fingerprint against the tip **before** it replaces anything — on
    /// any mismatch the full journal stays in place (it is always sound)
    /// and `false` is returned. On success the disk journal is rewritten
    /// and the session re-snapshotted at the tip, so the next start
    /// restores artifacts directly instead of replaying a long chain.
    fn compact(
        &self,
        entry: &CorpusEntry,
        journal: &mut DeltaJournal,
        engine: &MatchEngine,
    ) -> bool {
        let mut pristine = entry.spec.dataset();
        if corpus_fingerprint(&pristine) != journal.base_fingerprint {
            // The spec drifted under us; composing against the wrong base
            // would corrupt the lineage.
            return false;
        }
        let current = engine.dataset();
        let composed = CorpusDelta::diff(&pristine.corpus, &current.corpus);
        composed.apply_to(&mut pristine.corpus);
        if corpus_fingerprint(&pristine) != journal.tip() {
            eprintln!(
                "warning: composed delta of corpus {:?} failed fingerprint \
                 verification; keeping the full journal",
                entry.spec.name
            );
            return false;
        }
        let mut compacted = DeltaJournal::new(journal.base_fingerprint);
        compacted.append(composed, journal.tip());
        if let Some(path) = self.journal_path(&entry.spec.name) {
            if let Err(err) = compacted.save(&path) {
                eprintln!(
                    "warning: failed to write compacted journal of corpus {:?}: {err}",
                    entry.spec.name
                );
                // The on-disk chain is still the full journal; keep the
                // in-memory journal matching it.
                return false;
            }
        }
        *journal = compacted;
        self.spill(entry, engine);
        true
    }

    /// Evicts the resident session of `name` (if any); returns whether a
    /// session was actually dropped. In-flight holders of the session keep
    /// it alive through their `Arc`s. With a snapshot directory configured
    /// the evicted session's artifacts are spilled to disk first, so a
    /// later request restores them instead of recomputing.
    pub fn evict(&self, name: &str) -> Result<bool, RegistryError> {
        // Explicit evictions (admin `/evict`) spill synchronously: the
        // caller asked for the eviction and can absorb the write latency,
        // and the spill is guaranteed done when the response goes out.
        self.evict_spilling(name, SpillMode::Synchronous)
    }

    fn evict_spilling(&self, name: &str, mode: SpillMode) -> Result<bool, RegistryError> {
        let entry = self.entry(name)?;
        // Chaos hook: delay (or abort) an eviction between the session
        // drop and the spill, the window crash-consistency cares about.
        wiki_fault::pause("registry.evict");
        let dropped = {
            let mut session = recover(entry.session.lock());
            // Only drop *completed* sessions: evicting an in-flight build
            // would detach the builders from the slot bookkeeping.
            match session.as_ref() {
                Some(slot) if slot.get().is_some() => {
                    let cached = slot.get().cloned();
                    *session = None;
                    cached
                }
                _ => None,
            }
        };
        if let Some(cached) = dropped.clone() {
            entry.evictions.fetch_add(1, Ordering::Relaxed);
            // Spill outside the session lock: a slow disk must not block
            // concurrent requests (they may even start rebuilding the
            // session meanwhile — the artifacts are identical either way,
            // and the save is atomic).
            if let Some(path) = self.snapshot_path(name) {
                let format = self.snapshot_format();
                match mode {
                    SpillMode::Synchronous => spill_to(&path, &entry, cached.engine(), format),
                    // LRU pressure evicts on whatever worker thread tipped
                    // the capacity — that request must not pay for a
                    // multi-megabyte serialization of an unrelated corpus,
                    // so the spill moves to a background thread.
                    SpillMode::Background => {
                        let entry = Arc::clone(&entry);
                        std::thread::spawn(move || {
                            spill_to(&path, &entry, cached.engine(), format)
                        });
                    }
                }
            }
        }
        // Always clear the LRU slot, even when nothing was resident: a
        // stale entry (e.g. left by a touch racing an evict) would
        // otherwise be re-selected as the LRU victim forever.
        let mut lru = recover(self.lru.lock());
        lru.last_used.remove(name);
        Ok(dropped.is_some())
    }

    fn touch(&self, name: &str) {
        let mut lru = recover(self.lru.lock());
        lru.tick += 1;
        let tick = lru.tick;
        lru.last_used.insert(name.to_string(), tick);
    }

    /// Evicts least-recently-used sessions until at most `capacity` are
    /// resident. The victim is always the *global* oldest entry (ties
    /// broken by name) — concurrent enforcers therefore agree on the same
    /// victim instead of mutually evicting each other's fresh builds, and
    /// the loop stops as soon as the count is back under capacity.
    fn enforce_capacity(&self) {
        loop {
            let victim = {
                let lru = recover(self.lru.lock());
                if lru.last_used.len() <= self.capacity {
                    return;
                }
                lru.last_used
                    .iter()
                    .min_by_key(|(name, &tick)| (tick, (*name).clone()))
                    .map(|(name, _)| name.clone())
            };
            match victim {
                Some(name) => {
                    // `evict_spilling` removes the LRU slot even when the
                    // session is already gone, so every iteration shrinks
                    // `last_used` — but drop the slot by hand if the corpus
                    // itself has been unregistered, or the loop would never
                    // progress. Spills run in the background: capacity
                    // enforcement happens on a request worker serving some
                    // unrelated corpus.
                    if self.evict_spilling(&name, SpillMode::Background).is_err() {
                        let mut lru = recover(self.lru.lock());
                        lru.last_used.remove(&name);
                    }
                }
                None => return,
            }
        }
    }

    /// Evicts least-recently-used sessions (dropping their maps — the disk
    /// file already holds their artifacts) while the total *materialized*
    /// bytes across resident sessions exceed the resident budget, keeping a
    /// floor of one resident session so the corpus just served always
    /// survives. No-op without a budget.
    fn enforce_budget(&self) {
        let Some(budget) = self.resident_budget else {
            return;
        };
        loop {
            let entries: Vec<Arc<CorpusEntry>> = recover(self.entries.read()).clone();
            let mut resident: Vec<(String, u64)> = Vec::new();
            for entry in &entries {
                if let Some(cached) = entry.resident() {
                    resident.push((
                        entry.spec.name.clone(),
                        cached.engine().stats().resident_bytes,
                    ));
                }
            }
            let total: u64 = resident.iter().map(|(_, bytes)| bytes).sum();
            if resident.len() <= 1 || total <= budget {
                return;
            }
            // Same victim rule as `enforce_capacity`: the global-oldest
            // entry by (tick, name), so concurrent enforcers agree.
            let victim = {
                let lru = recover(self.lru.lock());
                resident
                    .iter()
                    .min_by_key(|(name, _)| {
                        (lru.last_used.get(name).copied().unwrap_or(0), name.clone())
                    })
                    .map(|(name, _)| name.clone())
            };
            match victim {
                Some(name) => {
                    if self.evict_spilling(&name, SpillMode::Background).is_err() {
                        let mut lru = recover(self.lru.lock());
                        lru.last_used.remove(&name);
                    }
                }
                None => return,
            }
        }
    }

    /// A point-in-time snapshot of the registry.
    pub fn stats(&self) -> RegistryStats {
        let entries = recover(self.entries.read());
        let corpora: Vec<CorpusStats> = entries
            .iter()
            .map(|entry| {
                let resident = entry.resident();
                let (journal_records, journal_bytes) = {
                    let slot = recover(entry.journal.lock());
                    match slot.as_ref() {
                        Some(journal) if !journal.is_empty() => {
                            (journal.len() as u64, journal.to_bytes().len() as u64)
                        }
                        _ => (0, 0),
                    }
                };
                let engine = resident.map(|cached| cached.engine().stats());
                CorpusStats {
                    name: entry.spec.name.clone(),
                    resident: engine.is_some(),
                    hits: entry.hits.load(Ordering::Relaxed),
                    misses: entry.misses.load(Ordering::Relaxed),
                    builds: entry.builds.load(Ordering::Relaxed),
                    evictions: entry.evictions.load(Ordering::Relaxed),
                    snapshot_loads: entry.snapshot_loads.load(Ordering::Relaxed),
                    snapshot_saves: entry.snapshot_saves.load(Ordering::Relaxed),
                    journal_records,
                    journal_bytes,
                    compactions: entry.compactions.load(Ordering::Relaxed),
                    snapshot_load_failures: entry.snapshot_load_failures.load(Ordering::Relaxed),
                    spill_failures: entry.spill_failures.load(Ordering::Relaxed),
                    quarantines: entry.quarantines.load(Ordering::Relaxed),
                    mutations_not_durable: entry.mutations_not_durable.load(Ordering::Relaxed),
                    resident_bytes: engine.as_ref().map_or(0, |e| e.resident_bytes),
                    mapped_bytes: engine.as_ref().map_or(0, |e| e.mapped_bytes),
                    page_ins: engine.as_ref().map_or(0, |e| e.page_ins),
                    engine,
                }
            })
            .collect();
        RegistryStats {
            capacity: self.capacity,
            mode: self.mode,
            snapshot_dir: self
                .snapshot_dir
                .as_ref()
                .map(|dir| dir.display().to_string()),
            resident_budget_bytes: self.resident_budget,
            resident: corpora.iter().filter(|c| c.resident).count(),
            resident_bytes: corpora.iter().map(|c| c.resident_bytes).sum(),
            mapped_bytes: corpora.iter().map(|c| c.mapped_bytes).sum(),
            page_ins: corpora.iter().map(|c| c.page_ins).sum(),
            corpora,
        }
    }
}

// The registry is shared by every server worker thread.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Registry>();
    assert_send_sync::<CachedCorpus>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn test_spec(name: &str) -> CorpusSpec {
        CorpusSpec {
            name: name.to_string(),
            language: Language::Pt,
            config: SyntheticConfig::tiny(),
        }
    }

    fn registry_with(names: &[&str], capacity: usize) -> Registry {
        let registry = Registry::new(capacity, ComputeMode::default());
        registry.register_all(names.iter().map(|n| test_spec(n)));
        registry
    }

    #[test]
    fn unknown_corpus_is_an_error() {
        let registry = registry_with(&["a"], 2);
        assert_eq!(
            registry.engine("nope").unwrap_err(),
            RegistryError::UnknownCorpus("nope".to_string())
        );
        assert!(registry.engine("a").is_ok());
    }

    #[test]
    fn sessions_are_shared_and_counted() {
        let registry = registry_with(&["a"], 2);
        let first = registry.engine("a").unwrap();
        let second = registry.engine("a").unwrap();
        assert!(Arc::ptr_eq(&first, &second));
        let stats = registry.stats();
        assert_eq!(stats.resident, 1);
        let corpus = &stats.corpora[0];
        assert_eq!((corpus.misses, corpus.hits, corpus.builds), (1, 1, 1));
        assert!(corpus.engine.is_some());
    }

    /// The `/stats` payload carries the candidate-frontier gauges: after a
    /// full warm, `pairs_scored + pairs_pruned` covers every ordered pair of
    /// every type, and a filtered-mode registry actually prunes.
    #[test]
    fn stats_expose_candidate_frontier_gauges() {
        let registry = Registry::new(2, ComputeMode::filtered(0.5));
        registry.register_all([test_spec("a")]);
        registry.warm("a").unwrap();
        let stats = registry.stats();
        let engine = stats.corpora[0].engine.as_ref().expect("resident engine");
        assert!(engine.pairs_scored > 0, "warm scored no pairs");
        assert!(engine.pairs_pruned > 0, "filtered mode pruned nothing");
        let json = serde_json::to_string(&stats).expect("stats serialize");
        assert!(json.contains("\"pairs_scored\""));
        assert!(json.contains("\"pairs_pruned\""));
    }

    #[test]
    fn concurrent_cold_requests_build_once() {
        let registry = Arc::new(registry_with(&["a"], 2));
        thread::scope(|scope| {
            for _ in 0..8 {
                let registry = Arc::clone(&registry);
                scope.spawn(move || registry.engine("a").unwrap());
            }
        });
        let stats = registry.stats();
        assert_eq!(stats.corpora[0].builds, 1, "cold stampede not coalesced");
        assert_eq!(stats.corpora[0].misses + stats.corpora[0].hits, 8);
    }

    #[test]
    fn lru_evicts_the_least_recently_used_session() {
        let registry = registry_with(&["a", "b", "c"], 2);
        registry.engine("a").unwrap();
        registry.engine("b").unwrap();
        registry.engine("a").unwrap(); // refresh "a"; "b" is now LRU
        registry.engine("c").unwrap(); // evicts "b"
        let stats = registry.stats();
        let by_name = |n: &str| stats.corpora.iter().find(|c| c.name == n).unwrap().clone();
        assert_eq!(stats.resident, 2);
        assert!(by_name("a").resident);
        assert!(!by_name("b").resident);
        assert!(by_name("c").resident);
        assert_eq!(by_name("b").evictions, 1);
        // Touching "b" again rebuilds it.
        registry.engine("b").unwrap();
        assert_eq!(registry.stats().resident, 2);
        let b = registry
            .stats()
            .corpora
            .iter()
            .find(|c| c.name == "b")
            .unwrap()
            .clone();
        assert_eq!(b.builds, 2);
    }

    #[test]
    fn explicit_evict_and_warm() {
        let registry = registry_with(&["a"], 1);
        assert!(!registry.evict("a").unwrap(), "nothing resident yet");
        let cached = registry.warm("a").unwrap();
        assert_eq!(
            cached.engine().cached_types(),
            cached.engine().dataset().types.len()
        );
        assert!(registry.evict("a").unwrap());
        assert_eq!(registry.stats().resident, 0);
    }

    #[test]
    fn concurrent_builds_converge_to_capacity_not_below() {
        // Concurrent first builds must not mutually evict each other down
        // to zero residents: victim selection is global-oldest, so every
        // enforcer agrees and the count settles at exactly `capacity`.
        let registry = Arc::new(registry_with(&["a", "b", "c", "d"], 2));
        thread::scope(|scope| {
            for name in ["a", "b", "c", "d"] {
                let registry = Arc::clone(&registry);
                scope.spawn(move || registry.engine(name).unwrap());
            }
        });
        let resident = registry.stats().resident;
        assert!(
            (1..=2).contains(&resident),
            "expected 1..=2 residents, got {resident}"
        );
    }

    #[test]
    fn re_registering_a_resident_corpus_clears_its_lru_slot() {
        let registry = registry_with(&["a", "b"], 1);
        registry.engine("a").unwrap();
        // Replacing "a" drops its session; its LRU slot must go with it,
        // otherwise the next capacity check would pick the ghost as its
        // victim forever.
        registry.register(test_spec("a"));
        registry.engine("b").unwrap();
        let stats = registry.stats();
        assert_eq!(stats.resident, 1);
        let b = stats.corpora.iter().find(|c| c.name == "b").unwrap();
        assert!(b.resident);
        // Rebuilding "a" works and evicts "b" (capacity 1).
        registry.engine("a").unwrap();
        assert_eq!(registry.stats().resident, 1);
    }

    #[test]
    fn evicting_a_cold_corpus_is_a_clean_no_op() {
        let registry = registry_with(&["a", "b"], 1);
        registry.engine("a").unwrap();
        assert!(!registry.evict("b").unwrap());
        // Capacity enforcement still progresses normally afterwards.
        registry.engine("b").unwrap();
        let stats = registry.stats();
        assert_eq!(stats.resident, 1);
        assert!(stats.corpora.iter().any(|c| c.name == "b" && c.resident));
    }

    #[test]
    fn response_cache_memoises_per_key() {
        let registry = registry_with(&["a"], 1);
        let cached = registry.corpus("a").unwrap();
        let first = cached.response("k", || Ok("payload".to_string())).unwrap();
        let second = cached.response("k", || panic!("must be memoised")).unwrap();
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(
            *cached.response("other", || Ok("x".to_string())).unwrap(),
            "x"
        );
        // Failures are memoised too (response production is deterministic),
        // and every requester sees the error instead of a stuck slot.
        let err = cached
            .response("bad", || Err("boom".to_string()))
            .unwrap_err();
        assert_eq!(err, "boom");
        let again = cached
            .response("bad", || Ok("never runs".to_string()))
            .unwrap_err();
        assert_eq!(again, "boom");
    }

    /// A unique (per test, per process) snapshot directory.
    fn snapshot_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("wm-registry-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn warm_writes_through_and_a_cold_registry_loads_from_disk() {
        let dir = snapshot_dir("warm");
        let first = registry_with(&["a"], 1).with_snapshot_dir(&dir);
        let warmed = first.warm("a").unwrap();
        let reference = warmed.engine().align("film").unwrap().cross_pairs();
        let stats = first.stats();
        assert_eq!(stats.snapshot_dir.as_deref(), Some(dir.to_str().unwrap()));
        assert_eq!(stats.corpora[0].snapshot_saves, 1);
        assert_eq!(stats.corpora[0].snapshot_loads, 0);

        // A brand-new registry (a restarted process) restores the session
        // from disk: zero artifact builds, identical alignments.
        let second = registry_with(&["a"], 1).with_snapshot_dir(&dir);
        let restored = second.corpus("a").unwrap();
        let engine_stats = restored.engine().stats();
        assert_eq!(
            restored.engine().cached_types(),
            restored.engine().dataset().types.len()
        );
        assert_eq!(
            engine_stats.artifact_builds, 0,
            "warm start rebuilt artifacts"
        );
        assert_eq!(
            restored.engine().align("film").unwrap().cross_pairs(),
            reference
        );
        let stats = second.stats();
        assert_eq!(stats.corpora[0].snapshot_loads, 1);
        assert_eq!(stats.corpora[0].builds, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn evictions_spill_and_the_next_request_restores_from_disk() {
        let dir = snapshot_dir("evict");
        let registry = registry_with(&["a"], 1).with_snapshot_dir(&dir);
        // Build and cache one type's artifacts, then evict.
        registry
            .corpus("a")
            .unwrap()
            .engine()
            .align("film")
            .unwrap();
        assert!(registry.evict("a").unwrap());
        let stats = registry.stats();
        assert_eq!(stats.corpora[0].snapshot_saves, 1);
        // The rebuilt residency restores the spilled artifact set.
        let restored = registry.corpus("a").unwrap();
        assert_eq!(restored.engine().cached_types(), 1);
        assert_eq!(restored.engine().stats().artifact_builds, 0);
        assert_eq!(registry.stats().corpora[0].snapshot_loads, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_or_foreign_snapshots_fall_back_to_building() {
        let dir = snapshot_dir("corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        // Garbage bytes under the expected file name.
        std::fs::write(dir.join("a.snap"), b"definitely not a snapshot").unwrap();
        let registry = registry_with(&["a"], 1).with_snapshot_dir(&dir);
        let cached = registry.corpus("a").unwrap();
        assert!(!cached
            .engine()
            .align("film")
            .unwrap()
            .cross_pairs()
            .is_empty());
        let stats = registry.stats();
        assert_eq!(stats.corpora[0].snapshot_loads, 0);
        assert_eq!(stats.corpora[0].builds, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corpora_whose_names_sanitise_alike_get_distinct_snapshot_files() {
        let dir = snapshot_dir("collide");
        // "a b" and "a_b" both sanitise to the stem "a_b"; the hash suffix
        // keeps their snapshot files apart, so neither clobbers the other.
        let registry = registry_with(&["a b", "a_b"], 2).with_snapshot_dir(&dir);
        registry.corpus("a b").unwrap();
        registry.corpus("a_b").unwrap();
        assert_eq!(registry.persist_resident(), 2);
        let files: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(files.len(), 2, "snapshot files collided: {files:?}");
        // The clean name keeps its plain stem; the unsafe one is suffixed.
        assert!(files.contains(&"a_b.snap".to_string()), "{files:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn persist_resident_writes_every_resident_session() {
        let dir = snapshot_dir("persist");
        let registry = registry_with(&["a", "b"], 2).with_snapshot_dir(&dir);
        registry.corpus("a").unwrap();
        registry.corpus("b").unwrap();
        assert_eq!(registry.persist_resident(), 2);
        assert!(dir.join("a.snap").is_file());
        assert!(dir.join("b.snap").is_file());
        // Without a snapshot dir the hook is a no-op.
        let plain = registry_with(&["a"], 1);
        plain.corpus("a").unwrap();
        assert_eq!(plain.persist_resident(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dictionary_is_built_once_per_residency() {
        let registry = registry_with(&["a"], 1);
        let cached = registry.corpus("a").unwrap();
        let dict = cached.dictionary();
        assert!(!dict.is_empty());
        // Second call returns the same allocation.
        assert!(std::ptr::eq(dict, cached.dictionary()));
    }

    /// An upsert of one probe article whose attribute value varies by
    /// `step`, so every delta genuinely moves the corpus fingerprint.
    fn probe_delta(step: usize) -> CorpusDelta {
        let mut infobox = wiki_corpus::Infobox::new("Infobox Filme");
        infobox.push(wiki_corpus::AttributeValue::text(
            "nota",
            format!("edição {step}"),
        ));
        CorpusDelta::upsert(wiki_corpus::Article::new(
            "Sonda Registro",
            Language::Pt,
            "Filme",
            infobox,
        ))
    }

    #[test]
    fn mutations_are_journaled_and_survive_eviction() {
        let registry = registry_with(&["a"], 1);
        let report = registry.mutate("a", &probe_delta(0)).unwrap();
        assert_eq!(report.inserted, 1);
        let second = registry.mutate("a", &probe_delta(1)).unwrap();
        assert_eq!(second.updated, 1);
        assert_eq!(second.fingerprint_before, report.fingerprint);

        let stats = registry.stats();
        assert_eq!(stats.corpora[0].journal_records, 2);
        assert!(stats.corpora[0].journal_bytes > 0);
        assert_eq!(stats.corpora[0].compactions, 0);

        // Even without a disk tier, the in-memory journal outlives the
        // session: a rebuild is pristine + replay, not a reset.
        assert!(registry.evict("a").unwrap());
        let rebuilt = registry.corpus("a").unwrap();
        assert_eq!(rebuilt.engine().fingerprint(), second.fingerprint);
        let dataset = rebuilt.engine().dataset();
        let probe = dataset
            .corpus
            .articles_in(&Language::Pt)
            .find(|a| a.title == "Sonda Registro")
            .expect("probe article survived the eviction");
        assert_eq!(probe.infobox.attributes[0].value, "edição 1");
    }

    #[test]
    fn no_op_deltas_are_not_journaled() {
        let registry = registry_with(&["a"], 1);
        let delta = CorpusDelta::remove(Language::Pt, "No Such Article");
        let report = registry.mutate("a", &delta).unwrap();
        assert_eq!(report.removed, 0);
        assert_eq!(report.fingerprint, report.fingerprint_before);
        assert_eq!(registry.stats().corpora[0].journal_records, 0);
    }

    #[test]
    fn mutation_invalidates_the_residency_response_cache() {
        let registry = registry_with(&["a"], 1);
        let before = registry.corpus("a").unwrap();
        let stale = before.response("k", || Ok("stale".to_string())).unwrap();
        registry.mutate("a", &probe_delta(0)).unwrap();
        let after = registry.corpus("a").unwrap();
        // Same engine session (patched in place), fresh response cache.
        assert!(Arc::ptr_eq(before.engine(), after.engine()));
        let fresh = after.response("k", || Ok("fresh".to_string())).unwrap();
        assert_eq!((stale.as_str(), fresh.as_str()), ("stale", "fresh"));
    }

    #[test]
    fn mutations_write_ahead_and_a_restart_replays_over_the_snapshot() {
        let dir = snapshot_dir("journal");
        let report = {
            let registry = registry_with(&["a"], 1).with_snapshot_dir(&dir);
            // Snapshot lands at the pristine base; the two mutations after
            // it live only in the write-ahead journal.
            registry.warm("a").unwrap();
            registry.mutate("a", &probe_delta(0)).unwrap();
            registry.mutate("a", &probe_delta(1)).unwrap()
        };
        assert!(dir.join("a.journal").is_file());

        // A restarted process positions the snapshot at the journal's base
        // and replays the suffix through the incremental patcher: no
        // artifact rebuilds, mutations intact.
        let second = registry_with(&["a"], 1).with_snapshot_dir(&dir);
        let restored = second.corpus("a").unwrap();
        assert_eq!(restored.engine().fingerprint(), report.fingerprint);
        let engine_stats = restored.engine().stats();
        assert_eq!(engine_stats.artifact_builds, 0, "replay rebuilt artifacts");
        assert_eq!(engine_stats.deltas_applied, 2);
        let stats = second.stats();
        assert_eq!(stats.corpora[0].snapshot_loads, 1);
        assert_eq!(stats.corpora[0].journal_records, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_journals_are_ignored_and_the_pristine_corpus_served() {
        let dir = snapshot_dir("badjournal");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("a.journal"), b"not a journal at all").unwrap();
        let registry = registry_with(&["a"], 1).with_snapshot_dir(&dir);
        let cached = registry.corpus("a").unwrap();
        assert!(!cached
            .engine()
            .dataset()
            .corpus
            .articles_in(&Language::Pt)
            .any(|a| a.title == "Sonda Registro"));
        assert_eq!(registry.stats().corpora[0].journal_records, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reaching_the_threshold_compacts_the_journal() {
        let dir = snapshot_dir("compact");
        let tip = {
            let registry = registry_with(&["a"], 1).with_snapshot_dir(&dir);
            let mut tip = 0;
            for step in 0..COMPACTION_THRESHOLD {
                tip = registry
                    .mutate("a", &probe_delta(step))
                    .unwrap()
                    .fingerprint;
            }
            let stats = registry.stats();
            assert_eq!(stats.corpora[0].compactions, 1);
            // The whole chain composed into one record, re-rooted at the
            // pristine base.
            assert_eq!(stats.corpora[0].journal_records, 1);
            // Compaction re-snapshots at the tip.
            assert_eq!(stats.corpora[0].snapshot_saves, 1);
            tip
        };

        // The compacted journal + tip snapshot warm-start exactly.
        let second = registry_with(&["a"], 1).with_snapshot_dir(&dir);
        let restored = second.corpus("a").unwrap();
        assert_eq!(restored.engine().fingerprint(), tip);
        assert_eq!(restored.engine().stats().deltas_applied, 0);
        assert_eq!(second.stats().corpora[0].snapshot_loads, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_snapshot_behind_the_journal_is_positioned_not_discarded() {
        let dir = snapshot_dir("behind");
        let report = {
            let registry = registry_with(&["a"], 1).with_snapshot_dir(&dir);
            registry.mutate("a", &probe_delta(0)).unwrap();
            // Snapshot at tip-as-of-now (one record in)...
            assert_eq!(registry.persist_resident(), 1);
            // ...then the corpus moves past it.
            registry.mutate("a", &probe_delta(1)).unwrap()
        };
        let second = registry_with(&["a"], 1).with_snapshot_dir(&dir);
        let restored = second.corpus("a").unwrap();
        // The snapshot sat mid-chain: restored there, one record replayed.
        assert_eq!(restored.engine().fingerprint(), report.fingerprint);
        assert_eq!(restored.engine().stats().deltas_applied, 1);
        assert_eq!(second.stats().corpora[0].snapshot_loads, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn orphaned_tmp_files_are_swept_at_startup() {
        let dir = snapshot_dir("sweep");
        std::fs::create_dir_all(&dir).unwrap();
        // Orphans in the atomic-save naming scheme, plus files that must
        // survive: a real snapshot, a journal, and a dot-file that is not
        // a save temp.
        std::fs::write(dir.join(".a.snap.tmp-12345-0"), b"torn").unwrap();
        std::fs::write(dir.join(".b.journal.tmp-9-17"), b"torn").unwrap();
        std::fs::write(dir.join("a.snap"), b"keep").unwrap();
        std::fs::write(dir.join("a.journal"), b"keep").unwrap();
        std::fs::write(dir.join(".hidden"), b"keep").unwrap();
        let _registry = registry_with(&["a"], 1).with_snapshot_dir(&dir);
        let mut files: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        files.sort();
        assert_eq!(files, [".hidden", "a.journal", "a.snap"]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_budgeted_registry_maps_snapshots_and_reports_residency() {
        let dir = snapshot_dir("mapped");
        // Warm under a generous budget: the write-through spill lands in
        // the directly-addressable format.
        let first = registry_with(&["a"], 1)
            .with_snapshot_dir(&dir)
            .with_resident_budget_mb(1024);
        let warmed = first.warm("a").unwrap();
        let reference = warmed.engine().align("film").unwrap().cross_pairs();
        drop(warmed);
        let (version, _) = EngineSnapshot::peek_header(&dir.join("a.snap")).unwrap();
        assert_eq!(version, DIRECT_FORMAT_VERSION);

        // A restarted budgeted registry memory-maps the file: zero artifact
        // builds, mapped bytes reported, page-ins grow as channels are
        // touched — and the alignments are identical.
        let second = registry_with(&["a"], 1)
            .with_snapshot_dir(&dir)
            .with_resident_budget_mb(1024);
        let restored = second.corpus("a").unwrap();
        assert_eq!(restored.engine().stats().artifact_builds, 0);
        let stats = second.stats();
        assert_eq!(stats.resident_budget_bytes, Some(1024 * 1024 * 1024));
        assert_eq!(stats.corpora[0].snapshot_loads, 1);
        assert!(
            stats.corpora[0].mapped_bytes > 0,
            "budgeted load did not map: {stats:?}"
        );
        let pages_before = stats.corpora[0].page_ins;
        assert_eq!(
            restored.engine().align("film").unwrap().cross_pairs(),
            reference
        );
        let after = second.stats();
        assert!(
            after.corpora[0].page_ins > pages_before,
            "align paged nothing in"
        );
        assert!(after.corpora[0].resident_bytes > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn the_resident_budget_evicts_down_to_a_floor_of_one() {
        let dir = snapshot_dir("budget");
        // Capacity would allow 4 residents, but a zero-MB budget forces
        // every access to evict back down to the floor of one.
        let registry = registry_with(&["a", "b", "c"], 4)
            .with_snapshot_dir(&dir)
            .with_resident_budget_mb(0);
        registry.corpus("a").unwrap();
        registry
            .corpus("a")
            .unwrap()
            .engine()
            .align("film")
            .unwrap();
        assert_eq!(registry.stats().resident, 1);
        registry.corpus("b").unwrap();
        let stats = registry.stats();
        assert_eq!(stats.resident, 1, "budget kept two residents: {stats:?}");
        let by_name = |n: &str| stats.corpora.iter().find(|c| c.name == n).unwrap().clone();
        assert!(!by_name("a").resident);
        assert!(by_name("b").resident);
        assert_eq!(by_name("a").evictions, 1);
        // The evicted corpus comes back from its mapped spill, not a
        // rebuild. The background spill races this reload, so wait for
        // the snapshot file to appear before asking for the corpus again.
        let path = dir.join("a.snap");
        for _ in 0..200 {
            if path.is_file() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        assert!(path.is_file(), "eviction never spilled a.snap");
        let restored = registry.corpus("a").unwrap();
        assert_eq!(restored.engine().stats().artifact_builds, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scale_tier_catalog_covers_both_pairs() {
        let specs = CorpusSpec::scale_tiers(&["tiny", "medium"]);
        let names: Vec<&str> = specs.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["pt-tiny", "pt-medium", "vi-tiny", "vi-medium"]);
        assert!(CorpusSpec::tier(Language::Pt, "galactic").is_none());
    }

    /// Every [`ScaleTier`] — including `xlarge` — resolves to a registrable
    /// spec whose config matches the corpus crate's catalog.
    #[test]
    fn every_scale_tier_is_registrable() {
        for tier in ScaleTier::ALL {
            let spec = CorpusSpec::tier(Language::Pt, tier.name())
                .unwrap_or_else(|| panic!("tier {tier} not registrable"));
            assert_eq!(spec.name, format!("pt-{tier}"));
            // SyntheticConfig is a plain field bag without PartialEq; its
            // Debug form is a faithful identity for this check.
            assert_eq!(format!("{:?}", spec.config), format!("{:?}", tier.config()));
        }
    }
}
