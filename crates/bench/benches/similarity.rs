//! Benchmarks for schema construction and pairwise similarity computation.

use criterion::{criterion_group, criterion_main, Criterion};
use wiki_corpus::{Dataset, SyntheticConfig};
use wiki_linalg::LsiConfig;
use wiki_translate::TitleDictionary;
use wikimatch::{DualSchema, SimilarityTable};

fn bench_schema_and_similarity(c: &mut Criterion) {
    let dataset = Dataset::pt_en(&SyntheticConfig::tiny());
    let pairing = dataset.type_pairing("film").unwrap().clone();
    let dictionary =
        TitleDictionary::from_corpus(&dataset.corpus, dataset.other_language(), dataset.english());

    c.bench_function("title_dictionary_build", |b| {
        b.iter(|| {
            TitleDictionary::from_corpus(
                std::hint::black_box(&dataset.corpus),
                dataset.other_language(),
                dataset.english(),
            )
        })
    });

    c.bench_function("dual_schema_build_film", |b| {
        b.iter(|| {
            DualSchema::build(
                std::hint::black_box(&dataset.corpus),
                dataset.other_language(),
                &pairing.label_other,
                &pairing.label_en,
                &dictionary,
            )
        })
    });

    let schema = DualSchema::build(
        &dataset.corpus,
        dataset.other_language(),
        &pairing.label_other,
        &pairing.label_en,
        &dictionary,
    );
    c.bench_function("similarity_table_film", |b| {
        b.iter(|| SimilarityTable::compute(std::hint::black_box(&schema), LsiConfig::default()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3));
    targets = bench_schema_and_similarity
}
criterion_main!(benches);
