//! String-keyed versus interned similarity kernels across the synthetic
//! corpus scale tiers.
//!
//! This is the benchmark behind the vocabulary-interning tentpole. For each
//! tier it builds the film dual-language schema (whose vectors share the
//! type's [`wiki_text::TermArena`]) and times:
//!
//! * `table/<tier>` — the full pruned [`SimilarityTable`] build on the
//!   interned representation (the end-to-end number; the PR 2 string-keyed
//!   baseline at `medium` was 53.8 ms single-core);
//! * `cosines/interned/<tier>` — the candidate-pair `vsim`+`lsim` sweep on
//!   shared-arena vectors, where every merge-walk step compares two `u32`s;
//! * `cosines/string/<tier>` — the same sweep after re-hosting every vector
//!   on a private per-vector arena, which forces the resolved-string
//!   comparison walk — exactly the work the string-keyed representation
//!   paid per step. Both sweeps are bit-identical in their results (pinned
//!   by `tests/similarity_equivalence.rs`); the gap is pure comparison
//!   cost.
//!
//! The `large` tier is skipped by default to keep `cargo bench` turnaround
//! reasonable; run the `interning` *binary* for the recorded cross-tier
//! numbers (`BENCH_5.json`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wiki_bench::kernels::{cosine_sweep, SweepInput};
use wiki_corpus::synthetic::SyntheticGenerator;
use wiki_corpus::{Language, SyntheticConfig};
use wiki_linalg::LsiConfig;
use wiki_translate::TitleDictionary;
use wikimatch::schema::CandidateIndex;
use wikimatch::{ComputeMode, DualSchema, SimilarityTable};

/// Builds the film schema of the Pt-En pair for one tier.
fn film_schema(config: &SyntheticConfig) -> DualSchema {
    let generator = SyntheticGenerator::new(*config);
    let (corpus, _) = generator.generate_pair(Language::Pt);
    let dictionary = TitleDictionary::from_corpus(&corpus, &Language::Pt, &Language::En);
    DualSchema::build(&corpus, &Language::Pt, "Filme", "Film", &dictionary)
}

fn bench_interning(c: &mut Criterion) {
    let tiers: [(&str, SyntheticConfig); 3] = [
        ("tiny", SyntheticConfig::tiny()),
        ("small", SyntheticConfig::small()),
        ("medium", SyntheticConfig::medium()),
    ];

    let mut group = c.benchmark_group("interning");
    for (tier, config) in tiers {
        let schema = film_schema(&config);
        let index = CandidateIndex::build(&schema);
        let interned = SweepInput::interned(&schema);
        let detached = SweepInput::detached(&schema);
        // Both walks are the same function over the same candidates.
        assert_eq!(
            cosine_sweep(&index, &interned).to_bits(),
            cosine_sweep(&index, &detached).to_bits()
        );
        eprintln!(
            "tier {tier}: {} attribute groups, {} interned terms",
            schema.len(),
            schema.arena().len()
        );
        group.bench_with_input(BenchmarkId::new("table", tier), &schema, |b, schema| {
            b.iter(|| {
                SimilarityTable::compute_with(
                    std::hint::black_box(schema),
                    LsiConfig::default(),
                    ComputeMode::Pruned,
                )
            })
        });
        group.bench_with_input(
            BenchmarkId::new("cosines/interned", tier),
            &interned,
            |b, input| b.iter(|| cosine_sweep(std::hint::black_box(&index), input)),
        );
        group.bench_with_input(
            BenchmarkId::new("cosines/string", tier),
            &detached,
            |b, input| b.iter(|| cosine_sweep(std::hint::black_box(&index), input)),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_interning
}
criterion_main!(benches);
