//! Benchmarks for the `MatchEngine` session API: the amortization win of
//! computing the title dictionary and per-type artifacts once per dataset.
//!
//! Three variants of "align every type of the Pt-En dataset":
//!
//! * `legacy_rebuild_per_type` — the pre-0.2 code path: the bilingual
//!   title dictionary is rebuilt from the whole corpus for **every**
//!   entity type before the schema and similarity table are computed.
//! * `engine_cold_session` — build a [`MatchEngine`] (one dictionary) and
//!   run `align_all` with empty caches.
//! * `engine_warm_session` — `align_all` on a session whose per-type
//!   caches are already populated: only the alignment algorithm runs.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use wiki_corpus::{Dataset, SyntheticConfig};
use wikimatch::{AttributeAlignment, MatchEngine, WikiMatch, WikiMatchConfig};

#[allow(deprecated)] // the deprecated shim IS the legacy per-type code path
fn bench_engine_amortization(c: &mut Criterion) {
    // One Arc built up front: per-iteration Arc clones are free, so the
    // engine variants measure session work, not corpus copying.
    let dataset: Arc<Dataset> = Arc::new(Dataset::pt_en(&SyntheticConfig::tiny()));
    let config = WikiMatchConfig::default();
    let matcher = WikiMatch::new(config);

    c.bench_function("align_all/legacy_rebuild_per_type", |b| {
        b.iter(|| {
            let dataset = std::hint::black_box(&dataset);
            let mut alignments = 0usize;
            for pairing in &dataset.types {
                // prepare_type rebuilds the title dictionary per type —
                // exactly the pre-0.2 align_all body.
                let (schema, table) = matcher.prepare_type(dataset, pairing);
                let matches = AttributeAlignment::new(&schema, &table, config).run();
                alignments += matches.len();
            }
            std::hint::black_box(alignments)
        })
    });

    c.bench_function("align_all/engine_cold_session", |b| {
        b.iter(|| {
            let engine = MatchEngine::builder(Arc::clone(std::hint::black_box(&dataset))).build();
            std::hint::black_box(engine.align_all().len())
        })
    });

    let warm = MatchEngine::builder(Arc::clone(&dataset)).eager().build();
    c.bench_function("align_all/engine_warm_session", |b| {
        b.iter(|| std::hint::black_box(&warm).align_all().len())
    });

    c.bench_function("engine_build/title_dictionary", |b| {
        b.iter(|| MatchEngine::builder(Arc::clone(std::hint::black_box(&dataset))).build())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3));
    targets = bench_engine_amortization
}
criterion_main!(benches);
