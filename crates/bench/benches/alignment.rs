//! End-to-end benchmarks: aligning one entity type and the full dataset
//! through a `MatchEngine` session, with WikiMatch and the baselines as
//! interchangeable `SchemaMatcher` plugins.

use criterion::{criterion_group, criterion_main, Criterion};
use wiki_baselines::{BoumaMatcher, ComaMatcher, LsiTopKMatcher};
use wiki_corpus::{Dataset, SyntheticConfig};
use wikimatch::{AttributeAlignment, MatchEngine, SchemaMatcher, WikiMatch, WikiMatchConfig};

fn bench_alignment(c: &mut Criterion) {
    let engine = MatchEngine::builder(Dataset::pt_en(&SyntheticConfig::tiny())).build();
    let prepared = engine.prepared("film").expect("film type exists");

    c.bench_function("attribute_alignment_film", |b| {
        b.iter(|| {
            AttributeAlignment::new(
                std::hint::black_box(&prepared.schema),
                std::hint::black_box(&prepared.table),
                WikiMatchConfig::default(),
            )
            .run()
        })
    });

    c.bench_function("engine_align_film_warm", |b| {
        b.iter(|| std::hint::black_box(&engine).align("film"))
    });

    let matchers: Vec<(&str, Box<dyn SchemaMatcher>)> = vec![
        ("wikimatch", Box::new(WikiMatch::default())),
        ("bouma", Box::new(BoumaMatcher::default())),
        ("coma_ng_id", Box::new(ComaMatcher::default())),
        ("lsi_top1", Box::new(LsiTopKMatcher::new(1))),
    ];
    for (name, matcher) in &matchers {
        c.bench_function(&format!("matcher_{name}_film"), |b| {
            b.iter(|| {
                matcher.align(
                    std::hint::black_box(&prepared.schema),
                    std::hint::black_box(&prepared.table),
                )
            })
        });
    }

    let vn = MatchEngine::builder(Dataset::vn_en(&SyntheticConfig::tiny()))
        .eager()
        .build();
    c.bench_function("engine_align_all_vn_warm", |b| {
        b.iter(|| std::hint::black_box(&vn).align_all())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3));
    targets = bench_alignment
}
criterion_main!(benches);
