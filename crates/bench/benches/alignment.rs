//! End-to-end benchmarks: aligning one entity type and the full dataset with
//! WikiMatch and the baselines.

use criterion::{criterion_group, criterion_main, Criterion};
use wiki_baselines::{BoumaMatcher, ComaConfiguration, ComaMatcher, LsiTopKMatcher, Matcher};
use wiki_corpus::{Dataset, SyntheticConfig};
use wikimatch::{AttributeAlignment, WikiMatch, WikiMatchConfig};

fn bench_alignment(c: &mut Criterion) {
    let dataset = Dataset::pt_en(&SyntheticConfig::tiny());
    let matcher = WikiMatch::new(WikiMatchConfig::default());
    let pairing = dataset.type_pairing("film").unwrap().clone();
    let (schema, table) = matcher.prepare_type(&dataset, &pairing);

    c.bench_function("attribute_alignment_film", |b| {
        b.iter(|| {
            AttributeAlignment::new(
                std::hint::black_box(&schema),
                std::hint::black_box(&table),
                WikiMatchConfig::default(),
            )
            .run()
        })
    });

    c.bench_function("wikimatch_align_type_film", |b| {
        b.iter(|| matcher.align_type(std::hint::black_box(&dataset), &pairing))
    });

    let baselines: Vec<(&str, Box<dyn Matcher>)> = vec![
        ("bouma", Box::new(BoumaMatcher::default())),
        (
            "coma_ng_id",
            Box::new(ComaMatcher::new(
                ComaConfiguration::NameTranslatedInstanceTranslated,
            )),
        ),
        ("lsi_top1", Box::new(LsiTopKMatcher::new(1))),
    ];
    for (name, baseline) in &baselines {
        c.bench_function(&format!("baseline_{name}_film"), |b| {
            b.iter(|| baseline.align(std::hint::black_box(&schema), std::hint::black_box(&table)))
        });
    }

    let vn = Dataset::vn_en(&SyntheticConfig::tiny());
    c.bench_function("wikimatch_align_all_vn", |b| {
        b.iter(|| matcher.align_all(std::hint::black_box(&vn)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3));
    targets = bench_alignment
}
criterion_main!(benches);
