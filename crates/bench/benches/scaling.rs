//! Dense-vs-pruned similarity-table build time across the synthetic corpus
//! scale tiers.
//!
//! This is the benchmark behind the sparse-pipeline tentpole: it builds the
//! film dual-language schema at each tier (`tiny` → `small` → `medium` →
//! `large`, up to ~100× the attribute count of `tiny`) and times
//! [`SimilarityTable`] construction with the dense all-pairs reference pass
//! versus the candidate-pruned parallel pass. Both passes produce
//! bit-identical tables (pinned by tests), so any gap is pure traversal
//! cost.
//!
//! What to expect: the pruned pass wins at every tier. On a single core
//! the margin (~25–50%) comes from skipping the value/link cosines of
//! non-candidate pairs and from the bit-packed co-occurrence test; on
//! multi-core hardware the pruned pass additionally spreads rows across
//! threads (the dense reference is deliberately single-threaded), so the
//! gap widens with the core count. The remaining shared floor is the
//! all-pairs LSI scoring, which cannot be pruned without changing results.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wiki_corpus::synthetic::SyntheticGenerator;
use wiki_corpus::{Language, SyntheticConfig};
use wiki_linalg::LsiConfig;
use wiki_translate::TitleDictionary;
use wikimatch::{ComputeMode, DualSchema, SimilarityTable};

/// Builds the film schema of the Pt-En pair for one tier.
fn film_schema(config: &SyntheticConfig) -> DualSchema {
    let generator = SyntheticGenerator::new(*config);
    let (corpus, _) = generator.generate_pair(Language::Pt);
    let dictionary = TitleDictionary::from_corpus(&corpus, &Language::Pt, &Language::En);
    DualSchema::build(&corpus, &Language::Pt, "Filme", "Film", &dictionary)
}

fn bench_scaling(c: &mut Criterion) {
    let tiers: [(&str, SyntheticConfig); 4] = [
        ("tiny", SyntheticConfig::tiny()),
        ("small", SyntheticConfig::small()),
        ("medium", SyntheticConfig::medium()),
        ("large", SyntheticConfig::large()),
    ];

    let mut group = c.benchmark_group("similarity_scaling");
    for (tier, config) in tiers {
        let schema = film_schema(&config);
        eprintln!(
            "tier {tier}: {} attribute groups, {} dual infoboxes",
            schema.len(),
            schema.dual_count
        );
        group.bench_with_input(BenchmarkId::new("pruned", tier), &schema, |b, schema| {
            b.iter(|| {
                SimilarityTable::compute_with(
                    std::hint::black_box(schema),
                    LsiConfig::default(),
                    ComputeMode::Pruned,
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("dense", tier), &schema, |b, schema| {
            b.iter(|| {
                SimilarityTable::compute_with(
                    std::hint::black_box(schema),
                    LsiConfig::default(),
                    ComputeMode::Dense,
                )
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_scaling
}
criterion_main!(benches);
