//! Microbenchmarks for the SVD / LSI numerical core.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wiki_linalg::{svd::jacobi_svd, LsiConfig, LsiModel, Matrix};

/// Builds a deterministic pseudo-random binary occurrence matrix.
fn occurrence_matrix(rows: usize, cols: usize) -> Matrix {
    let mut m = Matrix::zeros(rows, cols);
    let mut state = 0x2545F4914F6CDD1Du64;
    for r in 0..rows {
        for c in 0..cols {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            if state % 10 < 4 {
                m.set(r, c, 1.0);
            }
        }
    }
    m
}

fn bench_jacobi_svd(c: &mut Criterion) {
    let mut group = c.benchmark_group("jacobi_svd");
    for (rows, cols) in [(20, 50), (40, 90), (60, 200)] {
        let m = occurrence_matrix(rows, cols);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{rows}x{cols}")),
            &m,
            |b, m| b.iter(|| jacobi_svd(std::hint::black_box(m))),
        );
    }
    group.finish();
}

fn bench_lsi_fit_and_query(c: &mut Criterion) {
    let m = occurrence_matrix(40, 90);
    c.bench_function("lsi_fit_40x90", |b| {
        b.iter(|| LsiModel::fit(std::hint::black_box(&m), LsiConfig::default()))
    });
    let model = LsiModel::fit(&m, LsiConfig::default());
    c.bench_function("lsi_similarity_all_pairs_40", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for i in 0..model.len() {
                for j in (i + 1)..model.len() {
                    total += model.similarity(i, j);
                }
            }
            std::hint::black_box(total)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_jacobi_svd, bench_lsi_fit_and_query
}
criterion_main!(benches);
