//! Benchmarks for corpus generation and wikitext parsing.

use criterion::{criterion_group, criterion_main, Criterion};
use wiki_corpus::wikitext::{parse_infobox, render_infobox};
use wiki_corpus::{Dataset, Language, SyntheticConfig};

fn bench_generation(c: &mut Criterion) {
    c.bench_function("generate_pt_en_tiny", |b| {
        b.iter(|| Dataset::pt_en(std::hint::black_box(&SyntheticConfig::tiny())))
    });
    c.bench_function("generate_vn_en_tiny", |b| {
        b.iter(|| Dataset::vn_en(std::hint::black_box(&SyntheticConfig::tiny())))
    });
}

fn bench_wikitext(c: &mut Criterion) {
    let dataset = Dataset::pt_en(&SyntheticConfig::tiny());
    let sources: Vec<String> = dataset
        .corpus
        .articles_in(&Language::En)
        .take(200)
        .map(|a| render_infobox(&a.infobox))
        .collect();
    c.bench_function("parse_infobox_200", |b| {
        b.iter(|| {
            let mut attributes = 0usize;
            for source in &sources {
                if let Some(infobox) = parse_infobox(std::hint::black_box(source)) {
                    attributes += infobox.len();
                }
            }
            std::hint::black_box(attributes)
        })
    });
    c.bench_function("entity_clusters", |b| {
        b.iter(|| std::hint::black_box(&dataset.corpus).entity_clusters())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3));
    targets = bench_generation, bench_wikitext
}
criterion_main!(benches);
