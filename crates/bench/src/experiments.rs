//! The reproduction experiments, one function per table/figure of the paper.
//!
//! All experiments run over the [`StandardDatasets`]: a Portuguese-English
//! corpus with 14 entity types and a Vietnamese-English corpus with 4 types,
//! generated with the default [`SyntheticConfig`] (the laptop-scale
//! substitute for the paper's Wikipedia dump — see `DESIGN.md`). The
//! expensive part of every experiment — building the dual-language schema
//! and its similarity table per entity type — is computed once per type and
//! shared by WikiMatch, its ablations and every baseline, exactly as the
//! paper feeds the same grouped attribute input to every approach.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use wiki_baselines::{
    ranked_candidates, BoumaMatcher, ComaConfiguration, ComaMatcher, CorrelationMeasure,
    LsiTopKMatcher, Matcher,
};
use wiki_corpus::{Dataset, Language, SyntheticConfig};
use wiki_eval::{
    mean_average_precision, type_overlap, weighted_scores, MacroAggregator, Scores,
};
use wiki_query::{run_case_study, CaseStudyCurve};
use wikimatch::{AttributeAlignment, DualSchema, SimilarityTable, WikiMatch, WikiMatchConfig};

/// The two evaluation datasets used throughout the paper.
#[derive(Debug, Clone)]
pub struct StandardDatasets {
    /// Portuguese-English (14 entity types).
    pub pt: Dataset,
    /// Vietnamese-English (4 entity types).
    pub vn: Dataset,
}

impl StandardDatasets {
    /// Generates both datasets with the given configuration.
    pub fn generate(config: &SyntheticConfig) -> Self {
        Self {
            pt: Dataset::pt_en(config),
            vn: Dataset::vn_en(config),
        }
    }

    /// The default experiment-scale datasets.
    pub fn standard() -> Self {
        Self::generate(&SyntheticConfig::default())
    }

    /// Reduced datasets for quick runs and tests.
    pub fn quick() -> Self {
        Self::generate(&SyntheticConfig::tiny())
    }

    /// Both datasets with their display names.
    pub fn pairs(&self) -> [(&'static str, &Dataset); 2] {
        [("Portuguese-English", &self.pt), ("Vietnamese-English", &self.vn)]
    }
}

/// Shared per-type preparation (schema + similarity table) reused by every
/// approach.
pub struct ExperimentContext {
    /// The datasets under evaluation.
    pub datasets: StandardDatasets,
    matcher: WikiMatch,
    prepared: HashMap<(String, String), (DualSchema, SimilarityTable)>,
}

/// Scores of every approach for one entity type (a row of Table 2).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ApproachRow {
    /// Entity-type identifier.
    pub type_id: String,
    /// WikiMatch scores.
    pub wikimatch: Scores,
    /// Bouma scores.
    pub bouma: Scores,
    /// Best COMA++ configuration scores.
    pub coma: Scores,
    /// LSI top-1 scores.
    pub lsi: Scores,
}

/// Table 2 for one language pair.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2 {
    /// Language-pair name.
    pub pair: String,
    /// Per-type rows.
    pub rows: Vec<ApproachRow>,
    /// Average row.
    pub average: ApproachRow,
}

/// One ablation configuration's average scores (a row of Table 3).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AblationRow {
    /// Configuration label.
    pub configuration: String,
    /// Average scores over all types, Pt-En.
    pub pt: Scores,
    /// Average scores over all types, Vn-En.
    pub vn: Scores,
}

/// Threshold-sensitivity curves (Figure 5).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThresholdCurve {
    /// Which threshold is swept (`"Tsim"` or `"TLSI"`).
    pub threshold: String,
    /// Language pair.
    pub pair: String,
    /// `(threshold value, average F-measure)` points.
    pub points: Vec<(f64, f64)>,
}

/// Top-k LSI results (Figure 6).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TopKPoint {
    /// Language pair.
    pub pair: String,
    /// k.
    pub k: usize,
    /// Average scores over all types.
    pub scores: Scores,
}

/// COMA++ configuration results (Figure 7).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ComaPoint {
    /// Language pair.
    pub pair: String,
    /// Configuration label (N, I, NI, ...).
    pub configuration: String,
    /// Average scores over all types.
    pub scores: Scores,
}

/// MAP of the candidate orderings (Table 7).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MapRow {
    /// Language pair.
    pub pair: String,
    /// MAP per measure, in the order LSI, X1, X2, X3, Random.
    pub map: Vec<(String, f64)>,
}

impl ExperimentContext {
    /// Creates the context over the given datasets.
    pub fn new(datasets: StandardDatasets) -> Self {
        Self {
            datasets,
            matcher: WikiMatch::new(WikiMatchConfig::default()),
            prepared: HashMap::new(),
        }
    }

    /// Creates the context over the standard experiment datasets.
    pub fn standard() -> Self {
        Self::new(StandardDatasets::standard())
    }

    /// Creates a reduced context for quick runs and unit tests.
    pub fn quick() -> Self {
        Self::new(StandardDatasets::quick())
    }

    fn dataset(&self, pair: &str) -> &Dataset {
        if pair.starts_with("Viet") {
            &self.datasets.vn
        } else {
            &self.datasets.pt
        }
    }

    /// The prepared schema and similarity table of one entity type.
    pub fn prepared(&mut self, pair: &str, type_id: &str) -> &(DualSchema, SimilarityTable) {
        let key = (pair.to_string(), type_id.to_string());
        if !self.prepared.contains_key(&key) {
            let dataset = self.dataset(pair);
            let pairing = dataset
                .type_pairing(type_id)
                .unwrap_or_else(|| panic!("unknown type {type_id} for {pair}"))
                .clone();
            let prepared = self.matcher.prepare_type(dataset, &pairing);
            self.prepared.insert(key.clone(), prepared);
        }
        &self.prepared[&key]
    }

    /// Evaluates derived pairs for a type with the weighted metrics.
    pub fn evaluate(
        &mut self,
        pair: &str,
        type_id: &str,
        derived: &[(String, String)],
    ) -> Scores {
        let dataset = self.dataset(pair);
        let other = dataset.other_language().clone();
        let gold = dataset
            .ground_truth
            .for_type(type_id)
            .cloned()
            .unwrap_or_default();
        let (schema, _) = self.prepared(pair, type_id);
        let freq_other = schema.frequencies(&other);
        let freq_en = schema.frequencies(&Language::En);
        weighted_scores(derived, &gold, &other, &Language::En, &freq_other, &freq_en)
    }

    /// Runs WikiMatch (with an arbitrary configuration) on one type.
    pub fn run_wikimatch(
        &mut self,
        pair: &str,
        type_id: &str,
        config: WikiMatchConfig,
    ) -> Vec<(String, String)> {
        let dataset_other = self.dataset(pair).other_language().clone();
        let (schema, table) = self.prepared(pair, type_id);
        let matches = AttributeAlignment::new(schema, table, config).run();
        matches.cross_language_pairs(schema, &dataset_other, &Language::En)
    }

    /// Runs a baseline matcher on one type.
    pub fn run_baseline(
        &mut self,
        pair: &str,
        type_id: &str,
        baseline: &dyn Matcher,
    ) -> Vec<(String, String)> {
        let (schema, table) = self.prepared(pair, type_id);
        baseline.align(schema, table)
    }

    /// The type identifiers of a pair.
    pub fn type_ids(&self, pair: &str) -> Vec<String> {
        self.dataset(pair)
            .types
            .iter()
            .map(|t| t.type_id.clone())
            .collect()
    }

    // ------------------------------------------------------------------
    // Table 1 — example alignments.
    // ------------------------------------------------------------------

    /// A sample of discovered alignments for Table 1 (Pt-En actor/film and
    /// Vn-En film/actor, as in the paper).
    pub fn table1(&mut self) -> Vec<(String, String, Vec<(String, String)>)> {
        let mut out = Vec::new();
        for (pair, types) in [
            ("Portuguese-English", vec!["actor", "film"]),
            ("Vietnamese-English", vec!["film", "actor"]),
        ] {
            for type_id in types {
                let pairs = self.run_wikimatch(pair, type_id, WikiMatchConfig::default());
                out.push((pair.to_string(), type_id.to_string(), pairs));
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // Table 2 — comparison against existing approaches.
    // ------------------------------------------------------------------

    /// Runs the Table 2 comparison for one language pair.
    pub fn table2(&mut self, pair: &str) -> Table2 {
        // The best COMA++ configuration differs per pair, as in the paper:
        // NG+ID for Pt-En, I+D for Vn-En.
        let coma_config = if pair.starts_with("Viet") {
            ComaConfiguration::InstanceTranslated
        } else {
            ComaConfiguration::NameTranslatedInstanceTranslated
        };
        let mut rows = Vec::new();
        for type_id in self.type_ids(pair) {
            let wikimatch_pairs =
                self.run_wikimatch(pair, &type_id, WikiMatchConfig::default());
            let bouma_pairs = self.run_baseline(pair, &type_id, &BoumaMatcher::default());
            let coma_pairs = self.run_baseline(pair, &type_id, &ComaMatcher::new(coma_config));
            let lsi_pairs = self.run_baseline(pair, &type_id, &LsiTopKMatcher::new(1));
            rows.push(ApproachRow {
                wikimatch: self.evaluate(pair, &type_id, &wikimatch_pairs),
                bouma: self.evaluate(pair, &type_id, &bouma_pairs),
                coma: self.evaluate(pair, &type_id, &coma_pairs),
                lsi: self.evaluate(pair, &type_id, &lsi_pairs),
                type_id,
            });
        }
        let average = ApproachRow {
            type_id: "Avg".to_string(),
            wikimatch: Scores::average(rows.iter().map(|r| &r.wikimatch)),
            bouma: Scores::average(rows.iter().map(|r| &r.bouma)),
            coma: Scores::average(rows.iter().map(|r| &r.coma)),
            lsi: Scores::average(rows.iter().map(|r| &r.lsi)),
        };
        Table2 {
            pair: pair.to_string(),
            rows,
            average,
        }
    }

    // ------------------------------------------------------------------
    // Table 3 / Figure 3 — contribution of the components.
    // ------------------------------------------------------------------

    /// The ablation configurations of Table 3 (and the starred `WM*`
    /// variants of Figure 3, which also drop `ReviseUncertain`).
    pub fn ablation_configs() -> Vec<(String, WikiMatchConfig)> {
        let base = WikiMatchConfig::default();
        vec![
            ("WikiMatch".to_string(), base),
            (
                "WikiMatch-ReviseUncertain".to_string(),
                base.without_revise_uncertain(),
            ),
            (
                "WikiMatch-IntegrateMatches".to_string(),
                base.without_integrate_constraint(),
            ),
            ("WikiMatch random".to_string(), base.with_random_ordering()),
            ("WikiMatch single step".to_string(), base.single_step()),
            ("WikiMatch-vsim".to_string(), base.without_vsim()),
            ("WikiMatch-lsim".to_string(), base.without_lsim()),
            ("WikiMatch-LSI".to_string(), base.without_lsi()),
            (
                "WikiMatch-inductive grouping".to_string(),
                base.without_inductive_grouping(),
            ),
            (
                "WikiMatch*-vsim".to_string(),
                base.without_revise_uncertain().without_vsim(),
            ),
            (
                "WikiMatch*-lsim".to_string(),
                base.without_revise_uncertain().without_lsim(),
            ),
            (
                "WikiMatch*-LSI".to_string(),
                base.without_revise_uncertain().without_lsi(),
            ),
            (
                "WikiMatch* random".to_string(),
                base.without_revise_uncertain().with_random_ordering(),
            ),
        ]
    }

    /// Average scores of one configuration over all types of a pair.
    pub fn average_for_config(&mut self, pair: &str, config: WikiMatchConfig) -> Scores {
        let mut per_type = Vec::new();
        for type_id in self.type_ids(pair) {
            let pairs = self.run_wikimatch(pair, &type_id, config);
            per_type.push(self.evaluate(pair, &type_id, &pairs));
        }
        Scores::average(per_type.iter())
    }

    /// Runs the full ablation study (Table 3 / Figure 3).
    pub fn table3(&mut self) -> Vec<AblationRow> {
        Self::ablation_configs()
            .into_iter()
            .map(|(configuration, config)| AblationRow {
                pt: self.average_for_config("Portuguese-English", config),
                vn: self.average_for_config("Vietnamese-English", config),
                configuration,
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // Table 5 — structural heterogeneity (attribute overlap).
    // ------------------------------------------------------------------

    /// Attribute overlap per type for one pair.
    pub fn table5(&mut self, pair: &str) -> Vec<(String, f64)> {
        let dataset = self.dataset(pair);
        dataset
            .types
            .iter()
            .map(|pairing| {
                let gold = dataset
                    .ground_truth
                    .for_type(&pairing.type_id)
                    .cloned()
                    .unwrap_or_default();
                let overlap = type_overlap(
                    &dataset.corpus,
                    &gold,
                    dataset.other_language(),
                    &pairing.label_other,
                    &pairing.label_en,
                );
                (pairing.type_id.clone(), overlap)
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // Table 6 — macro-averaging.
    // ------------------------------------------------------------------

    /// Macro-averaged scores of the four approaches for one pair.
    pub fn table6(&mut self, pair: &str) -> Vec<(String, Scores)> {
        let coma_config = if pair.starts_with("Viet") {
            ComaConfiguration::InstanceTranslated
        } else {
            ComaConfiguration::NameTranslatedInstanceTranslated
        };
        let systems: Vec<(String, Box<dyn Fn(&mut Self, &str) -> Vec<(String, String)>>)> = vec![
            (
                "WikiMatch".to_string(),
                Box::new(|ctx: &mut Self, type_id: &str| {
                    ctx.run_wikimatch(pair, type_id, WikiMatchConfig::default())
                }),
            ),
            (
                "Bouma".to_string(),
                Box::new(|ctx: &mut Self, type_id: &str| {
                    ctx.run_baseline(pair, type_id, &BoumaMatcher::default())
                }),
            ),
            (
                "COMA++".to_string(),
                Box::new(move |ctx: &mut Self, type_id: &str| {
                    ctx.run_baseline(pair, type_id, &ComaMatcher::new(coma_config))
                }),
            ),
            (
                "LSI".to_string(),
                Box::new(|ctx: &mut Self, type_id: &str| {
                    ctx.run_baseline(pair, type_id, &LsiTopKMatcher::new(1))
                }),
            ),
        ];

        let other = self.dataset(pair).other_language().clone();
        let mut out = Vec::new();
        for (name, runner) in systems {
            let mut aggregator = MacroAggregator::new();
            for type_id in self.type_ids(pair) {
                let derived = runner(self, &type_id);
                let gold = self
                    .dataset(pair)
                    .ground_truth
                    .for_type(&type_id)
                    .cloned()
                    .unwrap_or_default();
                aggregator.add_type(&derived, &gold, &other, &Language::En);
            }
            out.push((name, aggregator.scores()));
        }
        out
    }

    // ------------------------------------------------------------------
    // Table 7 — MAP of the candidate orderings.
    // ------------------------------------------------------------------

    /// MAP of LSI, X1, X2, X3 and random orderings for one pair.
    pub fn table7(&mut self, pair: &str) -> MapRow {
        let other = self.dataset(pair).other_language().clone();
        let mut map = Vec::new();
        for measure in CorrelationMeasure::all() {
            let mut rankings: Vec<Vec<bool>> = Vec::new();
            for type_id in self.type_ids(pair) {
                let gold = self
                    .dataset(pair)
                    .ground_truth
                    .for_type(&type_id)
                    .cloned()
                    .unwrap_or_default();
                let (schema, table) = self.prepared(pair, &type_id);
                for (attribute, candidates) in
                    ranked_candidates(schema, table, *measure, 11)
                {
                    let ranking: Vec<bool> = candidates
                        .iter()
                        .map(|c| gold.is_correct(&other, &attribute, &Language::En, c))
                        .collect();
                    if ranking.iter().any(|&b| b) {
                        rankings.push(ranking);
                    }
                }
            }
            map.push((measure.label().to_string(), mean_average_precision(&rankings)));
        }
        MapRow {
            pair: pair.to_string(),
            map,
        }
    }

    // ------------------------------------------------------------------
    // Figure 4 — case study.
    // ------------------------------------------------------------------

    /// Runs the cumulative-gain case study for one pair.
    pub fn figure4(&mut self, pair: &str) -> Vec<CaseStudyCurve> {
        let dataset = self.dataset(pair).clone();
        let matcher = WikiMatch::new(WikiMatchConfig::default());
        let alignments = matcher.align_all(&dataset);
        run_case_study(&dataset, &alignments, 20)
    }

    // ------------------------------------------------------------------
    // Figure 5 — threshold sensitivity.
    // ------------------------------------------------------------------

    /// Sweeps `Tsim` and `TLSI` and reports the average F-measure.
    pub fn figure5(&mut self, pair: &str, steps: &[f64]) -> Vec<ThresholdCurve> {
        let mut tsim_points = Vec::new();
        let mut tlsi_points = Vec::new();
        for &value in steps {
            let config = WikiMatchConfig {
                t_sim: value,
                ..WikiMatchConfig::default()
            };
            tsim_points.push((value, self.average_for_config(pair, config).f1));
            let config = WikiMatchConfig {
                t_lsi: value,
                ..WikiMatchConfig::default()
            };
            tlsi_points.push((value, self.average_for_config(pair, config).f1));
        }
        vec![
            ThresholdCurve {
                threshold: "Tsim".to_string(),
                pair: pair.to_string(),
                points: tsim_points,
            },
            ThresholdCurve {
                threshold: "TLSI".to_string(),
                pair: pair.to_string(),
                points: tlsi_points,
            },
        ]
    }

    // ------------------------------------------------------------------
    // Figure 6 — LSI top-k.
    // ------------------------------------------------------------------

    /// Average LSI top-k scores for `k ∈ {1, 3, 5, 10}`.
    pub fn figure6(&mut self, pair: &str) -> Vec<TopKPoint> {
        [1usize, 3, 5, 10]
            .into_iter()
            .map(|k| {
                let mut per_type = Vec::new();
                for type_id in self.type_ids(pair) {
                    let pairs = self.run_baseline(pair, &type_id, &LsiTopKMatcher::new(k));
                    per_type.push(self.evaluate(pair, &type_id, &pairs));
                }
                TopKPoint {
                    pair: pair.to_string(),
                    k,
                    scores: Scores::average(per_type.iter()),
                }
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // Figure 7 — COMA++ configurations.
    // ------------------------------------------------------------------

    /// Average scores of every COMA++ configuration.
    pub fn figure7(&mut self, pair: &str) -> Vec<ComaPoint> {
        ComaConfiguration::all()
            .iter()
            .map(|config| {
                let mut per_type = Vec::new();
                for type_id in self.type_ids(pair) {
                    let pairs = self.run_baseline(pair, &type_id, &ComaMatcher::new(*config));
                    per_type.push(self.evaluate(pair, &type_id, &pairs));
                }
                ComaPoint {
                    pair: pair.to_string(),
                    configuration: config.label().to_string(),
                    scores: Scores::average(per_type.iter()),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_prepares_and_caches_types() {
        let mut ctx = ExperimentContext::quick();
        assert_eq!(ctx.type_ids("Portuguese-English").len(), 14);
        assert_eq!(ctx.type_ids("Vietnamese-English").len(), 4);
        let first = ctx.prepared("Portuguese-English", "film").0.dual_count;
        let second = ctx.prepared("Portuguese-English", "film").0.dual_count;
        assert_eq!(first, second);
        assert!(first > 0);
    }

    #[test]
    fn table2_produces_rows_for_every_type() {
        let mut ctx = ExperimentContext::quick();
        let table = ctx.table2("Vietnamese-English");
        assert_eq!(table.rows.len(), 4);
        assert!(table.average.wikimatch.f1 > 0.0);
        for row in &table.rows {
            for scores in [&row.wikimatch, &row.bouma, &row.coma, &row.lsi] {
                assert!((0.0..=1.0).contains(&scores.precision));
                assert!((0.0..=1.0).contains(&scores.recall));
            }
        }
    }

    #[test]
    fn ablation_configs_cover_the_paper_rows() {
        let configs = ExperimentContext::ablation_configs();
        assert!(configs.len() >= 9);
        assert_eq!(configs[0].0, "WikiMatch");
    }

    #[test]
    fn table5_overlap_within_bounds() {
        let mut ctx = ExperimentContext::quick();
        for (_, overlap) in ctx.table5("Portuguese-English") {
            assert!((0.0..=1.0).contains(&overlap));
        }
    }

    #[test]
    fn table7_orders_lsi_above_random() {
        let mut ctx = ExperimentContext::quick();
        let row = ctx.table7("Vietnamese-English");
        let get = |label: &str| {
            row.map
                .iter()
                .find(|(l, _)| l == label)
                .map(|(_, v)| *v)
                .unwrap()
        };
        assert!(get("LSI") >= get("Random"), "{:?}", row.map);
    }
}
