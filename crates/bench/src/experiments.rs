//! The reproduction experiments, one function per table/figure of the paper.
//!
//! All experiments run over the [`StandardDatasets`]: a Portuguese-English
//! corpus with 14 entity types and a Vietnamese-English corpus with 4 types,
//! generated with the default [`SyntheticConfig`] (the laptop-scale
//! substitute for the paper's Wikipedia dump — see `DESIGN.md`).
//!
//! The harness holds one [`MatchEngine`] session per language pair: the
//! title dictionary and entity-type correspondences are computed once at
//! construction, and the per-type schema + similarity artifacts are cached
//! inside the engines — WikiMatch, its ablations and every baseline run
//! over the identical prepared input, exactly as the paper feeds the same
//! grouped attributes to every approach. Every matcher (WikiMatch included)
//! is driven through the [`SchemaMatcher`] plugin trait, so adding an
//! approach to the comparison means implementing one trait.

use serde::{Deserialize, Serialize};

use wiki_baselines::{
    ranked_candidates, BoumaMatcher, ComaConfiguration, ComaMatcher, CorrelationMatcher,
    CorrelationMeasure, LsiTopKMatcher,
};
use wiki_corpus::{Dataset, Language, SyntheticConfig};
use wiki_eval::{mean_average_precision, type_overlap, weighted_scores, MacroAggregator, Scores};
use wiki_query::{run_case_study_with_engine, CaseStudyCurve};
use wikimatch::{ComputeMode, MatchEngine, SchemaMatcher, WikiMatch, WikiMatchConfig};

/// The two evaluation datasets used throughout the paper.
#[derive(Debug, Clone)]
pub struct StandardDatasets {
    /// Portuguese-English (14 entity types).
    pub pt: Dataset,
    /// Vietnamese-English (4 entity types).
    pub vn: Dataset,
}

impl StandardDatasets {
    /// Generates both datasets with the given configuration.
    pub fn generate(config: &SyntheticConfig) -> Self {
        Self {
            pt: Dataset::pt_en(config),
            vn: Dataset::vn_en(config),
        }
    }

    /// The default experiment-scale datasets.
    pub fn standard() -> Self {
        Self::generate(&SyntheticConfig::default())
    }

    /// Reduced datasets for quick runs and tests.
    pub fn quick() -> Self {
        Self::generate(&SyntheticConfig::tiny())
    }
}

/// Scores of every approach for one entity type (a row of Table 2).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ApproachRow {
    /// Entity-type identifier.
    pub type_id: String,
    /// WikiMatch scores.
    pub wikimatch: Scores,
    /// Bouma scores.
    pub bouma: Scores,
    /// Best COMA++ configuration scores.
    pub coma: Scores,
    /// LSI top-1 scores.
    pub lsi: Scores,
}

/// Table 2 for one language pair.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2 {
    /// Language-pair name.
    pub pair: String,
    /// Per-type rows.
    pub rows: Vec<ApproachRow>,
    /// Average row.
    pub average: ApproachRow,
}

/// One ablation configuration's average scores (a row of Table 3).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AblationRow {
    /// Configuration label.
    pub configuration: String,
    /// Average scores over all types, Pt-En.
    pub pt: Scores,
    /// Average scores over all types, Vn-En.
    pub vn: Scores,
}

/// Threshold-sensitivity curves (Figure 5).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThresholdCurve {
    /// Which threshold is swept (`"Tsim"` or `"TLSI"`).
    pub threshold: String,
    /// Language pair.
    pub pair: String,
    /// `(threshold value, average F-measure)` points.
    pub points: Vec<(f64, f64)>,
}

/// Top-k LSI results (Figure 6).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TopKPoint {
    /// Language pair.
    pub pair: String,
    /// k.
    pub k: usize,
    /// Average scores over all types.
    pub scores: Scores,
}

/// COMA++ configuration results (Figure 7).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ComaPoint {
    /// Language pair.
    pub pair: String,
    /// Configuration label (N, I, NI, ...).
    pub configuration: String,
    /// Average scores over all types.
    pub scores: Scores,
}

/// MAP of the candidate orderings (Table 7).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MapRow {
    /// Language pair.
    pub pair: String,
    /// MAP per measure, in the order LSI, X1, X2, X3, Random.
    pub map: Vec<(String, f64)>,
}

/// One Table 1 sample: `(pair name, type id, derived cross pairs)`.
pub type Table1Sample = (String, String, Vec<(String, String)>);

/// The experiment harness: one [`MatchEngine`] session per language pair.
pub struct ExperimentContext {
    pt: MatchEngine,
    vn: MatchEngine,
}

impl ExperimentContext {
    /// Creates the context over the given datasets, opening one engine
    /// session per pair with the default similarity compute mode.
    pub fn new(datasets: StandardDatasets) -> Self {
        Self::with_mode(datasets, ComputeMode::default())
    }

    /// Creates the context with an explicit similarity compute mode
    /// (selected by the `--mode {pruned,dense}` flag of the experiment
    /// binaries). Both modes produce bit-identical tables; `dense` is the
    /// single-threaded reference pass.
    pub fn with_mode(datasets: StandardDatasets, mode: ComputeMode) -> Self {
        Self {
            pt: MatchEngine::builder(datasets.pt).compute_mode(mode).build(),
            vn: MatchEngine::builder(datasets.vn).compute_mode(mode).build(),
        }
    }

    /// Creates the context over the standard experiment datasets.
    pub fn standard() -> Self {
        Self::new(StandardDatasets::standard())
    }

    /// Creates a reduced context for quick runs and unit tests.
    pub fn quick() -> Self {
        Self::new(StandardDatasets::quick())
    }

    /// The engine session of one language pair.
    ///
    /// Panics on anything other than the two canonical pair names, so a
    /// typo cannot silently return the wrong dataset's numbers.
    pub fn engine(&self, pair: &str) -> &MatchEngine {
        match pair {
            "Portuguese-English" => &self.pt,
            "Vietnamese-English" => &self.vn,
            other => panic!(
                "unknown language pair {other:?}; expected \"Portuguese-English\" or \"Vietnamese-English\""
            ),
        }
    }

    /// The dataset of one language pair.
    pub fn dataset(&self, pair: &str) -> std::sync::Arc<Dataset> {
        self.engine(pair).dataset()
    }

    /// The best COMA++ configuration per pair, as in the paper: NG+ID for
    /// Pt-En, I+D for Vn-En.
    pub fn best_coma_configuration(pair: &str) -> ComaConfiguration {
        match pair {
            "Vietnamese-English" => ComaConfiguration::InstanceTranslated,
            "Portuguese-English" => ComaConfiguration::NameTranslatedInstanceTranslated,
            other => panic!(
                "unknown language pair {other:?}; expected \"Portuguese-English\" or \"Vietnamese-English\""
            ),
        }
    }

    /// The Table 2 approaches — WikiMatch and the three baselines — as
    /// interchangeable [`SchemaMatcher`] plugins, in column order.
    pub fn approaches(pair: &str) -> Vec<Box<dyn SchemaMatcher>> {
        vec![
            Box::new(WikiMatch::default()),
            Box::new(BoumaMatcher::default()),
            Box::new(ComaMatcher::new(Self::best_coma_configuration(pair))),
            Box::new(LsiTopKMatcher::new(1)),
        ]
    }

    /// Runs any [`SchemaMatcher`] on one type through the pair's engine.
    pub fn run_matcher(
        &self,
        pair: &str,
        type_id: &str,
        matcher: &dyn SchemaMatcher,
    ) -> Vec<(String, String)> {
        self.engine(pair)
            .align_with(matcher, type_id)
            .unwrap_or_else(|| panic!("unknown type {type_id} for {pair}"))
    }

    /// Runs WikiMatch with an arbitrary configuration on one type
    /// (the engine's cached artifacts are shared across configurations).
    pub fn run_wikimatch(
        &self,
        pair: &str,
        type_id: &str,
        config: WikiMatchConfig,
    ) -> Vec<(String, String)> {
        self.run_matcher(pair, type_id, &WikiMatch::new(config))
    }

    /// Evaluates derived pairs for a type with the weighted metrics.
    pub fn evaluate(&self, pair: &str, type_id: &str, derived: &[(String, String)]) -> Scores {
        let dataset = self.dataset(pair);
        let other = dataset.other_language();
        let gold = dataset
            .ground_truth
            .for_type(type_id)
            .cloned()
            .unwrap_or_default();
        let schema = self
            .engine(pair)
            .schema(type_id)
            .unwrap_or_else(|| panic!("unknown type {type_id} for {pair}"));
        let freq_other = schema.frequencies(other);
        let freq_en = schema.frequencies(&Language::En);
        weighted_scores(derived, &gold, other, &Language::En, &freq_other, &freq_en)
    }

    /// The type identifiers of a pair.
    pub fn type_ids(&self, pair: &str) -> Vec<String> {
        self.dataset(pair)
            .types
            .iter()
            .map(|t| t.type_id.clone())
            .collect()
    }

    // ------------------------------------------------------------------
    // Table 1 — example alignments.
    // ------------------------------------------------------------------

    /// A sample of discovered alignments for Table 1 (Pt-En actor/film and
    /// Vn-En film/actor, as in the paper).
    pub fn table1(&self) -> Vec<Table1Sample> {
        let mut out = Vec::new();
        for (pair, types) in [
            ("Portuguese-English", vec!["actor", "film"]),
            ("Vietnamese-English", vec!["film", "actor"]),
        ] {
            for type_id in types {
                let pairs = self.run_matcher(pair, type_id, &WikiMatch::default());
                out.push((pair.to_string(), type_id.to_string(), pairs));
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // Table 2 — comparison against existing approaches.
    // ------------------------------------------------------------------

    /// Runs the Table 2 comparison for one language pair: every approach is
    /// a [`SchemaMatcher`] plugin driven through the pair's engine.
    pub fn table2(&self, pair: &str) -> Table2 {
        let approaches = Self::approaches(pair);
        let mut rows = Vec::new();
        for type_id in self.type_ids(pair) {
            let scores: Vec<Scores> = approaches
                .iter()
                .map(|matcher| {
                    let pairs = self.run_matcher(pair, &type_id, matcher.as_ref());
                    self.evaluate(pair, &type_id, &pairs)
                })
                .collect();
            rows.push(ApproachRow {
                wikimatch: scores[0],
                bouma: scores[1],
                coma: scores[2],
                lsi: scores[3],
                type_id,
            });
        }
        let average = ApproachRow {
            type_id: "Avg".to_string(),
            wikimatch: Scores::average(rows.iter().map(|r| &r.wikimatch)),
            bouma: Scores::average(rows.iter().map(|r| &r.bouma)),
            coma: Scores::average(rows.iter().map(|r| &r.coma)),
            lsi: Scores::average(rows.iter().map(|r| &r.lsi)),
        };
        Table2 {
            pair: pair.to_string(),
            rows,
            average,
        }
    }

    // ------------------------------------------------------------------
    // Table 3 / Figure 3 — contribution of the components.
    // ------------------------------------------------------------------

    /// The ablation configurations of Table 3 (and the starred `WM*`
    /// variants of Figure 3, which also drop `ReviseUncertain`).
    pub fn ablation_configs() -> Vec<(String, WikiMatchConfig)> {
        let base = WikiMatchConfig::default();
        vec![
            ("WikiMatch".to_string(), base),
            (
                "WikiMatch-ReviseUncertain".to_string(),
                base.without_revise_uncertain(),
            ),
            (
                "WikiMatch-IntegrateMatches".to_string(),
                base.without_integrate_constraint(),
            ),
            ("WikiMatch random".to_string(), base.with_random_ordering()),
            ("WikiMatch single step".to_string(), base.single_step()),
            ("WikiMatch-vsim".to_string(), base.without_vsim()),
            ("WikiMatch-lsim".to_string(), base.without_lsim()),
            ("WikiMatch-LSI".to_string(), base.without_lsi()),
            (
                "WikiMatch-inductive grouping".to_string(),
                base.without_inductive_grouping(),
            ),
            (
                "WikiMatch*-vsim".to_string(),
                base.without_revise_uncertain().without_vsim(),
            ),
            (
                "WikiMatch*-lsim".to_string(),
                base.without_revise_uncertain().without_lsim(),
            ),
            (
                "WikiMatch*-LSI".to_string(),
                base.without_revise_uncertain().without_lsi(),
            ),
            (
                "WikiMatch* random".to_string(),
                base.without_revise_uncertain().with_random_ordering(),
            ),
        ]
    }

    /// Average scores of one configuration over all types of a pair.
    pub fn average_for_config(&self, pair: &str, config: WikiMatchConfig) -> Scores {
        let mut per_type = Vec::new();
        for type_id in self.type_ids(pair) {
            let pairs = self.run_wikimatch(pair, &type_id, config);
            per_type.push(self.evaluate(pair, &type_id, &pairs));
        }
        Scores::average(per_type.iter())
    }

    /// Runs the full ablation study (Table 3 / Figure 3).
    pub fn table3(&self) -> Vec<AblationRow> {
        Self::ablation_configs()
            .into_iter()
            .map(|(configuration, config)| AblationRow {
                pt: self.average_for_config("Portuguese-English", config),
                vn: self.average_for_config("Vietnamese-English", config),
                configuration,
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // Table 5 — structural heterogeneity (attribute overlap).
    // ------------------------------------------------------------------

    /// Attribute overlap per type for one pair.
    pub fn table5(&self, pair: &str) -> Vec<(String, f64)> {
        let dataset = self.dataset(pair);
        dataset
            .types
            .iter()
            .map(|pairing| {
                let gold = dataset
                    .ground_truth
                    .for_type(&pairing.type_id)
                    .cloned()
                    .unwrap_or_default();
                let overlap = type_overlap(
                    &dataset.corpus,
                    &gold,
                    dataset.other_language(),
                    &pairing.label_other,
                    &pairing.label_en,
                );
                (pairing.type_id.clone(), overlap)
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // Table 6 — macro-averaging.
    // ------------------------------------------------------------------

    /// Macro-averaged scores of the four approaches for one pair.
    pub fn table6(&self, pair: &str) -> Vec<(String, Scores)> {
        let other = self.dataset(pair).other_language().clone();
        let mut out = Vec::new();
        for matcher in Self::approaches(pair) {
            let mut aggregator = MacroAggregator::new();
            for type_id in self.type_ids(pair) {
                let derived = self.run_matcher(pair, &type_id, matcher.as_ref());
                let gold = self
                    .dataset(pair)
                    .ground_truth
                    .for_type(&type_id)
                    .cloned()
                    .unwrap_or_default();
                aggregator.add_type(&derived, &gold, &other, &Language::En);
            }
            out.push((matcher.name().to_string(), aggregator.scores()));
        }
        out
    }

    // ------------------------------------------------------------------
    // Table 7 — MAP of the candidate orderings.
    // ------------------------------------------------------------------

    /// MAP of LSI, X1, X2, X3 and random orderings for one pair.
    pub fn table7(&self, pair: &str) -> MapRow {
        let other = self.dataset(pair).other_language().clone();
        let mut map = Vec::new();
        for measure in CorrelationMeasure::all() {
            let mut rankings: Vec<Vec<bool>> = Vec::new();
            for type_id in self.type_ids(pair) {
                let gold = self
                    .dataset(pair)
                    .ground_truth
                    .for_type(&type_id)
                    .cloned()
                    .unwrap_or_default();
                let prepared = self
                    .engine(pair)
                    .prepared(&type_id)
                    .expect("type ids come from the dataset");
                for (attribute, candidates) in ranked_candidates(
                    &prepared.schema,
                    &prepared.table,
                    *measure,
                    CorrelationMatcher::DEFAULT_SEED,
                ) {
                    let ranking: Vec<bool> = candidates
                        .iter()
                        .map(|c| gold.is_correct(&other, &attribute, &Language::En, c))
                        .collect();
                    if ranking.iter().any(|&b| b) {
                        rankings.push(ranking);
                    }
                }
            }
            map.push((
                measure.label().to_string(),
                mean_average_precision(&rankings),
            ));
        }
        MapRow {
            pair: pair.to_string(),
            map,
        }
    }

    // ------------------------------------------------------------------
    // Figure 4 — case study.
    // ------------------------------------------------------------------

    /// Runs the cumulative-gain case study for one pair.
    pub fn figure4(&self, pair: &str) -> Vec<CaseStudyCurve> {
        run_case_study_with_engine(self.engine(pair), 20)
    }

    // ------------------------------------------------------------------
    // Figure 5 — threshold sensitivity.
    // ------------------------------------------------------------------

    /// Sweeps `Tsim` and `TLSI` and reports the average F-measure.
    pub fn figure5(&self, pair: &str, steps: &[f64]) -> Vec<ThresholdCurve> {
        let mut tsim_points = Vec::new();
        let mut tlsi_points = Vec::new();
        for &value in steps {
            let config = WikiMatchConfig {
                t_sim: value,
                ..WikiMatchConfig::default()
            };
            tsim_points.push((value, self.average_for_config(pair, config).f1));
            let config = WikiMatchConfig {
                t_lsi: value,
                ..WikiMatchConfig::default()
            };
            tlsi_points.push((value, self.average_for_config(pair, config).f1));
        }
        vec![
            ThresholdCurve {
                threshold: "Tsim".to_string(),
                pair: pair.to_string(),
                points: tsim_points,
            },
            ThresholdCurve {
                threshold: "TLSI".to_string(),
                pair: pair.to_string(),
                points: tlsi_points,
            },
        ]
    }

    // ------------------------------------------------------------------
    // Figure 6 — LSI top-k.
    // ------------------------------------------------------------------

    /// Average LSI top-k scores for `k ∈ {1, 3, 5, 10}`.
    pub fn figure6(&self, pair: &str) -> Vec<TopKPoint> {
        [1usize, 3, 5, 10]
            .into_iter()
            .map(|k| {
                let mut per_type = Vec::new();
                for type_id in self.type_ids(pair) {
                    let pairs = self.run_matcher(pair, &type_id, &LsiTopKMatcher::new(k));
                    per_type.push(self.evaluate(pair, &type_id, &pairs));
                }
                TopKPoint {
                    pair: pair.to_string(),
                    k,
                    scores: Scores::average(per_type.iter()),
                }
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // Figure 7 — COMA++ configurations.
    // ------------------------------------------------------------------

    /// Average scores of every COMA++ configuration.
    pub fn figure7(&self, pair: &str) -> Vec<ComaPoint> {
        ComaConfiguration::all()
            .iter()
            .map(|config| {
                let mut per_type = Vec::new();
                for type_id in self.type_ids(pair) {
                    let pairs = self.run_matcher(pair, &type_id, &ComaMatcher::new(*config));
                    per_type.push(self.evaluate(pair, &type_id, &pairs));
                }
                ComaPoint {
                    pair: pair.to_string(),
                    configuration: config.label().to_string(),
                    scores: Scores::average(per_type.iter()),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_prepares_and_caches_types() {
        let ctx = ExperimentContext::quick();
        assert_eq!(ctx.type_ids("Portuguese-English").len(), 14);
        assert_eq!(ctx.type_ids("Vietnamese-English").len(), 4);
        let engine = ctx.engine("Portuguese-English");
        let first = engine.schema("film").unwrap();
        let cached = engine.cached_types();
        let second = engine.schema("film").unwrap();
        assert!(std::sync::Arc::ptr_eq(&first, &second));
        assert_eq!(engine.cached_types(), cached);
        assert!(first.dual_count > 0);
    }

    #[test]
    fn with_mode_threads_the_compute_mode_into_both_engines() {
        let ctx = ExperimentContext::with_mode(StandardDatasets::quick(), ComputeMode::Dense);
        for pair in ["Portuguese-English", "Vietnamese-English"] {
            assert_eq!(ctx.engine(pair).compute_mode(), ComputeMode::Dense);
        }
        let ctx = ExperimentContext::quick();
        for pair in ["Portuguese-English", "Vietnamese-English"] {
            assert_eq!(ctx.engine(pair).compute_mode(), ComputeMode::Pruned);
        }
    }

    #[test]
    fn table2_produces_rows_for_every_type() {
        let ctx = ExperimentContext::quick();
        let table = ctx.table2("Vietnamese-English");
        assert_eq!(table.rows.len(), 4);
        assert!(table.average.wikimatch.f1 > 0.0);
        for row in &table.rows {
            for scores in [&row.wikimatch, &row.bouma, &row.coma, &row.lsi] {
                assert!((0.0..=1.0).contains(&scores.precision));
                assert!((0.0..=1.0).contains(&scores.recall));
            }
        }
    }

    #[test]
    fn ablation_configs_cover_the_paper_rows() {
        let configs = ExperimentContext::ablation_configs();
        assert!(configs.len() >= 9);
        assert_eq!(configs[0].0, "WikiMatch");
    }

    #[test]
    fn approaches_are_polymorphic_plugins() {
        let approaches = ExperimentContext::approaches("Portuguese-English");
        let names: Vec<&'static str> = approaches.iter().map(|m| m.name()).collect();
        assert_eq!(names, vec!["WikiMatch", "Bouma", "COMA++", "LSI"]);
    }

    #[test]
    fn table5_overlap_within_bounds() {
        let ctx = ExperimentContext::quick();
        for (_, overlap) in ctx.table5("Portuguese-English") {
            assert!((0.0..=1.0).contains(&overlap));
        }
    }

    #[test]
    fn table7_orders_lsi_above_random() {
        let ctx = ExperimentContext::quick();
        let row = ctx.table7("Vietnamese-English");
        let get = |label: &str| {
            row.map
                .iter()
                .find(|(l, _)| l == label)
                .map(|(_, v)| *v)
                .unwrap()
        };
        assert!(get("LSI") >= get("Random"), "{:?}", row.map);
    }
}
