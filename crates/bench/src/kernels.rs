//! Shared measurement kernels for the interning benchmarks.
//!
//! The criterion bench (`benches/interning.rs`) and the recording binary
//! (`src/bin/interning.rs`, which writes the repo-root `BENCH_5.json`) time
//! the *same* candidate-pair cosine sweep over two representations of the
//! same vectors. The sweep and the representation-swapping helper live here
//! so the two harnesses cannot drift apart and silently measure different
//! kernels.

use wiki_corpus::Language;
use wiki_text::TermVector;
use wikimatch::schema::CandidateIndex;
use wikimatch::DualSchema;

/// Per-attribute vector sets for the cosine sweep: either the schema's
/// shared-arena vectors (interned `u32`-id compares) or detached
/// per-vector-arena copies (resolved-string compares — the walk the
/// string-keyed representation paid).
pub struct SweepInput {
    /// Language of each attribute (selects raw vs translated `vsim`).
    pub languages: Vec<Language>,
    /// Raw value vectors, one per attribute.
    pub values: Vec<TermVector>,
    /// Dictionary-translated value vectors, one per attribute.
    pub translated: Vec<TermVector>,
    /// Link-cluster vectors, one per attribute.
    pub links: Vec<TermVector>,
}

impl SweepInput {
    /// The schema's own shared-arena vectors.
    pub fn interned(schema: &DualSchema) -> Self {
        Self {
            languages: schema
                .attributes
                .iter()
                .map(|a| a.language.clone())
                .collect(),
            values: schema.attributes.iter().map(|a| a.values.clone()).collect(),
            translated: schema
                .attributes
                .iter()
                .map(|a| a.translated_values.clone())
                .collect(),
            links: schema.attributes.iter().map(|a| a.links.clone()).collect(),
        }
    }

    /// Re-hosts every vector on a private arena holding just its own terms,
    /// forcing pairwise operations onto the resolved-string comparison walk
    /// of the string-keyed representation.
    pub fn detached(schema: &DualSchema) -> Self {
        let interned = Self::interned(schema);
        Self {
            languages: interned.languages,
            values: interned.values.iter().map(detach).collect(),
            translated: interned.translated.iter().map(detach).collect(),
            links: interned.links.iter().map(detach).collect(),
        }
    }
}

/// Re-hosts one vector on a private arena holding just its own terms — the
/// per-vector layout of the string-keyed representation.
pub fn detach(vector: &TermVector) -> TermVector {
    let entries = vector.iter().map(|(t, w)| (t.to_string(), w)).collect();
    TermVector::from_sorted_entries(entries).expect("iter output is term-sorted")
}

/// The candidate-pair cosine sweep (`vsim` on value candidates, `lsim` on
/// link candidates); returns the accumulated similarity mass so the two
/// representations can be cross-checked for bit-equality.
pub fn cosine_sweep(index: &CandidateIndex, input: &SweepInput) -> f64 {
    let n = input.languages.len();
    let mut acc = 0.0f64;
    for p in 0..n {
        for q in (p + 1)..n {
            if index.value_candidate(p, q) {
                acc += if input.languages[p] == input.languages[q] {
                    input.values[p].cosine(&input.values[q])
                } else {
                    input.translated[p].cosine(&input.translated[q])
                };
            }
            if index.link_candidate(p, q) {
                acc += input.links[p].cosine(&input.links[q]);
            }
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use wiki_corpus::{Dataset, SyntheticConfig};
    use wikimatch::MatchEngine;

    #[test]
    fn interned_and_detached_sweeps_are_bit_identical() {
        let engine = MatchEngine::builder(Dataset::pt_en(&SyntheticConfig::tiny())).build();
        let prepared = engine.prepared("film").unwrap();
        let interned = SweepInput::interned(&prepared.schema);
        let detached = SweepInput::detached(&prepared.schema);
        let index = prepared.index.as_ref().expect("pruned mode has an index");
        let a = cosine_sweep(index, &interned);
        let b = cosine_sweep(index, &detached);
        assert_eq!(a.to_bits(), b.to_bits());
        assert!(a > 0.0);
    }
}
