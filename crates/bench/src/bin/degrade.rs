//! Degraded-serving experiment — warm `/align` latency under injected
//! 50 ms disk stalls, with and without admission-control shedding, the
//! record behind `BENCH_10.json`.
//!
//! Two phases over in-process [`MatchServer`]s on ephemeral ports:
//!
//! * **overhead** — the fault framework's cost on the warm align path.
//!   One keep-alive client replays cached per-type aligns in alternating
//!   rounds: *disarmed* (empty failpoint table, the armed flag is a
//!   single relaxed load) versus *armed on an unrelated point*
//!   (`registry.evict=sleep(1)`, which the align path never evaluates but
//!   which forces every `worker.request`/`serve.compute` check through
//!   the full table lookup). The armed-unrelated mode does strictly more
//!   work than disarmed, so its overhead is an upper bound on the
//!   disarmed cost the ≤ 1 % bar is about. A tight `evaluate` loop also
//!   records the raw disarmed check in ns/op.
//!
//! * **stall** — three sequential servers (2 workers each) measured by a
//!   connection-per-request align client (keep-alive would pin a worker
//!   and dodge the accept queue entirely):
//!   1. *baseline* — no faults, no stall traffic;
//!   2. *unshed* — `registry.evict=sleep(50)` armed and two stall
//!      threads hammering `POST /evict` on a second, never-resident
//!      corpus. Each stall pins a worker for 50 ms, so aligns queue
//!      behind the stalled workers and the p99 absorbs the stall;
//!   3. *shed* — same storm, `shed_queue_millis` set: aligns whose
//!      queue wait blew the budget are answered `503 Retry-After`
//!      instead of being served stale, and the p99 *of the served
//!      responses* stays within a few budget-widths of baseline.
//!
//! The bars this records: shed p99 ≤ 3× the no-fault baseline p99,
//! unshed p99 > 10× it, and armed-unrelated overhead ≤ 1 % on the warm
//! align p50.
//!
//! ```text
//! cargo run --release -p wiki-bench --bin degrade \
//!     [-- --rounds N --requests N --served N --smoke --out BENCH_10.json]
//! ```
//!
//! `--smoke` shrinks every knob for CI; the checked-in `BENCH_10.json`
//! is produced with `--out BENCH_10.json`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use wiki_bench::report::f2;
use wiki_bench::{format_table, write_report};
use wiki_corpus::Language;
use wiki_serve::client::MatchClient;
use wiki_serve::protocol::{AlignRequest, CorpusRequest};
use wiki_serve::registry::{CorpusSpec, Registry};
use wiki_serve::server::{MatchServer, ServerConfig};
use wikimatch::ComputeMode;

/// Stall length injected at `registry.evict`, the "50 ms disk stall" of
/// the acceptance bar.
const STALL_MS: u64 = 50;
/// Pause between stalls on each stall thread: a ~50% duty cycle leaves
/// free windows so the shed configuration still serves (a fully
/// saturated queue would shed everything and the served p99 would be
/// vacuous).
const STALL_GAP_MS: u64 = 50;
/// Admission budget of the shed configuration. One millisecond keeps the
/// served p99 (budget + service time) inside 3× of a sub-millisecond
/// no-fault baseline.
const SHED_BUDGET_MS: u64 = 1;

/// The whole run, serialized into `reports/degrade.json` (and, via
/// `--out`, the repo-root `BENCH_10.json`).
#[derive(serde::Serialize)]
struct Report {
    bench: String,
    pr: u32,
    note: String,
    // -- overhead phase --------------------------------------------------
    overhead_rounds: usize,
    overhead_requests_per_round: usize,
    disarmed_p50_us: f64,
    armed_unrelated_p50_us: f64,
    /// `(armed_unrelated_p50 / disarmed_p50 - 1) * 100`; an upper bound
    /// on the disarmed framework cost. The bar is ≤ 1.0.
    overhead_percent: f64,
    /// One disarmed `wiki_fault::evaluate` call, nanoseconds.
    disarmed_evaluate_ns: f64,
    // -- stall phase -----------------------------------------------------
    stall_ms: u64,
    shed_budget_ms: u64,
    served_target: usize,
    baseline_p50_ms: f64,
    baseline_p99_ms: f64,
    /// p99 over every align under the stall storm with shedding off (all
    /// requests are served, however long they queued).
    unshed_p99_ms: f64,
    /// p99 over the *served* (200) aligns under the same storm with the
    /// admission budget on.
    shed_served_p99_ms: f64,
    /// 503s the shed configuration answered while collecting its served
    /// samples.
    shed_rejections: u64,
    /// `unshed_p99 / baseline_p99`; the bar is > 10.
    unshed_ratio: f64,
    /// `shed_served_p99 / baseline_p99`; the bar is ≤ 3.
    shed_ratio: f64,
}

/// Replays `requests` warm per-type aligns on one keep-alive connection,
/// returning per-request wall latencies in nanoseconds.
fn align_batch(client: &mut MatchClient, corpus: &str, requests: usize) -> Vec<u64> {
    let body = AlignRequest {
        corpus: corpus.to_string(),
        type_id: Some("film".to_string()),
    };
    let mut latencies = Vec::with_capacity(requests);
    for _ in 0..requests {
        let begin = Instant::now();
        let response = client.post("/align", &body).expect("align request");
        assert!(
            response.is_success(),
            "align failed: HTTP {}: {}",
            response.status,
            response.body
        );
        latencies.push(begin.elapsed().as_nanos() as u64);
    }
    latencies
}

/// Nearest-rank percentile of `sorted` nanoseconds, in microseconds.
fn percentile_us(sorted: &[u64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx] as f64 / 1e3
}

/// Boots a fresh registry (tiny warmed for aligns, small registered but
/// never resident as the stall target) and a server over it.
fn boot(config: ServerConfig) -> (MatchServer, String) {
    let registry = Arc::new(Registry::new(2, ComputeMode::default()));
    registry.register(CorpusSpec::tier(Language::Pt, "tiny").expect("tiny tier exists"));
    registry.register(CorpusSpec::tier(Language::Pt, "small").expect("small tier exists"));
    registry.warm("pt-tiny").expect("warm align corpus");
    let server = MatchServer::start(registry, config).expect("bind ephemeral server");
    let addr = server.addr().to_string();
    (server, addr)
}

fn stall_config() -> ServerConfig {
    ServerConfig {
        workers: 2,
        queue_depth: 256,
        // The shed storm answers hundreds of deliberate 503s; logging each
        // one would drown the bench output.
        log_level: wiki_obs::LogLevel::Off,
        ..ServerConfig::default()
    }
}

/// One measured align on a *fresh* connection (so the request passes
/// through the accept queue and its wait is real). Returns the wall
/// latency and the status.
fn align_once(addr: &str) -> (u64, u16) {
    let begin = Instant::now();
    let mut client = MatchClient::new(addr).expect("client connects");
    let response = client
        .post(
            "/align",
            &AlignRequest {
                corpus: "pt-tiny".to_string(),
                type_id: Some("film".to_string()),
            },
        )
        .expect("align request");
    (begin.elapsed().as_nanos() as u64, response.status)
}

/// Collects align latencies under the stall storm until `served` 200s
/// arrived; non-200 answers (sheds) are counted, not measured.
fn measure_served(addr: &str, served: usize) -> (Vec<u64>, u64) {
    let mut latencies = Vec::with_capacity(served);
    let mut rejections = 0u64;
    while latencies.len() < served {
        // Pace the attempts so the samples span many storm cycles instead
        // of burning through inside a single free window.
        std::thread::sleep(Duration::from_millis(3));
        let (nanos, status) = align_once(addr);
        match status {
            200 => latencies.push(nanos),
            503 => {
                rejections += 1;
                // Honour the spirit of the 503's Retry-After (scaled down):
                // an immediate retry would keep the queue saturated and
                // starve the very admissions being measured.
                std::thread::sleep(Duration::from_millis(5));
            }
            other => panic!("align answered HTTP {other} under the stall storm"),
        }
    }
    (latencies, rejections)
}

/// Spawns `threads` loops that each pin a worker for [`STALL_MS`] per
/// `POST /evict` (the armed `registry.evict=sleep(..)` failpoint fires on
/// the never-resident `pt-small`, so no align-visible state changes).
fn start_storm(
    addr: &str,
    threads: usize,
    stop: &Arc<AtomicBool>,
) -> Vec<std::thread::JoinHandle<()>> {
    (0..threads)
        .map(|_| {
            let addr = addr.to_string();
            let stop = Arc::clone(stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    // Scope the client so the connection closes (freeing
                    // its worker) before the gap sleep, not after.
                    if let Ok(mut client) = MatchClient::new(addr.as_str()) {
                        let _ = client.post(
                            "/evict",
                            &CorpusRequest {
                                corpus: "pt-small".to_string(),
                            },
                        );
                    }
                    std::thread::sleep(Duration::from_millis(STALL_GAP_MS));
                }
            })
        })
        .collect()
}

/// Runs one stall-storm configuration to completion and tears it down.
fn storm_run(config: ServerConfig, served: usize) -> (Vec<u64>, u64) {
    let (server, addr) = boot(config);
    wiki_fault::arm(&format!("registry.evict=sleep({STALL_MS})")).expect("arm stall failpoint");
    let stop = Arc::new(AtomicBool::new(false));
    let storm = start_storm(&addr, 2, &stop);
    // Let the storm reach steady state before measuring.
    std::thread::sleep(Duration::from_millis(2 * STALL_MS));
    let (latencies, rejections) = measure_served(&addr, served);
    stop.store(true, Ordering::Relaxed);
    for handle in storm {
        let _ = handle.join();
    }
    wiki_fault::disarm_all();
    server.shutdown();
    (latencies, rejections)
}

/// The next argument as a flag's value; a trailing flag without one is a
/// usage error, not an index-out-of-bounds panic.
fn flag_value(args: &[String], i: &mut usize, flag: &str) -> String {
    *i += 1;
    args.get(*i).cloned().unwrap_or_else(|| {
        eprintln!("{flag} needs a value; see the module docs");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut rounds = 5usize;
    let mut requests = 400usize;
    let mut served = 100usize;
    let mut out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--rounds" => {
                rounds = flag_value(&args, &mut i, "--rounds")
                    .parse()
                    .expect("--rounds takes an integer");
            }
            "--requests" => {
                requests = flag_value(&args, &mut i, "--requests")
                    .parse()
                    .expect("--requests takes an integer");
            }
            "--served" => {
                served = flag_value(&args, &mut i, "--served")
                    .parse()
                    .expect("--served takes an integer");
            }
            "--smoke" => {
                rounds = 2;
                requests = 50;
                served = 25;
            }
            "--out" => {
                out = Some(flag_value(&args, &mut i, "--out"));
            }
            other => {
                eprintln!("unknown flag {other}; see the module docs");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    assert!(
        rounds >= 1 && requests >= 1 && served >= 1,
        "need at least one measurement"
    );
    wiki_fault::disarm_all();

    // ---- Phase 1: disarmed-framework overhead on the warm align path.
    eprintln!("overhead phase: {rounds} rounds x {requests} requests per mode...");
    let (server, addr) = boot(stall_config());
    let mut client = MatchClient::new(addr.as_str()).expect("client");
    // Warm the connection, the response cache and the branch predictors
    // before anything is measured.
    align_batch(&mut client, "pt-tiny", requests.min(100));
    let mut disarmed_p50 = f64::INFINITY;
    let mut armed_p50 = f64::INFINITY;
    for round in 0..rounds {
        eprintln!("  round {}/{rounds}", round + 1);
        wiki_fault::disarm_all();
        let mut batch = align_batch(&mut client, "pt-tiny", requests);
        batch.sort_unstable();
        disarmed_p50 = disarmed_p50.min(percentile_us(&batch, 0.50));
        // An armed point the align path never reaches: every request-path
        // check now misses in the real table instead of short-circuiting
        // on the armed flag.
        wiki_fault::arm("registry.evict=sleep(1)").expect("arm unrelated point");
        let mut batch = align_batch(&mut client, "pt-tiny", requests);
        batch.sort_unstable();
        armed_p50 = armed_p50.min(percentile_us(&batch, 0.50));
        wiki_fault::disarm_all();
    }
    server.shutdown();
    let overhead_percent = (armed_p50 / disarmed_p50 - 1.0) * 100.0;

    // The raw disarmed check: a relaxed load and return.
    let evaluate_loops = 2_000_000u32;
    let begin = Instant::now();
    for _ in 0..evaluate_loops {
        std::hint::black_box(wiki_fault::evaluate(std::hint::black_box("bench.disarmed")));
    }
    let disarmed_evaluate_ns = begin.elapsed().as_nanos() as f64 / f64::from(evaluate_loops);

    // ---- Phase 2: the stall storm, baseline → unshed → shed.
    eprintln!("stall phase: baseline ({served} served aligns)...");
    let (server, addr) = boot(stall_config());
    let mut baseline: Vec<u64> = (0..served).map(|_| align_once(&addr).0).collect();
    server.shutdown();
    baseline.sort_unstable();
    let baseline_p50_ms = percentile_us(&baseline, 0.50) / 1e3;
    let baseline_p99_ms = percentile_us(&baseline, 0.99) / 1e3;

    eprintln!("stall phase: unshed storm ({STALL_MS}ms stalls, shedding off)...");
    let (mut unshed, _) = storm_run(stall_config(), served);
    unshed.sort_unstable();
    let unshed_p99_ms = percentile_us(&unshed, 0.99) / 1e3;

    eprintln!("stall phase: shed storm (admission budget {SHED_BUDGET_MS}ms)...");
    let (mut shed, shed_rejections) = storm_run(
        ServerConfig {
            shed_queue_millis: SHED_BUDGET_MS,
            ..stall_config()
        },
        served,
    );
    shed.sort_unstable();
    let shed_served_p99_ms = percentile_us(&shed, 0.99) / 1e3;

    let unshed_ratio = unshed_p99_ms / baseline_p99_ms;
    let shed_ratio = shed_served_p99_ms / baseline_p99_ms;

    let header: Vec<String> = ["configuration", "samples", "p99 ms", "vs baseline"]
        .iter()
        .map(ToString::to_string)
        .collect();
    let rows_out = vec![
        vec![
            "baseline (no faults)".to_string(),
            baseline.len().to_string(),
            f2(baseline_p99_ms),
            "1.00x".to_string(),
        ],
        vec![
            format!("{STALL_MS}ms stalls, unshed"),
            unshed.len().to_string(),
            f2(unshed_p99_ms),
            format!("{}x", f2(unshed_ratio)),
        ],
        vec![
            format!("{STALL_MS}ms stalls, shed (served only)"),
            shed.len().to_string(),
            f2(shed_served_p99_ms),
            format!("{}x", f2(shed_ratio)),
        ],
    ];
    println!("{}", format_table(&header, &rows_out));
    println!(
        "overhead (warm align p50, armed-unrelated vs disarmed): {overhead_percent:+.2}%  \
         [bar: <= 1%]"
    );
    println!("disarmed evaluate: {disarmed_evaluate_ns:.2} ns/op");
    println!(
        "shed p99 {}x baseline [bar: <= 3x], unshed p99 {}x baseline [bar: > 10x], \
         {shed_rejections} sheds while collecting {} served",
        f2(shed_ratio),
        f2(unshed_ratio),
        shed.len()
    );

    let report = Report {
        bench: "degrade".to_string(),
        pr: 10,
        note: "in-process matchd, 2 workers; overhead phase replays warm \
               keep-alive aligns alternating disarmed vs armed-on-unrelated \
               failpoint (upper bound on the disarmed cost); stall phase \
               measures connection-per-request aligns while two storm \
               threads pin workers via POST /evict with \
               registry.evict=sleep(50) armed — unshed serves everything \
               however long it queued, shed answers 503 past the admission \
               budget and the p99 is over served responses only"
            .to_string(),
        overhead_rounds: rounds,
        overhead_requests_per_round: requests,
        disarmed_p50_us: disarmed_p50,
        armed_unrelated_p50_us: armed_p50,
        overhead_percent,
        disarmed_evaluate_ns,
        stall_ms: STALL_MS,
        shed_budget_ms: SHED_BUDGET_MS,
        served_target: served,
        baseline_p50_ms,
        baseline_p99_ms,
        unshed_p99_ms,
        shed_served_p99_ms,
        shed_rejections,
        unshed_ratio,
        shed_ratio,
    };
    write_report("degrade", &report);
    if let Some(path) = out {
        match serde_json::to_string_pretty(&report) {
            Ok(json) => std::fs::write(&path, json + "\n").expect("write --out file"),
            Err(err) => eprintln!("warning: cannot serialise report: {err}"),
        }
    }
}
