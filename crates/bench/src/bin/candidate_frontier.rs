//! Candidate-frontier experiment — exhaustive versus bound-filtered versus
//! banded-LSH similarity builds across the synthetic scale tiers, the
//! record behind `BENCH_7.json`.
//!
//! For each tier the Pt-En film schema is built once, then the full
//! `SimilarityTable` construction is timed in three compute modes:
//!
//! * **pruned** — the exact baseline: every non-certified-zero channel
//!   cosine plus the full triangular LSI pass (the quadratic frontier this
//!   PR attacks);
//! * **filtered** — prefix-mass / shared-count upper bounds skip every pair
//!   that provably cannot reach the score threshold, and LSI is computed
//!   only for stored pairs. Surviving scores are bit-identical to the
//!   exact table (asserted in-run against the pruned oracle);
//! * **lsh** — banded-SimHash candidate generation: explicitly
//!   approximate, so the run also reports its recall of at-threshold
//!   pairs against the exact oracle.
//!
//! Each mode's [`PairCounts`] (channel cosines scored versus pruned) is
//! recorded per tier — the same gauges `matchd` exposes on `/stats`.
//!
//! ```text
//! cargo run --release -p wiki-bench --bin candidate_frontier \
//!     [-- --tiers tiny,small,medium,large,xlarge --runs N --smoke --out BENCH_7.json]
//! ```
//!
//! `--smoke` (tiny + medium, one run) is the CI guard that keeps this
//! binary from rotting; the checked-in `BENCH_7.json` is produced with
//! `--out BENCH_7.json` under `taskset -c 0` for a stable single-core
//! number. The acceptance bars of the candidate-frontier tentpole — a
//! filtered `large` build under 300 ms and a filtered `xlarge` build under
//! the 1.2 s the exact `large` build used to cost — are enforced when
//! those tiers are measured.

use std::time::{Duration, Instant};

use wiki_bench::report::f2;
use wiki_bench::{format_table, tier_config, tier_names, write_report};
use wiki_corpus::synthetic::SyntheticGenerator;
use wiki_corpus::Language;
use wiki_linalg::LsiConfig;
use wiki_translate::TitleDictionary;
use wikimatch::{candidate_recall, ComputeMode, DualSchema, PairCounts, SimilarityTable};

/// One compute mode's measurements at one tier.
#[derive(serde::Serialize)]
struct ModeResult {
    mode: String,
    build_ms: f64,
    pairs_scored: u64,
    pairs_pruned: u64,
    stored_pairs: usize,
}

/// One tier's measurements, serialized into `reports/candidate_frontier.json`
/// (and, via `--out`, the repo-root `BENCH_7.json`).
#[derive(serde::Serialize)]
struct TierResult {
    tier: String,
    attribute_groups: usize,
    threshold: f64,
    pruned: ModeResult,
    filtered: ModeResult,
    lsh: ModeResult,
    filtered_speedup: f64,
    lsh_recall: f64,
}

/// The whole run, as checked in at the repo root.
#[derive(serde::Serialize)]
struct Report {
    bench: String,
    pr: u32,
    note: String,
    runs: usize,
    tiers: Vec<TierResult>,
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Best-of-N wall time of `f` in milliseconds (best-of, not mean: the
/// quantity of interest is the cost of the work, not of the noise).
fn time_best<T>(runs: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..runs {
        let t = Instant::now();
        last = Some(f());
        best = best.min(ms(t.elapsed()));
    }
    (best, last.expect("runs >= 1"))
}

fn mode_result(
    mode: ComputeMode,
    build_ms: f64,
    counts: PairCounts,
    table: &SimilarityTable,
) -> ModeResult {
    ModeResult {
        mode: mode.to_string(),
        build_ms,
        pairs_scored: counts.scored,
        pairs_pruned: counts.pruned,
        stored_pairs: table.pairs().len(),
    }
}

fn measure_tier(tier: &str, runs: usize) -> TierResult {
    let config = tier_config(tier).unwrap_or_else(|| {
        eprintln!("unknown tier {tier:?} ({})", tier_names());
        std::process::exit(2);
    });
    let generator = SyntheticGenerator::new(config);
    let (corpus, _) = generator.generate_pair(Language::Pt);
    let dictionary = TitleDictionary::from_corpus(&corpus, &Language::Pt, &Language::En);
    let schema = DualSchema::build(&corpus, &Language::Pt, "Filme", "Film", &dictionary);
    let n = schema.len();

    let threshold = ComputeMode::DEFAULT_FILTER_THRESHOLD;
    let filtered_mode = ComputeMode::filtered(threshold);
    let lsh_mode = ComputeMode::lsh(
        ComputeMode::DEFAULT_LSH_BANDS,
        ComputeMode::DEFAULT_LSH_ROWS,
    );
    let lsi = LsiConfig::default();

    let (pruned_ms, (oracle, oracle_counts)) = time_best(runs, || {
        SimilarityTable::compute_counted(&schema, lsi, ComputeMode::Pruned)
    });
    let (filtered_ms, (filtered, filtered_counts)) = time_best(runs, || {
        SimilarityTable::compute_counted(&schema, lsi, filtered_mode)
    });
    let (lsh_ms, (lsh, lsh_counts)) = time_best(runs, || {
        SimilarityTable::compute_counted(&schema, lsi, lsh_mode)
    });

    // The filtered table must be a *correct* shortcut: every stored pair
    // carries the oracle's exact bits.
    for pair in filtered.pairs() {
        let exact = oracle
            .pair(pair.p, pair.q)
            .expect("the exact table covers every pair");
        assert_eq!(pair.vsim.to_bits(), exact.vsim.to_bits(), "vsim diverged");
        assert_eq!(pair.lsim.to_bits(), exact.lsim.to_bits(), "lsim diverged");
        assert_eq!(pair.lsi.to_bits(), exact.lsi.to_bits(), "lsi diverged");
    }
    let lsh_recall = candidate_recall(&oracle, &lsh, threshold);

    TierResult {
        tier: tier.to_string(),
        attribute_groups: n,
        threshold,
        filtered_speedup: pruned_ms / filtered_ms.max(1e-9),
        lsh_recall,
        pruned: mode_result(ComputeMode::Pruned, pruned_ms, oracle_counts, &oracle),
        filtered: mode_result(filtered_mode, filtered_ms, filtered_counts, &filtered),
        lsh: mode_result(lsh_mode, lsh_ms, lsh_counts, &lsh),
    }
}

/// The next argument as a flag's value; a trailing flag without one is a
/// usage error, not an index-out-of-bounds panic.
fn flag_value(args: &[String], i: &mut usize, flag: &str) -> String {
    *i += 1;
    args.get(*i).cloned().unwrap_or_else(|| {
        eprintln!("{flag} needs a value; see the module docs");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut tiers = vec![
        "tiny".to_string(),
        "small".to_string(),
        "medium".to_string(),
        "large".to_string(),
        "xlarge".to_string(),
    ];
    let mut runs = 3usize;
    let mut out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--tiers" => {
                tiers = flag_value(&args, &mut i, "--tiers")
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .collect();
            }
            "--runs" => {
                runs = flag_value(&args, &mut i, "--runs")
                    .parse()
                    .expect("--runs takes an integer");
            }
            "--smoke" => {
                tiers = vec!["tiny".to_string(), "medium".to_string()];
                runs = 1;
            }
            "--out" => {
                out = Some(flag_value(&args, &mut i, "--out"));
            }
            other => {
                eprintln!("unknown flag {other}; see the module docs");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let mut results = Vec::new();
    for tier in &tiers {
        eprintln!("measuring tier {tier} ({runs} runs)...");
        results.push(measure_tier(tier, runs));
    }

    let header: Vec<String> = [
        "tier",
        "attrs",
        "pruned ms",
        "filtered ms",
        "lsh ms",
        "speedup",
        "pruned %",
        "lsh recall",
    ]
    .iter()
    .map(ToString::to_string)
    .collect();
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            let total = (r.filtered.pairs_scored + r.filtered.pairs_pruned).max(1);
            vec![
                r.tier.clone(),
                r.attribute_groups.to_string(),
                f2(r.pruned.build_ms),
                f2(r.filtered.build_ms),
                f2(r.lsh.build_ms),
                format!("{}x", f2(r.filtered_speedup)),
                format!(
                    "{:.1}",
                    100.0 * r.filtered.pairs_pruned as f64 / total as f64
                ),
                f2(r.lsh_recall),
            ]
        })
        .collect();
    println!("=== Candidate frontier — exact vs filtered vs LSH builds (Pt-En film) ===");
    println!("{}", format_table(&header, &rows));

    let report = Report {
        bench: "candidate_frontier".to_string(),
        pr: 7,
        note: "single-core (taskset -c 0) full SimilarityTable builds of the Pt-En film \
               schema; filtered = bound-filtered sparse table at the default threshold \
               (surviving scores asserted bit-identical to the exact oracle in-run); \
               lsh = banded-SimHash candidates with recall of at-threshold pairs vs the \
               oracle; pairs_scored/pairs_pruned are the /stats gauges"
            .to_string(),
        runs,
        tiers: results,
    };
    write_report("candidate_frontier", &report);
    if let Some(path) = out {
        match serde_json::to_string_pretty(&report) {
            Ok(json) => std::fs::write(&path, json + "\n").expect("write --out file"),
            Err(err) => eprintln!("warning: cannot serialise report: {err}"),
        }
    }

    // The tentpole's acceptance bars, enforced when those tiers ran.
    let mut failed = false;
    if let Some(large) = report.tiers.iter().find(|r| r.tier == "large") {
        let ok = large.filtered.build_ms < 300.0;
        println!(
            "large filtered build: {} ms (target < 300 ms) — {}",
            f2(large.filtered.build_ms),
            if ok { "OK" } else { "FAIL" }
        );
        failed |= !ok;
    }
    if let Some(xlarge) = report.tiers.iter().find(|r| r.tier == "xlarge") {
        let ok = xlarge.filtered.build_ms < 1200.0;
        println!(
            "xlarge filtered build: {} ms (target < 1200 ms, the old exact large cost) — {}",
            f2(xlarge.filtered.build_ms),
            if ok { "OK" } else { "FAIL" }
        );
        failed |= !ok;
    }
    if failed {
        std::process::exit(1);
    }
}
