//! Runs every table/figure reproduction in one pass and writes all JSON
//! reports to `reports/`.
//!
//! ```text
//! cargo run --release -p wiki-bench --bin repro_all            # full scale
//! cargo run --release -p wiki-bench --bin repro_all -- --quick # smoke run
//! ```

mod common;

use wiki_bench::report::f2;
use wiki_bench::write_report;

fn main() {
    let ctx = common::context_from_args();

    println!("## Table 1 — example alignments");
    let table1 = ctx.table1();
    for (pair, type_id, pairs) in &table1 {
        println!("{pair} / {type_id}: {} correspondences", pairs.len());
        for (other, en) in pairs.iter().take(5) {
            println!("    {other} ~ {en}");
        }
    }
    write_report("table1", &table1);

    println!("\n## Table 2 — comparison against existing approaches");
    let mut table2 = Vec::new();
    for pair in common::PAIRS {
        let table = ctx.table2(pair);
        println!(
            "{pair}: WikiMatch F {} | Bouma F {} | COMA++ F {} | LSI F {}",
            f2(table.average.wikimatch.f1),
            f2(table.average.bouma.f1),
            f2(table.average.coma.f1),
            f2(table.average.lsi.f1)
        );
        table2.push(table);
    }
    write_report("table2", &table2);

    println!("\n## Table 3 — component contributions (average F)");
    let table3 = ctx.table3();
    for row in &table3 {
        println!(
            "{:<32} Pt F {}  Vn F {}",
            row.configuration,
            f2(row.pt.f1),
            f2(row.vn.f1)
        );
    }
    write_report("table3", &table3);

    println!("\n## Table 5 — attribute overlap");
    let mut table5 = Vec::new();
    for pair in common::PAIRS {
        let overlaps = ctx.table5(pair);
        let avg: f64 = overlaps.iter().map(|(_, o)| o).sum::<f64>() / overlaps.len().max(1) as f64;
        println!("{pair}: average overlap {:.0}%", avg * 100.0);
        table5.push((pair.to_string(), overlaps));
    }
    write_report("table5", &table5);

    println!("\n## Table 6 — macro-averaging");
    let mut table6 = Vec::new();
    for pair in common::PAIRS {
        let results = ctx.table6(pair);
        for (approach, scores) in &results {
            println!("{pair:<22} {approach:<10} F {}", f2(scores.f1));
        }
        table6.push((pair.to_string(), results));
    }
    write_report("table6", &table6);

    println!("\n## Table 7 — MAP of candidate orderings");
    let mut table7 = Vec::new();
    for pair in common::PAIRS {
        let row = ctx.table7(pair);
        let cells: Vec<String> = row
            .map
            .iter()
            .map(|(label, value)| format!("{label} {value:.2}"))
            .collect();
        println!("{pair}: {}", cells.join("  "));
        table7.push(row);
    }
    write_report("table7", &table7);

    println!("\n## Figure 3 — impact of ReviseUncertain (see figure3 binary for detail)");
    println!("\n## Figure 4 — case study cumulative gain");
    let mut figure4 = Vec::new();
    for pair in common::PAIRS {
        let curves = ctx.figure4(pair);
        for curve in &curves {
            println!("{:<8} total CG {:>8.1}", curve.label, curve.total_gain());
        }
        figure4.push((pair.to_string(), curves));
    }
    write_report("figure4", &figure4);

    println!("\n## Figure 5 — threshold sensitivity");
    let steps: Vec<f64> = (0..=9).map(|i| i as f64 / 10.0).collect();
    let mut figure5 = Vec::new();
    for pair in common::PAIRS {
        for curve in ctx.figure5(pair, &steps) {
            let min = curve
                .points
                .iter()
                .map(|(_, f)| *f)
                .fold(f64::MAX, f64::min);
            let max = curve.points.iter().map(|(_, f)| *f).fold(0.0, f64::max);
            println!(
                "{:<22} {:<5} F ranges {:.2}–{:.2}",
                curve.pair, curve.threshold, min, max
            );
            figure5.push(curve);
        }
    }
    write_report("figure5", &figure5);

    println!("\n## Figure 6 — LSI top-k");
    let mut figure6 = Vec::new();
    for pair in common::PAIRS {
        for point in ctx.figure6(pair) {
            println!(
                "{pair:<22} k={:<2} P {} R {}",
                point.k,
                f2(point.scores.precision),
                f2(point.scores.recall)
            );
            figure6.push(point);
        }
    }
    write_report("figure6", &figure6);

    println!("\n## Figure 7 — COMA++ configurations");
    let mut figure7 = Vec::new();
    for pair in common::PAIRS {
        for point in ctx.figure7(pair) {
            println!(
                "{pair:<22} {:<6} F {}",
                point.configuration,
                f2(point.scores.f1)
            );
            figure7.push(point);
        }
    }
    write_report("figure7", &figure7);

    println!("\nAll reports written to reports/*.json");
}
