//! Warm-start experiment — cold engine build versus snapshot load across
//! the synthetic scale tiers.
//!
//! For each tier the Pt-En dataset is generated once, then two ways of
//! obtaining a fully warmed [`MatchEngine`] are timed:
//!
//! * **cold build** — construct the engine (title dictionary) and
//!   `prepare_all` (every per-type schema / similarity table / candidate
//!   index);
//! * **snapshot load** — read the persisted snapshot from disk and restore
//!   the same artifacts with [`MatchEngine::builder`]'s
//!   `build_from_snapshot` (zero artifact builds).
//!
//! Dataset generation is excluded from both sides — it is the same work
//! either way. The acceptance target of the snapshot tentpole is a ≥10×
//! faster warm start at the `pt-medium` tier; the run fails loudly if the
//! restored artifacts are not bit-identical to the cold build.
//!
//! ```text
//! cargo run --release -p wiki-bench --bin warmstart [-- --tiers tiny,small,medium[,large,xlarge] --runs N]
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use wiki_bench::{format_table, tier_config, tier_names, write_report};
use wiki_corpus::Dataset;
use wikimatch::snapshot::EngineSnapshot;
use wikimatch::MatchEngine;

/// One tier's measurements, serialized into `reports/warmstart.json`.
#[derive(serde::Serialize)]
struct TierResult {
    tier: String,
    attribute_groups: usize,
    snapshot_bytes: u64,
    cold_build_ms: f64,
    snapshot_load_ms: f64,
    speedup: f64,
}

fn median(mut samples: Vec<Duration>) -> Duration {
    samples.sort();
    samples[samples.len() / 2]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let tiers = match args.iter().position(|a| a == "--tiers") {
        Some(i) => args.get(i + 1).cloned().unwrap_or_default(),
        None => "tiny,small,medium".to_string(),
    };
    let runs: usize = match args.iter().position(|a| a == "--runs") {
        Some(i) => args
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| {
                eprintln!("--runs takes a positive integer");
                std::process::exit(2);
            }),
        None => 3,
    }
    .max(1);

    let dir = std::env::temp_dir().join(format!("wm-warmstart-{}", std::process::id()));
    let mut results: Vec<TierResult> = Vec::new();

    for tier in tiers.split(',').map(str::trim).filter(|t| !t.is_empty()) {
        let Some(config) = tier_config(tier) else {
            eprintln!("unknown tier {tier:?}; expected {}", tier_names());
            std::process::exit(2);
        };
        // Generated once; both sides start from the same in-memory dataset.
        let dataset = Arc::new(Dataset::pt_en(&config));
        let attribute_groups = {
            let engine = MatchEngine::new(Arc::clone(&dataset));
            let film = engine.prepared("film").expect("film type exists");
            film.schema.len()
        };

        // Cold build: dictionary + every per-type artifact.
        let mut cold_samples = Vec::with_capacity(runs);
        let mut reference = None;
        for _ in 0..runs {
            let start = Instant::now();
            let engine = MatchEngine::new(Arc::clone(&dataset));
            engine.prepare_all();
            cold_samples.push(start.elapsed());
            reference = Some(engine);
        }
        let reference = reference.expect("at least one cold run");

        // Persist the warmed session once, then time pure loads.
        let path = dir.join(format!("pt-{tier}.snap"));
        EngineSnapshot::capture(&reference)
            .expect("exact-mode engine captures")
            .save(&path)
            .expect("snapshot saves");
        let snapshot_bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);

        // One untimed warmup load first: it faults the file into the page
        // cache and warms the allocator, modelling the steady state a
        // restarting daemon sees (the file was just written) instead of a
        // first-touch outlier.
        let warmup = EngineSnapshot::load(&path).expect("snapshot loads");
        drop(warmup);

        let mut load_samples = Vec::with_capacity(runs);
        let mut restored = None;
        for _ in 0..runs {
            let start = Instant::now();
            let snapshot = EngineSnapshot::load(&path).expect("snapshot loads");
            let engine = MatchEngine::builder(Arc::clone(&dataset))
                .build_from_snapshot(snapshot)
                .expect("snapshot restores");
            load_samples.push(start.elapsed());
            restored = Some(engine);
        }
        let restored = restored.expect("at least one load run");

        // The load must be a *correct* shortcut: zero builds, identical bits.
        assert_eq!(restored.stats().artifact_builds, 0);
        for pairing in &dataset.types {
            let a = reference.similarity(&pairing.type_id).expect("cold table");
            let b = restored.similarity(&pairing.type_id).expect("loaded table");
            for (x, y) in a.pairs().iter().zip(b.pairs()) {
                assert_eq!(x.vsim.to_bits(), y.vsim.to_bits(), "{}", pairing.type_id);
                assert_eq!(x.lsim.to_bits(), y.lsim.to_bits(), "{}", pairing.type_id);
                assert_eq!(x.lsi.to_bits(), y.lsi.to_bits(), "{}", pairing.type_id);
            }
        }

        let cold = median(cold_samples);
        let load = median(load_samples);
        results.push(TierResult {
            tier: tier.to_string(),
            attribute_groups,
            snapshot_bytes,
            cold_build_ms: cold.as_secs_f64() * 1e3,
            snapshot_load_ms: load.as_secs_f64() * 1e3,
            speedup: cold.as_secs_f64() / load.as_secs_f64().max(1e-9),
        });
    }
    let _ = std::fs::remove_dir_all(&dir);

    let header: Vec<String> = [
        "tier",
        "film attrs",
        "snapshot size",
        "cold build",
        "snapshot load",
        "speedup",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.tier.clone(),
                r.attribute_groups.to_string(),
                format!("{:.1} MiB", r.snapshot_bytes as f64 / (1024.0 * 1024.0)),
                format!("{:.1} ms", r.cold_build_ms),
                format!("{:.1} ms", r.snapshot_load_ms),
                format!("{:.1}x", r.speedup),
            ]
        })
        .collect();
    println!("=== Warm start — cold build vs snapshot load (Pt-En, median of runs) ===");
    println!("{}", format_table(&header, &rows));
    write_report("warmstart", &results);

    // The tentpole's acceptance bar: ≥10× at pt-medium (when measured).
    if let Some(medium) = results.iter().find(|r| r.tier == "medium") {
        if medium.speedup < 10.0 {
            eprintln!(
                "FAIL: pt-medium warm start is only {:.1}x faster (target: ≥10x)",
                medium.speedup
            );
            std::process::exit(1);
        }
        println!(
            "pt-medium warm start: {:.1}x faster than a cold build (target ≥10x) — OK",
            medium.speedup
        );
    }
}
