//! Figure 5 — sensitivity of the F-measure to the thresholds `Tsim` and
//! `TLSI`.

mod common;

use wiki_bench::write_report;

fn main() {
    let ctx = common::context_from_args();
    let steps: Vec<f64> = (0..=9).map(|i| i as f64 / 10.0).collect();
    let mut report = Vec::new();
    println!("=== Figure 5 — impact of different thresholds (average F-measure) ===");
    for pair in common::PAIRS {
        for curve in ctx.figure5(pair, &steps) {
            let series: Vec<String> = curve
                .points
                .iter()
                .map(|(x, f)| format!("{x:.1}:{f:.2}"))
                .collect();
            println!(
                "{:<22} {:<5} {}",
                curve.pair,
                curve.threshold,
                series.join("  ")
            );
            report.push(curve);
        }
    }
    write_report("figure5", &report);
}
