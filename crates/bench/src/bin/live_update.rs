//! Live-update experiment — single-entity delta patch versus full artifact
//! rebuild across the synthetic scale tiers, the record behind
//! `BENCH_6.json`.
//!
//! For each tier the Pt-En dataset is built and every type's artifacts are
//! prepared, then two things are measured:
//!
//! * **full rebuild** — a fresh [`MatchEngine`] over the same dataset with
//!   `prepare_all`: the cost a static engine pays to absorb *any* corpus
//!   change, however small;
//! * **single-entity delta** — `apply_delta` of an attribute edit to an
//!   existing cross-linked film article against the warm engine. The
//!   article's dual pair makes the edit dirty real similarity rows (an
//!   unlinked probe would patch nothing), while the unchanged title
//!   dictionary keeps the patch scoped to the article's own type — the
//!   shape of a typical live infobox edit.
//!
//! The delta-equivalence proptest (`tests/delta_equivalence.rs`) pins the
//! two paths to bit-identical artifacts, so the ratio below is a pure
//! speedup, not an accuracy trade.
//!
//! ```text
//! cargo run --release -p wiki-bench --bin live_update \
//!     [-- --tiers tiny,small,medium,large --runs N --smoke --out BENCH_6.json]
//! ```
//!
//! `--smoke` (tiny only, one run) is the CI guard that keeps this binary
//! from rotting; the checked-in `BENCH_6.json` is produced with
//! `--out BENCH_6.json` under `taskset -c 0` for a stable single-core
//! number.

use std::sync::Arc;
use std::time::{Duration, Instant};

use wiki_bench::report::f2;
use wiki_bench::{format_table, tier_config, tier_names, write_report};
use wiki_corpus::{Article, Dataset, Language, SyntheticConfig};
use wikimatch::{CorpusDelta, MatchEngine};

/// One tier's measurements, serialized into `reports/live_update.json`
/// (and, via `--out`, the repo-root `BENCH_6.json`).
#[derive(serde::Serialize)]
struct TierResult {
    tier: String,
    types: usize,
    live_articles: usize,
    full_rebuild_ms: f64,
    delta_apply_ms: f64,
    speedup: f64,
    types_patched: usize,
    rows_recomputed: u64,
}

/// The whole run, as checked in at the repo root.
#[derive(serde::Serialize)]
struct Report {
    bench: String,
    pr: u32,
    note: String,
    runs: usize,
    tiers: Vec<TierResult>,
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Best-of-N wall time of `f` in milliseconds (best-of, not mean: the
/// quantity of interest is the cost of the work, not of the noise).
fn time_best<T>(runs: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..runs {
        let t = Instant::now();
        last = Some(f());
        best = best.min(ms(t.elapsed()));
    }
    (best, last.expect("runs >= 1"))
}

/// The representative single-entity update: an *existing* cross-linked
/// film article gets one attribute *value* edited — title, links,
/// attribute set and occurrence patterns all unchanged. Its dual pair
/// makes the edit dirty real similarity rows, while the unchanged
/// dictionary and schema skeleton keep the patch scoped: no
/// re-translation sweep, no LSI refit (LSI reads occurrence patterns,
/// not values). Adding attributes or links takes the heavier paths the
/// equivalence suite covers; this measures what a typical infobox edit
/// costs. The value varies by `step` so consecutive applies are never
/// no-ops.
fn probe_delta(template: &Article, step: usize) -> CorpusDelta {
    let mut article = template.clone();
    let attr = article
        .infobox
        .attributes
        .first_mut()
        .expect("film infoboxes have attributes");
    attr.value = format!("{} (edição {step})", attr.value);
    CorpusDelta::upsert(article)
}

fn measure_tier(tier: &str, config: &SyntheticConfig, runs: usize) -> TierResult {
    let dataset = Arc::new(Dataset::pt_en(config));
    let types = dataset.types.len();
    let live_articles = dataset.corpus.len();

    // The cost of absorbing a change by rebuilding: fresh engine, every
    // type's artifacts from scratch.
    let (full_rebuild_ms, _) = time_best(runs, || {
        let engine = MatchEngine::builder(Arc::clone(&dataset)).build();
        engine.prepare_all();
        engine
    });

    // The cost of absorbing the same scale of change incrementally: one
    // attribute edit against a warm engine. Each run applies a *different*
    // step so no apply degenerates into a fingerprint no-op.
    let engine = MatchEngine::builder(Arc::clone(&dataset)).build();
    engine.prepare_all();
    let template = dataset
        .corpus
        .articles_in(&Language::Pt)
        .find(|a| {
            a.entity_type == "Filme"
                && !a.cross_links.is_empty()
                && !a.infobox.attributes.is_empty()
        })
        .expect("every tier has cross-linked Portuguese films")
        .clone();
    let mut step = 0usize;
    let (delta_apply_ms, report) = time_best(runs, || {
        let delta = probe_delta(&template, step);
        step += 1;
        engine.apply_delta(&delta)
    });
    assert_eq!(report.updated, 1, "the probe must hit a live article");
    assert!(
        report.rows_recomputed > 0,
        "the probe must dirty similarity rows, or the comparison is vacuous"
    );

    TierResult {
        tier: tier.to_string(),
        types,
        live_articles,
        full_rebuild_ms,
        delta_apply_ms,
        speedup: full_rebuild_ms / delta_apply_ms,
        types_patched: report.types_patched,
        rows_recomputed: report.rows_recomputed,
    }
}

/// The next argument as a flag's value; a trailing flag without one is a
/// usage error, not an index-out-of-bounds panic.
fn flag_value(args: &[String], i: &mut usize, flag: &str) -> String {
    *i += 1;
    args.get(*i).cloned().unwrap_or_else(|| {
        eprintln!("{flag} needs a value; see the module docs");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut tiers = vec![
        "tiny".to_string(),
        "small".to_string(),
        "medium".to_string(),
        "large".to_string(),
    ];
    let mut runs = 5usize;
    let mut out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--tiers" => {
                tiers = flag_value(&args, &mut i, "--tiers")
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .collect();
            }
            "--runs" => {
                runs = flag_value(&args, &mut i, "--runs")
                    .parse()
                    .expect("--runs takes an integer");
            }
            "--smoke" => {
                tiers = vec!["tiny".to_string()];
                runs = 1;
            }
            "--out" => {
                out = Some(flag_value(&args, &mut i, "--out"));
            }
            other => {
                eprintln!("unknown flag {other}; see the module docs");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let mut results = Vec::new();
    for tier in &tiers {
        let config = tier_config(tier).unwrap_or_else(|| {
            eprintln!("unknown tier {tier:?} ({})", tier_names());
            std::process::exit(2);
        });
        eprintln!("measuring tier {tier} ({runs} runs)...");
        results.push(measure_tier(tier, &config, runs));
    }

    let header: Vec<String> = [
        "tier",
        "articles",
        "rebuild ms",
        "delta ms",
        "speedup ×",
        "types patched",
        "rows",
    ]
    .iter()
    .map(ToString::to_string)
    .collect();
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.tier.clone(),
                r.live_articles.to_string(),
                f2(r.full_rebuild_ms),
                f2(r.delta_apply_ms),
                f2(r.speedup),
                r.types_patched.to_string(),
                r.rows_recomputed.to_string(),
            ]
        })
        .collect();
    println!("{}", format_table(&header, &rows));

    let report = Report {
        bench: "live_update".to_string(),
        pr: 6,
        note: "single-core (taskset -c 0); full rebuild = fresh MatchEngine + \
               prepare_all over the same dataset; delta = one attribute edit \
               to an existing cross-linked film article via apply_delta \
               against the warm engine (a different value each run, so no \
               apply is a fingerprint no-op); tests/delta_equivalence.rs pins \
               both paths to bit-identical artifacts"
            .to_string(),
        runs,
        tiers: results,
    };
    write_report("live_update", &report);
    if let Some(path) = out {
        match serde_json::to_string_pretty(&report) {
            Ok(json) => std::fs::write(&path, json + "\n").expect("write --out file"),
            Err(err) => eprintln!("warning: cannot serialise report: {err}"),
        }
    }
}
