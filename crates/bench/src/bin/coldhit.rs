//! Cold-hit experiment — out-of-core (memory-mapped) serving versus owned
//! snapshot decode versus a cold rebuild.
//!
//! Two parts, both recorded in `reports/coldhit.json` (and `--out`, which
//! CI points at `BENCH_9.json`):
//!
//! **Per tier** — the Pt-En dataset is generated once and a v4
//! (directly-addressable) snapshot written; then three ways of serving the
//! first request on a cold corpus are timed, dataset generation excluded:
//!
//! * **rebuild** — construct the engine and compute every artifact;
//! * **decode** — owned decode of the v4 file (`EngineSnapshot::load`),
//!   restore, align one type;
//! * **mapped** — zero-copy open of the same file
//!   ([`MappedSnapshot::open`]), restore, align one type — the similarity
//!   channels of that type page in lazily, everything else stays mapped.
//!
//! **Budget scenario** — a [`Registry`] with `--max-resident-mb 1` serves a
//! corpus set whose v4 snapshots total ≥10× the budget. Every request is a
//! cold hit (the budget keeps at most one session's working set resident),
//! timed end-to-end through the registry (dataset generation included —
//! the comparator, a plain owned snapshot load, includes it too). The run
//! fails loudly unless the resident-bytes ceiling is honored, the corpus
//! set really is ≥10× the budget, and cold-hit p50 ≤ 2× the owned
//! snapshot-load p50 — the acceptance bar of the out-of-core tentpole.
//!
//! ```text
//! cargo run --release -p wiki-bench --bin coldhit [-- --tiers tiny,small,medium --runs N --smoke --out BENCH_9.json]
//! ```

use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

use wiki_bench::{format_table, tier_config, tier_names, write_report};
use wiki_corpus::{Dataset, Language, SyntheticConfig};
use wiki_serve::registry::{CorpusSpec, Registry};
use wikimatch::snapshot::EngineSnapshot;
use wikimatch::{ComputeMode, MappedSnapshot, MatchEngine};

/// How many small-tier corpora the budget scenario registers. Sized so
/// the v4 snapshot set comfortably clears 10× the 1 MB budget (a small
/// snapshot is ~2 MiB in the direct encoding).
const BUDGET_CORPORA: usize = 10;
const BUDGET_MB: u64 = 1;

/// One tier's cold-path measurements (medians of `runs`).
#[derive(serde::Serialize)]
struct TierResult {
    tier: String,
    snapshot_bytes: u64,
    rebuild_ms: f64,
    decode_ms: f64,
    mapped_ms: f64,
    /// mapped / decode — below 1.0 the map out-runs the owned decode.
    mapped_vs_decode: f64,
}

/// The budget scenario's outcome.
#[derive(serde::Serialize)]
struct BudgetResult {
    budget_mb: u64,
    corpora: usize,
    /// Total bytes of v4 snapshots on disk backing the corpus set.
    snapshot_bytes_total: u64,
    /// snapshot_bytes_total / budget bytes — must be ≥ 10.
    coverage_x: f64,
    cold_hits: usize,
    cold_hit_p50_ms: f64,
    owned_load_p50_ms: f64,
    /// cold_hit_p50 / owned_load_p50 — must be ≤ 2.
    ratio: f64,
    resident_bytes_final: u64,
    resident_final: usize,
    ceiling_honored: bool,
}

#[derive(serde::Serialize)]
struct Report {
    bench: String,
    pr: u32,
    note: String,
    runs: usize,
    tiers: Vec<TierResult>,
    budget: BudgetResult,
}

fn median(mut samples: Vec<Duration>) -> Duration {
    samples.sort();
    samples[samples.len() / 2]
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn flag_value(args: &[String], i: &mut usize, flag: &str) -> String {
    *i += 1;
    args.get(*i).cloned().unwrap_or_else(|| {
        eprintln!("{flag} requires a value");
        std::process::exit(2);
    })
}

/// Asserts every similarity channel of every type is bit-identical between
/// the two engines — the golden-hash pin that makes the mapped timing a
/// *correct* shortcut rather than a different answer served faster.
fn assert_bit_identical(reference: &MatchEngine, candidate: &MatchEngine, label: &str) {
    for pairing in &reference.dataset().types.clone() {
        let a = reference.similarity(&pairing.type_id).expect("reference");
        let b = candidate.similarity(&pairing.type_id).expect("candidate");
        assert_eq!(
            a.pairs().len(),
            b.pairs().len(),
            "{label} {}",
            pairing.type_id
        );
        for (x, y) in a.pairs().iter().zip(b.pairs()) {
            assert_eq!((x.p, x.q), (y.p, y.q), "{label} {}", pairing.type_id);
            assert_eq!(
                x.vsim.to_bits(),
                y.vsim.to_bits(),
                "{label} {}",
                pairing.type_id
            );
            assert_eq!(
                x.lsim.to_bits(),
                y.lsim.to_bits(),
                "{label} {}",
                pairing.type_id
            );
            assert_eq!(
                x.lsi.to_bits(),
                y.lsi.to_bits(),
                "{label} {}",
                pairing.type_id
            );
        }
    }
}

/// Per-tier comparison: rebuild vs owned decode vs mapped open, each ending
/// in one served alignment of the first entity type.
fn run_tier(tier: &str, config: &SyntheticConfig, dir: &Path, runs: usize) -> TierResult {
    let dataset = Arc::new(Dataset::pt_en(config));
    let first_type = dataset.types[0].type_id.clone();

    // Rebuild: dictionary + every artifact + one alignment.
    let mut rebuild_samples = Vec::with_capacity(runs);
    let mut reference = None;
    for _ in 0..runs {
        let start = Instant::now();
        let engine = MatchEngine::new(Arc::clone(&dataset));
        engine.prepare_all();
        engine.align(&first_type).expect("type aligns");
        rebuild_samples.push(start.elapsed());
        reference = Some(engine);
    }
    let reference = reference.expect("at least one rebuild");

    let path = dir.join(format!("pt-{tier}.snap"));
    EngineSnapshot::capture(&reference)
        .expect("exact-mode engine captures")
        .save_direct(&path)
        .expect("v4 snapshot saves");
    let snapshot_bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);

    // One untimed warmup faults the file into the page cache for both
    // loaders, modelling a daemon restarting over a recently written tier.
    drop(EngineSnapshot::load(&path).expect("warmup load"));

    // Owned decode: full parse + heap allocation, then one alignment.
    let mut decode_samples = Vec::with_capacity(runs);
    let mut owned = None;
    for _ in 0..runs {
        let start = Instant::now();
        let snapshot = EngineSnapshot::load(&path).expect("owned load");
        let engine = MatchEngine::builder(Arc::clone(&dataset))
            .build_from_snapshot(snapshot)
            .expect("owned restore");
        engine.align(&first_type).expect("type aligns");
        decode_samples.push(start.elapsed());
        owned = Some(engine);
    }
    let owned = owned.expect("at least one decode");

    // Mapped open: validate + borrow, page in only the aligned type.
    let mut mapped_samples = Vec::with_capacity(runs);
    let mut mapped = None;
    for _ in 0..runs {
        let start = Instant::now();
        let snapshot = MappedSnapshot::open(&path).expect("mapped open");
        let engine = MatchEngine::builder(Arc::clone(&dataset))
            .build_from_snapshot(snapshot.snapshot)
            .expect("mapped restore");
        engine.align(&first_type).expect("type aligns");
        mapped_samples.push(start.elapsed());
        mapped = Some(engine);
    }
    let mapped = mapped.expect("at least one mapped open");

    // Neither restore path may rebuild artifacts, and both must serve the
    // reference bits (this walk also materializes every mapped channel).
    assert_eq!(owned.stats().artifact_builds, 0, "owned decode rebuilt");
    assert_eq!(mapped.stats().artifact_builds, 0, "mapped open rebuilt");
    assert_bit_identical(&reference, &owned, "owned");
    assert_bit_identical(&reference, &mapped, "mapped");
    assert!(mapped.stats().page_ins > 0, "mapped engine never paged in");

    let decode = median(decode_samples);
    let mapped_cold = median(mapped_samples);
    TierResult {
        tier: tier.to_string(),
        snapshot_bytes,
        rebuild_ms: ms(median(rebuild_samples)),
        decode_ms: ms(decode),
        mapped_ms: ms(mapped_cold),
        mapped_vs_decode: mapped_cold.as_secs_f64() / decode.as_secs_f64().max(1e-9),
    }
}

/// The serving-tier scenario: a 1 MB resident budget over a corpus set
/// ≥10× larger, every request a cold hit through the registry.
fn run_budget(dir: &Path, runs: usize) -> BudgetResult {
    let small = tier_config("small").expect("small tier exists");
    let specs: Vec<CorpusSpec> = (0..BUDGET_CORPORA)
        .map(|i| CorpusSpec {
            name: format!("ooc-small-{i}"),
            language: Language::Pt,
            config: SyntheticConfig {
                seed: 9_000 + i as u64,
                ..small
            },
        })
        .collect();

    let snapshot_dir = dir.join("budget");
    let registry = Registry::new(4, ComputeMode::default())
        .with_snapshot_dir(&snapshot_dir)
        .with_resident_budget_mb(BUDGET_MB);
    registry.register_all(specs.iter().cloned());

    // Seed pass: warm writes every corpus' v4 snapshot through to disk
    // (untimed — this is the offline build, not the serving path).
    for spec in &specs {
        registry.warm(&spec.name).expect("warm seeds the disk tier");
    }
    let snapshot_bytes_total: u64 = std::fs::read_dir(&snapshot_dir)
        .expect("snapshot dir listing")
        .flatten()
        .filter(|e| e.path().extension().is_some_and(|x| x == "snap"))
        .filter_map(|e| e.metadata().ok())
        .map(|m| m.len())
        .sum();
    let budget_bytes = BUDGET_MB * 1024 * 1024;
    let coverage_x = snapshot_bytes_total as f64 / budget_bytes as f64;

    // Serve loop: round-robin over the set keeps every access cold (the
    // budget holds at most one working set resident). Timed end-to-end —
    // dataset generation, mapped open, restore, one alignment.
    let mut cold_samples = Vec::with_capacity(runs * specs.len());
    for _ in 0..runs {
        for spec in &specs {
            let start = Instant::now();
            let engine = registry.engine(&spec.name).expect("cold hit serves");
            engine.align("film").expect("film aligns");
            cold_samples.push(start.elapsed());
            assert_eq!(
                engine.stats().artifact_builds,
                0,
                "{} cold hit rebuilt artifacts instead of mapping",
                spec.name
            );
        }
    }
    let cold_hits = cold_samples.len();

    // The budget is enforced on access, so the materialization done by the
    // *last* alignment hasn't been weighed yet; one settling access lets
    // the registry enforce against the full working set before we read it.
    registry.corpus(&specs[0].name).expect("settling access");
    let stats = registry.stats();
    let ceiling_honored = stats.resident_bytes <= budget_bytes || stats.resident <= 1;
    let loads: u64 = stats.corpora.iter().map(|c| c.snapshot_loads).sum();
    assert!(
        loads >= cold_hits as u64,
        "cold hits were not snapshot loads"
    );
    assert!(stats.page_ins > 0, "budget scenario never paged in");

    // Comparator: the same end-to-end work with a plain owned snapshot
    // load — dataset generation + v3/v4 decode + restore + one alignment.
    let mut owned_samples = Vec::with_capacity(runs * specs.len());
    let mut checked = false;
    for _ in 0..runs {
        for spec in &specs {
            let path = snapshot_dir.join(format!("{}.snap", spec.name));
            let start = Instant::now();
            let dataset = Arc::new(spec.dataset());
            let snapshot = EngineSnapshot::load(&path).expect("owned load");
            let engine = MatchEngine::builder(Arc::clone(&dataset))
                .build_from_snapshot(snapshot)
                .expect("owned restore");
            engine.align("film").expect("film aligns");
            owned_samples.push(start.elapsed());
            // One golden-hash spot check: what the budgeted registry
            // serves is bit-identical to the owned load.
            if !checked {
                checked = true;
                let served = registry.engine(&spec.name).expect("cold hit serves");
                assert_bit_identical(&engine, &served, &spec.name);
            }
        }
    }

    let cold = median(cold_samples);
    let owned = median(owned_samples);
    BudgetResult {
        budget_mb: BUDGET_MB,
        corpora: specs.len(),
        snapshot_bytes_total,
        coverage_x,
        cold_hits,
        cold_hit_p50_ms: ms(cold),
        owned_load_p50_ms: ms(owned),
        ratio: cold.as_secs_f64() / owned.as_secs_f64().max(1e-9),
        resident_bytes_final: stats.resident_bytes,
        resident_final: stats.resident,
        ceiling_honored,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut tiers = "tiny,small,medium".to_string();
    let mut runs: usize = 3;
    let mut out: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--tiers" => tiers = flag_value(&args, &mut i, "--tiers"),
            "--runs" => {
                runs = flag_value(&args, &mut i, "--runs")
                    .parse()
                    .unwrap_or_else(|_| {
                        eprintln!("--runs takes a positive integer");
                        std::process::exit(2);
                    })
            }
            "--smoke" => {
                tiers = "tiny,medium".to_string();
                runs = 1;
            }
            "--out" => out = Some(flag_value(&args, &mut i, "--out")),
            other => {
                eprintln!("unknown flag {other:?}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let runs = runs.max(1);

    let dir = std::env::temp_dir().join(format!("wm-coldhit-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");

    let mut results: Vec<TierResult> = Vec::new();
    for tier in tiers.split(',').map(str::trim).filter(|t| !t.is_empty()) {
        let Some(config) = tier_config(tier) else {
            eprintln!("unknown tier {tier:?}; expected {}", tier_names());
            std::process::exit(2);
        };
        results.push(run_tier(tier, &config, &dir, runs));
    }

    let budget = run_budget(&dir, runs);
    let _ = std::fs::remove_dir_all(&dir);

    let header: Vec<String> = [
        "tier",
        "v4 size",
        "rebuild",
        "decode",
        "mapped",
        "mapped/decode",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.tier.clone(),
                format!("{:.1} MiB", r.snapshot_bytes as f64 / (1024.0 * 1024.0)),
                format!("{:.1} ms", r.rebuild_ms),
                format!("{:.1} ms", r.decode_ms),
                format!("{:.1} ms", r.mapped_ms),
                format!("{:.2}x", r.mapped_vs_decode),
            ]
        })
        .collect();
    println!("=== Cold hit — rebuild vs owned decode vs mapped open (Pt-En, median of runs) ===");
    println!("{}", format_table(&header, &rows));
    println!(
        "budget scenario: {} corpora, {:.1} MiB of v4 snapshots over a {} MB budget \
         ({:.1}x coverage); {} cold hits, p50 {:.1} ms vs owned-load p50 {:.1} ms \
         ({:.2}x); final resident {} session(s) holding {} bytes",
        budget.corpora,
        budget.snapshot_bytes_total as f64 / (1024.0 * 1024.0),
        budget.budget_mb,
        budget.coverage_x,
        budget.cold_hits,
        budget.cold_hit_p50_ms,
        budget.owned_load_p50_ms,
        budget.ratio,
        budget.resident_final,
        budget.resident_bytes_final,
    );

    // The tentpole's acceptance bars.
    let mut failed = false;
    if budget.coverage_x < 10.0 {
        eprintln!(
            "FAIL: corpus set is only {:.1}x the resident budget (target: ≥10x)",
            budget.coverage_x
        );
        failed = true;
    }
    if !budget.ceiling_honored {
        eprintln!(
            "FAIL: {} resident sessions hold {} bytes over the {} MB budget",
            budget.resident_final, budget.resident_bytes_final, budget.budget_mb
        );
        failed = true;
    }
    if budget.ratio > 2.0 {
        eprintln!(
            "FAIL: cold-hit p50 is {:.2}x the owned snapshot-load p50 (target: ≤2x)",
            budget.ratio
        );
        failed = true;
    }

    let report = Report {
        bench: "coldhit".to_string(),
        pr: 9,
        note: "Out-of-core serving: mapped cold hits vs owned decode vs rebuild; \
               1 MB resident budget over a ≥10x corpus set"
            .to_string(),
        runs,
        tiers: results,
        budget,
    };
    write_report("coldhit", &report);
    if let Some(path) = out {
        let json = serde_json::to_string_pretty(&report).expect("report serializes");
        std::fs::write(&path, json + "\n").expect("write --out report");
        println!("wrote {path}");
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "cold-hit p50 within {:.2}x of owned load over a {:.1}x-budget corpus set — OK",
        report.budget.ratio, report.budget.coverage_x
    );
}
