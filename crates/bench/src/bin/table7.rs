//! Table 7 — mean average precision of the candidate orderings produced by
//! LSI and the alternative correlation measures X1, X2, X3 (plus a random
//! ordering).

mod common;

use wiki_bench::{format_table, write_report};

fn main() {
    let ctx = common::context_from_args();
    let mut report = Vec::new();
    println!("=== Table 7 — MAP for different sources of correlation ===");
    let header: Vec<String> = ["pair", "LSI", "X1", "X2", "X3", "Random"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut rows = Vec::new();
    for pair in common::PAIRS {
        let row = ctx.table7(pair);
        let mut cells = vec![pair.to_string()];
        for label in ["LSI", "X1", "X2", "X3", "Random"] {
            let value = row
                .map
                .iter()
                .find(|(l, _)| l == label)
                .map(|(_, v)| *v)
                .unwrap_or(0.0);
            cells.push(format!("{value:.2}"));
        }
        rows.push(cells);
        report.push(row);
    }
    println!("{}", format_table(&header, &rows));
    write_report("table7", &report);
}
