//! Figure 4 — cumulative gain of the top-k answers for the multilingual
//! query case study (Pt, Pt→En, Vn, Vn→En).

mod common;

use wiki_bench::write_report;

fn main() {
    let ctx = common::context_from_args();
    let mut report = Vec::new();
    println!("=== Figure 4 — cumulative gain of k answers ===");
    for pair in common::PAIRS {
        let curves = ctx.figure4(pair);
        for curve in &curves {
            let series: Vec<String> = curve
                .curve
                .iter()
                .enumerate()
                .filter(|(i, _)| (i + 1) % 4 == 0 || *i == 0)
                .map(|(i, cg)| format!("k={:<2} {:>7.1}", i + 1, cg))
                .collect();
            println!(
                "{:<8} total CG {:>8.1}  answers {:<4} relaxed {:<3} | {}",
                curve.label,
                curve.total_gain(),
                curve.answers,
                curve.relaxed_constraints,
                series.join("  ")
            );
        }
        report.push((pair.to_string(), curves));
    }
    write_report("figure4", &report);
}
