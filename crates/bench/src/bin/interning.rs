//! Interning experiment — string-keyed versus interned similarity pipeline
//! across the synthetic scale tiers, the record behind `BENCH_5.json`.
//!
//! For each tier the Pt-En film schema is built once, then three things are
//! measured:
//!
//! * **full table build** — `SimilarityTable` construction in both compute
//!   modes on the interned representation (the end-to-end number whose
//!   PR 2 string-keyed baseline at the `medium` tier was 53.8 ms
//!   single-core);
//! * **cosine kernel** — `vsim` + `lsim` over every candidate pair, once on
//!   the schema's shared-arena vectors (u32 id compares) and once on
//!   detached per-vector arenas (the resolved-string compare walk — exactly
//!   the work the string-keyed representation did). Both produce
//!   bit-identical sums; the gap is pure comparison cost;
//! * **snapshot footprint** — encoded bytes and encode/decode time of the
//!   film type, plus the byte count the retired version-1 format would have
//!   spent re-spelling every term per vector occurrence.
//!
//! ```text
//! cargo run --release -p wiki-bench --bin interning \
//!     [-- --tiers tiny,small,medium[,large,xlarge] --runs N --smoke --out BENCH_5.json]
//! ```
//!
//! `--smoke` (tiny only, one run) is the CI guard that keeps this binary
//! from rotting; `--out` additionally writes the JSON to an explicit path
//! (the checked-in `BENCH_5.json` is produced with `--out BENCH_5.json`
//! under `taskset -c 0` for a stable single-core number).

use std::sync::Arc;
use std::time::{Duration, Instant};

use wiki_bench::kernels::{cosine_sweep, SweepInput};
use wiki_bench::report::f2;
use wiki_bench::{format_table, tier_config, tier_names, write_report};
use wiki_corpus::synthetic::SyntheticGenerator;
use wiki_corpus::{Dataset, Language, SyntheticConfig};
use wiki_linalg::LsiConfig;
use wiki_translate::TitleDictionary;
use wikimatch::schema::CandidateIndex;
use wikimatch::snapshot::EngineSnapshot;
use wikimatch::{ComputeMode, DualSchema, MatchEngine, SimilarityTable};

/// One tier's measurements, serialized into `reports/interning.json` (and,
/// via `--out`, the repo-root `BENCH_5.json`).
#[derive(serde::Serialize)]
struct TierResult {
    tier: String,
    attribute_groups: usize,
    candidate_pairs: usize,
    pruned_build_ms: f64,
    dense_build_ms: f64,
    interned_cosines_ms: f64,
    string_cosines_ms: f64,
    cosine_speedup: f64,
    snapshot_bytes: u64,
    snapshot_v1_vector_bytes: u64,
    snapshot_v2_vector_bytes: u64,
    snapshot_encode_ms: f64,
    snapshot_decode_ms: f64,
}

/// The whole run, as checked in at the repo root.
#[derive(serde::Serialize)]
struct Report {
    bench: String,
    pr: u32,
    note: String,
    baseline_pr2_medium_pruned_ms: f64,
    medium_pruned_ms: Option<f64>,
    medium_speedup_vs_pr2: Option<f64>,
    runs: usize,
    tiers: Vec<TierResult>,
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Best-of-N wall time of `f` in milliseconds (best-of, not mean: the
/// quantity of interest is the cost of the work, not of the noise).
fn time_best<T>(runs: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..runs {
        let t = Instant::now();
        last = Some(f());
        best = best.min(ms(t.elapsed()));
    }
    (best, last.expect("runs >= 1"))
}

fn measure_tier(tier: &str, config: &SyntheticConfig, runs: usize) -> TierResult {
    let generator = SyntheticGenerator::new(*config);
    let (corpus, _) = generator.generate_pair(Language::Pt);
    let dictionary = TitleDictionary::from_corpus(&corpus, &Language::Pt, &Language::En);
    let schema = DualSchema::build(&corpus, &Language::Pt, "Filme", "Film", &dictionary);
    let n = schema.len();

    let (pruned_build_ms, _table) = time_best(runs, || {
        SimilarityTable::compute_with(&schema, LsiConfig::default(), ComputeMode::Pruned)
    });
    let (dense_build_ms, _) = time_best(runs, || {
        SimilarityTable::compute_with(&schema, LsiConfig::default(), ComputeMode::Dense)
    });

    // Cosine kernel: shared arena (interned) vs detached arenas (string
    // compares), over identical candidate sets — the shared sweep from
    // `wiki_bench::kernels`, the same code the criterion bench times.
    let index = CandidateIndex::build(&schema);
    let interned = SweepInput::interned(&schema);
    let detached = SweepInput::detached(&schema);

    let (interned_cosines_ms, interned_acc) = time_best(runs, || cosine_sweep(&index, &interned));
    let (string_cosines_ms, string_acc) = time_best(runs, || cosine_sweep(&index, &detached));
    assert_eq!(
        interned_acc.to_bits(),
        string_acc.to_bits(),
        "interned and string cosine walks must agree bit for bit"
    );

    // Snapshot footprint of the film type alone.
    let dataset = Dataset::pt_en(config);
    let engine = MatchEngine::builder(Arc::new(dataset)).build();
    engine.prepared("film").expect("film type exists");
    let snapshot = EngineSnapshot::capture(&engine).expect("exact-mode engine captures");
    let (snapshot_encode_ms, bytes) = time_best(runs, || snapshot.to_bytes());
    let (snapshot_decode_ms, decoded) =
        time_best(runs, || EngineSnapshot::from_bytes(&bytes).unwrap());
    assert_eq!(decoded.type_count(), 1);

    // What the two formats spend on the vector sections: v1 re-spelled
    // every term per entry (4-byte length + term bytes + 8-byte weight),
    // v2 spells each term once in the arena table and stores entries as
    // varint delta + weight bits.
    let engine_schema = engine.schema("film").expect("film type exists");
    let mut v1_vector_bytes = 0u64;
    let mut v2_vector_bytes = engine_schema
        .arena()
        .terms()
        .map(|t| 4 + t.len() as u64)
        .sum::<u64>();
    for attr in &engine_schema.attributes {
        for vector in [
            &attr.values,
            &attr.translated_values,
            &attr.raw_values,
            &attr.translated_raw_values,
            &attr.links,
        ] {
            v1_vector_bytes += 8; // entry count
            v2_vector_bytes += 8;
            for (term, _) in vector.iter() {
                v1_vector_bytes += 4 + term.len() as u64 + 8;
            }
            let mut prev = 0u32;
            for &(id, _) in vector.id_entries() {
                let delta = id - prev;
                let varint_len = u64::from((32 - (delta | 1).leading_zeros()).div_ceil(7));
                v2_vector_bytes += varint_len + 8;
                prev = id;
            }
        }
    }

    TierResult {
        tier: tier.to_string(),
        attribute_groups: n,
        candidate_pairs: index.value_candidates() + index.link_candidates(),
        pruned_build_ms,
        dense_build_ms,
        interned_cosines_ms,
        string_cosines_ms,
        cosine_speedup: string_cosines_ms / interned_cosines_ms,
        snapshot_bytes: bytes.len() as u64,
        snapshot_v1_vector_bytes: v1_vector_bytes,
        snapshot_v2_vector_bytes: v2_vector_bytes,
        snapshot_encode_ms,
        snapshot_decode_ms,
    }
}

/// The next argument as a flag's value; a trailing flag without one is a
/// usage error, not an index-out-of-bounds panic.
fn flag_value(args: &[String], i: &mut usize, flag: &str) -> String {
    *i += 1;
    args.get(*i).cloned().unwrap_or_else(|| {
        eprintln!("{flag} needs a value; see the module docs");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut tiers = vec![
        "tiny".to_string(),
        "small".to_string(),
        "medium".to_string(),
    ];
    let mut runs = 5usize;
    let mut out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--tiers" => {
                tiers = flag_value(&args, &mut i, "--tiers")
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .collect();
            }
            "--runs" => {
                runs = flag_value(&args, &mut i, "--runs")
                    .parse()
                    .expect("--runs takes an integer");
            }
            "--smoke" => {
                tiers = vec!["tiny".to_string()];
                runs = 1;
            }
            "--out" => {
                out = Some(flag_value(&args, &mut i, "--out"));
            }
            other => {
                eprintln!("unknown flag {other}; see the module docs");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let mut results = Vec::new();
    for tier in &tiers {
        let config = tier_config(tier).unwrap_or_else(|| {
            eprintln!("unknown tier {tier:?} ({})", tier_names());
            std::process::exit(2);
        });
        eprintln!("measuring tier {tier} ({runs} runs)...");
        results.push(measure_tier(tier, &config, runs));
    }

    let header: Vec<String> = [
        "tier",
        "attrs",
        "pruned ms",
        "dense ms",
        "interned cos",
        "string cos",
        "cos ×",
        "snap KiB",
    ]
    .iter()
    .map(ToString::to_string)
    .collect();
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.tier.clone(),
                r.attribute_groups.to_string(),
                f2(r.pruned_build_ms),
                f2(r.dense_build_ms),
                f2(r.interned_cosines_ms),
                f2(r.string_cosines_ms),
                f2(r.cosine_speedup),
                (r.snapshot_bytes / 1024).to_string(),
            ]
        })
        .collect();
    println!("{}", format_table(&header, &rows));

    const PR2_MEDIUM_MS: f64 = 53.8;
    let medium = results.iter().find(|r| r.tier == "medium");
    if let Some(medium) = medium {
        println!(
            "medium pruned build: {} ms vs PR 2 baseline {PR2_MEDIUM_MS} ms  →  {}× speedup",
            f2(medium.pruned_build_ms),
            f2(PR2_MEDIUM_MS / medium.pruned_build_ms),
        );
    }

    let report = Report {
        bench: "interning".to_string(),
        pr: 5,
        note: "single-core (taskset -c 0) pruned/dense = full SimilarityTable build; \
               cosine rows compare the u32-id merge walk against the resolved-string \
               walk over identical candidate pairs (bit-identical sums asserted in-run); \
               snapshot v1 bytes are the vector-section cost the string-keyed format \
               would have paid"
            .to_string(),
        baseline_pr2_medium_pruned_ms: PR2_MEDIUM_MS,
        medium_pruned_ms: medium.map(|m| m.pruned_build_ms),
        medium_speedup_vs_pr2: medium.map(|m| PR2_MEDIUM_MS / m.pruned_build_ms),
        runs,
        tiers: results,
    };
    write_report("interning", &report);
    if let Some(path) = out {
        match serde_json::to_string_pretty(&report) {
            Ok(json) => std::fs::write(&path, json + "\n").expect("write --out file"),
            Err(err) => eprintln!("warning: cannot serialise report: {err}"),
        }
    }
}
