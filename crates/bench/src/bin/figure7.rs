//! Figure 7 — precision, recall and F-measure of the COMA++-style matcher
//! configurations (N, I, NI, N+G, I+D, N+D, NG+ID).

mod common;

use wiki_bench::report::f2;
use wiki_bench::{format_table, write_report};

fn main() {
    let ctx = common::context_from_args();
    let mut report = Vec::new();
    println!("=== Figure 7 — COMA++ configurations ===");
    let header: Vec<String> = ["pair", "configuration", "P", "R", "F"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut rows = Vec::new();
    for pair in common::PAIRS {
        for point in ctx.figure7(pair) {
            rows.push(vec![
                pair.to_string(),
                point.configuration.clone(),
                f2(point.scores.precision),
                f2(point.scores.recall),
                f2(point.scores.f1),
            ]);
            report.push(point);
        }
    }
    println!("{}", format_table(&header, &rows));
    write_report("figure7", &report);
}
