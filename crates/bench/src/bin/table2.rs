//! Table 2 — weighted precision, recall and F-measure of WikiMatch, Bouma,
//! COMA++ and LSI for every entity type of both language pairs.

mod common;

use wiki_bench::report::f2;
use wiki_bench::{format_table, write_report};

fn main() {
    let ctx = common::context_from_args();
    let mut reports = Vec::new();
    for pair in common::PAIRS {
        let table = ctx.table2(pair);
        println!("\n=== Table 2 — {pair} ===");
        let header: Vec<String> = [
            "type", "WM P", "WM R", "WM F", "Bouma P", "Bouma R", "Bouma F", "COMA P", "COMA R",
            "COMA F", "LSI P", "LSI R", "LSI F",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let mut rows = Vec::new();
        for row in table.rows.iter().chain(std::iter::once(&table.average)) {
            rows.push(vec![
                row.type_id.clone(),
                f2(row.wikimatch.precision),
                f2(row.wikimatch.recall),
                f2(row.wikimatch.f1),
                f2(row.bouma.precision),
                f2(row.bouma.recall),
                f2(row.bouma.f1),
                f2(row.coma.precision),
                f2(row.coma.recall),
                f2(row.coma.f1),
                f2(row.lsi.precision),
                f2(row.lsi.recall),
                f2(row.lsi.f1),
            ]);
        }
        println!("{}", format_table(&header, &rows));
        reports.push(table);
    }
    write_report("table2", &reports);
}
