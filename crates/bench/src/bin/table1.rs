//! Table 1 — examples of alignments identified by WikiMatch.

mod common;

use wiki_bench::write_report;

fn main() {
    let ctx = common::context_from_args();
    let samples = ctx.table1();
    println!("=== Table 1 — example alignments identified by WikiMatch ===");
    for (pair, type_id, pairs) in &samples {
        println!("\n{pair} / {type_id}:");
        for (other, en) in pairs.iter().take(12) {
            println!("  {other:<28} ~ {en}");
        }
        if pairs.len() > 12 {
            println!("  ... ({} correspondences in total)", pairs.len());
        }
    }
    write_report("table1", &samples);
}
