//! Table 3 — contribution of the different WikiMatch components
//! (ablation study), including the `WikiMatch*` variants plotted in
//! Figure 3.

mod common;

use wiki_bench::report::f2;
use wiki_bench::{format_table, write_report};

fn main() {
    let ctx = common::context_from_args();
    let rows = ctx.table3();
    println!("=== Table 3 — contribution of different components ===");
    let header: Vec<String> = [
        "configuration",
        "Pt P",
        "Pt R",
        "Pt F",
        "Vn P",
        "Vn R",
        "Vn F",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            vec![
                row.configuration.clone(),
                f2(row.pt.precision),
                f2(row.pt.recall),
                f2(row.pt.f1),
                f2(row.vn.precision),
                f2(row.vn.recall),
                f2(row.vn.f1),
            ]
        })
        .collect();
    println!("{}", format_table(&header, &table));

    // The "% change without" rows of the paper's Table 3.
    if let Some(base) = rows.first() {
        println!("% change relative to full WikiMatch (F-measure):");
        for row in rows.iter().skip(1) {
            let pt = if base.pt.f1 > 0.0 {
                100.0 * (row.pt.f1 - base.pt.f1) / base.pt.f1
            } else {
                0.0
            };
            let vn = if base.vn.f1 > 0.0 {
                100.0 * (row.vn.f1 - base.vn.f1) / base.vn.f1
            } else {
                0.0
            };
            println!(
                "  {:<32} Pt {pt:>+6.0}%   Vn {vn:>+6.0}%",
                row.configuration
            );
        }
    }
    write_report("table3", &rows);
}
