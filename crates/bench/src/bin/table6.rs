//! Table 6 — macro-averaged precision, recall and F-measure of the four
//! approaches.

mod common;

use wiki_bench::report::f2;
use wiki_bench::{format_table, write_report};

fn main() {
    let ctx = common::context_from_args();
    let mut report = Vec::new();
    println!("=== Table 6 — macro-averaging results ===");
    let header: Vec<String> = ["pair", "approach", "P", "R", "F"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut rows = Vec::new();
    for pair in common::PAIRS {
        let results = ctx.table6(pair);
        for (approach, scores) in &results {
            rows.push(vec![
                pair.to_string(),
                approach.clone(),
                f2(scores.precision),
                f2(scores.recall),
                f2(scores.f1),
            ]);
        }
        report.push((pair.to_string(), results));
    }
    println!("{}", format_table(&header, &rows));
    write_report("table6", &report);
}
