//! Table 5 — cross-language attribute overlap of dual infoboxes per entity
//! type.

mod common;

use wiki_bench::{format_table, write_report};

fn main() {
    let ctx = common::context_from_args();
    let mut report = Vec::new();
    println!("=== Table 5 — overlap in infoboxes ===");
    for pair in common::PAIRS {
        let overlaps = ctx.table5(pair);
        let header = vec!["type".to_string(), "overlap".to_string()];
        let rows: Vec<Vec<String>> = overlaps
            .iter()
            .map(|(type_id, overlap)| vec![type_id.clone(), format!("{:.0}%", overlap * 100.0)])
            .collect();
        println!("\n{pair}:");
        println!("{}", format_table(&header, &rows));
        report.push((pair.to_string(), overlaps));
    }
    write_report("table5", &report);
}
