//! Helpers shared by the reproduction binaries.

use wiki_bench::{ExperimentContext, StandardDatasets};

/// Builds the experiment context, honouring a `--quick` command-line flag
/// that switches to the reduced datasets (useful for smoke runs).
pub fn context_from_args() -> ExperimentContext {
    let quick = std::env::args().any(|a| a == "--quick");
    if quick {
        eprintln!("(running on the reduced --quick datasets)");
        ExperimentContext::new(StandardDatasets::quick())
    } else {
        ExperimentContext::new(StandardDatasets::standard())
    }
}

/// The two language-pair names in report order.
///
/// Not every binary iterates over both pairs (e.g. `table1` picks its own
/// sample), hence the allow.
#[allow(dead_code)]
pub const PAIRS: [&str; 2] = ["Portuguese-English", "Vietnamese-English"];
