//! Helpers shared by the reproduction binaries.

use wiki_bench::{ExperimentContext, StandardDatasets};
use wikimatch::ComputeMode;

/// Builds the experiment context from the command line:
///
/// * `--quick` switches to the reduced datasets (useful for smoke runs);
/// * `--mode {pruned,dense}` selects the similarity-table compute mode
///   instead of hard-coding the default (both modes are bit-identical;
///   `dense` is the single-threaded reference pass).
pub fn context_from_args() -> ExperimentContext {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let mode = match args.iter().position(|a| a == "--mode") {
        Some(i) => {
            let value = args.get(i + 1).map(String::as_str).unwrap_or("");
            value.parse::<ComputeMode>().unwrap_or_else(|err| {
                eprintln!("--mode: {err}");
                std::process::exit(2);
            })
        }
        None => ComputeMode::default(),
    };
    if quick {
        eprintln!("(running on the reduced --quick datasets)");
    }
    if mode != ComputeMode::default() {
        eprintln!("(similarity tables computed in {mode} mode)");
    }
    let datasets = if quick {
        StandardDatasets::quick()
    } else {
        StandardDatasets::standard()
    };
    ExperimentContext::with_mode(datasets, mode)
}

/// The two language-pair names in report order.
///
/// Not every binary iterates over both pairs (e.g. `table1` picks its own
/// sample), hence the allow.
#[allow(dead_code)]
pub const PAIRS: [&str; 2] = ["Portuguese-English", "Vietnamese-English"];
