//! Observability-overhead experiment — warm-path `/align` latency with
//! the obs layer recording versus globally disabled, the record behind
//! `BENCH_8.json`.
//!
//! A [`MatchServer`] is booted in-process on an ephemeral port, the probe
//! corpus is warmed, and one keep-alive client replays per-type align
//! requests (the cached steady-state path) in alternating rounds:
//!
//! * **enabled** — the default: spans record into `wm_phase_seconds`,
//!   requests into `wm_request_seconds`, the access log evaluates its
//!   gate;
//! * **disabled** — `wiki_obs::set_enabled(false)`: spans are inert,
//!   histograms and logs skip, only the plain counters still count.
//!
//! The headline `overhead_percent` compares the best (minimum) per-round
//! client-side p50 of the two modes — best-of and median for the same
//! reason the other recording binaries use best-of wall times: the
//! quantity of interest is the cost of the instrumentation, not of
//! scheduler noise drifting across a multi-second run. The enabled
//! rounds are
//! additionally bracketed by `/metrics` scrapes, so the report carries
//! the server-side `wm_request_seconds{endpoint="align"}` p50/p99 bucket
//! bounds the same way `matchbench` prints them.
//!
//! ```text
//! cargo run --release -p wiki-bench --bin obs_overhead \
//!     [-- --tier medium --rounds N --requests N --smoke --out BENCH_8.json]
//! ```
//!
//! `--smoke` (tiny, 2 rounds × 50 requests) is the CI guard that keeps
//! this binary from rotting; the checked-in `BENCH_8.json` is produced
//! with `--out BENCH_8.json`.

use std::sync::Arc;
use std::time::Instant;

use wiki_bench::report::f2;
use wiki_bench::{format_table, write_report};
use wiki_corpus::Language;
use wiki_obs::expo::{self, HistogramScrape};
use wiki_serve::client::MatchClient;
use wiki_serve::protocol::AlignRequest;
use wiki_serve::registry::{CorpusSpec, Registry};
use wiki_serve::server::{MatchServer, ServerConfig};
use wikimatch::ComputeMode;

/// The whole run, serialized into `reports/obs_overhead.json` (and, via
/// `--out`, the repo-root `BENCH_8.json`).
#[derive(serde::Serialize)]
struct Report {
    bench: String,
    pr: u32,
    note: String,
    tier: String,
    rounds: usize,
    requests_per_round: usize,
    enabled_p50_us: f64,
    disabled_p50_us: f64,
    enabled_mean_us: f64,
    disabled_mean_us: f64,
    /// `(enabled_p50 / disabled_p50 - 1) * 100`; the acceptance bar is
    /// ≤ 2.0 on the warm align path.
    overhead_percent: f64,
    /// Align requests the server's histogram observed while enabled.
    server_requests: f64,
    /// Server-side p50 bucket upper bound, milliseconds.
    server_p50_upper_ms: f64,
    /// Server-side p99 bucket upper bound, milliseconds.
    server_p99_upper_ms: f64,
}

/// Replays `requests` warm per-type aligns on one keep-alive connection,
/// returning per-request wall latencies in nanoseconds.
fn align_batch(client: &mut MatchClient, corpus: &str, requests: usize) -> Vec<u64> {
    let body = AlignRequest {
        corpus: corpus.to_string(),
        type_id: Some("film".to_string()),
    };
    let mut latencies = Vec::with_capacity(requests);
    for _ in 0..requests {
        let begin = Instant::now();
        let response = client.post("/align", &body).expect("align request");
        assert!(
            response.is_success(),
            "align failed: HTTP {}: {}",
            response.status,
            response.body
        );
        latencies.push(begin.elapsed().as_nanos() as u64);
    }
    latencies
}

/// Nearest-rank percentile of `sorted` nanoseconds, in microseconds.
fn percentile_us(sorted: &[u64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx] as f64 / 1e3
}

fn mean_us(nanos: &[u64]) -> f64 {
    if nanos.is_empty() {
        return 0.0;
    }
    nanos.iter().sum::<u64>() as f64 / nanos.len() as f64 / 1e3
}

/// Scrapes `/metrics` and reassembles the align-endpoint request
/// histogram (empty when no align was observed yet).
fn scrape_align(client: &mut MatchClient) -> HistogramScrape {
    let response = client.get("/metrics").expect("scrape /metrics");
    assert!(response.is_success(), "HTTP {}", response.status);
    let samples = expo::parse_text(&response.body).expect("valid exposition");
    HistogramScrape::extract(&samples, "wm_request_seconds", Some(("endpoint", "align")))
        .unwrap_or_default()
}

/// The next argument as a flag's value; a trailing flag without one is a
/// usage error, not an index-out-of-bounds panic.
fn flag_value(args: &[String], i: &mut usize, flag: &str) -> String {
    *i += 1;
    args.get(*i).cloned().unwrap_or_else(|| {
        eprintln!("{flag} needs a value; see the module docs");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut tier = "medium".to_string();
    let mut rounds = 5usize;
    let mut requests = 400usize;
    let mut out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--tier" => tier = flag_value(&args, &mut i, "--tier"),
            "--rounds" => {
                rounds = flag_value(&args, &mut i, "--rounds")
                    .parse()
                    .expect("--rounds takes an integer");
            }
            "--requests" => {
                requests = flag_value(&args, &mut i, "--requests")
                    .parse()
                    .expect("--requests takes an integer");
            }
            "--smoke" => {
                tier = "tiny".to_string();
                rounds = 2;
                requests = 50;
            }
            "--out" => {
                out = Some(flag_value(&args, &mut i, "--out"));
            }
            other => {
                eprintln!("unknown flag {other}; see the module docs");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    assert!(
        rounds >= 1 && requests >= 1,
        "need at least one measurement"
    );

    let spec = CorpusSpec::tier(Language::Pt, &tier).unwrap_or_else(|| {
        eprintln!("unknown tier {tier:?}");
        std::process::exit(2);
    });
    let corpus = spec.name.clone();
    let registry = Arc::new(Registry::new(1, ComputeMode::default()));
    registry.register(spec);
    eprintln!("warming {corpus}...");
    registry.warm(&corpus).expect("warm probe corpus");
    let server = MatchServer::start(
        Arc::clone(&registry),
        ServerConfig {
            workers: 2,
            queue_depth: 64,
            ..ServerConfig::default()
        },
    )
    .expect("bind ephemeral server");
    let addr = server.addr().to_string();
    let mut client = MatchClient::new(addr.as_str()).expect("client");

    // Warm the connection, the response cache and the branch predictors
    // before anything is measured or scraped.
    align_batch(&mut client, &corpus, requests.min(100));

    // Alternating rounds, enabled first, so slow drift (thermal, page
    // cache) hits both modes evenly. The enabled rounds run inside one
    // scrape bracket; disabled rounds record nothing server-side.
    let baseline = scrape_align(&mut client);
    let mut enabled = Vec::new();
    let mut disabled = Vec::new();
    let mut enabled_p50 = f64::INFINITY;
    let mut disabled_p50 = f64::INFINITY;
    for round in 0..rounds {
        eprintln!(
            "round {}/{rounds} ({requests} requests per mode)...",
            round + 1
        );
        wiki_obs::set_enabled(true);
        let mut batch = align_batch(&mut client, &corpus, requests);
        batch.sort_unstable();
        enabled_p50 = enabled_p50.min(percentile_us(&batch, 0.50));
        enabled.extend(batch);
        wiki_obs::set_enabled(false);
        let mut batch = align_batch(&mut client, &corpus, requests);
        batch.sort_unstable();
        disabled_p50 = disabled_p50.min(percentile_us(&batch, 0.50));
        disabled.extend(batch);
        wiki_obs::set_enabled(true);
    }
    let delta = scrape_align(&mut client).delta_from(&baseline);
    server.shutdown();

    let overhead_percent = (enabled_p50 / disabled_p50 - 1.0) * 100.0;

    let header: Vec<String> = ["mode", "requests", "best p50 µs", "mean µs"]
        .iter()
        .map(ToString::to_string)
        .collect();
    let rows_out = vec![
        vec![
            "obs enabled".to_string(),
            enabled.len().to_string(),
            f2(enabled_p50),
            f2(mean_us(&enabled)),
        ],
        vec![
            "obs disabled".to_string(),
            disabled.len().to_string(),
            f2(disabled_p50),
            f2(mean_us(&disabled)),
        ],
    ];
    println!("{}", format_table(&header, &rows_out));
    println!("overhead (p50): {overhead_percent:+.2}%");
    println!(
        "server-side (enabled rounds): p50 ≤ {} ms  p99 ≤ {} ms  over {} aligns",
        f2(delta.quantile_upper(0.50).unwrap_or(f64::NAN) * 1e3),
        f2(delta.quantile_upper(0.99).unwrap_or(f64::NAN) * 1e3),
        delta.count
    );

    let report = Report {
        bench: "obs_overhead".to_string(),
        pr: 8,
        note: "in-process matchd on an ephemeral port, one keep-alive \
               client; warm per-type /align (cached steady state), \
               alternating rounds with the obs layer enabled vs \
               wiki_obs::set_enabled(false); overhead compares the best \
               (minimum) per-round client-side p50s; server-side \
               quantiles are \
               wm_request_seconds{endpoint=\"align\"} bucket upper bounds \
               from the /metrics scrape delta around the enabled rounds"
            .to_string(),
        tier,
        rounds,
        requests_per_round: requests,
        enabled_p50_us: enabled_p50,
        disabled_p50_us: disabled_p50,
        enabled_mean_us: mean_us(&enabled),
        disabled_mean_us: mean_us(&disabled),
        overhead_percent,
        server_requests: delta.count,
        server_p50_upper_ms: delta.quantile_upper(0.50).unwrap_or(f64::NAN) * 1e3,
        server_p99_upper_ms: delta.quantile_upper(0.99).unwrap_or(f64::NAN) * 1e3,
    };
    write_report("obs_overhead", &report);
    if let Some(path) = out {
        match serde_json::to_string_pretty(&report) {
            Ok(json) => std::fs::write(&path, json + "\n").expect("write --out file"),
            Err(err) => eprintln!("warning: cannot serialise report: {err}"),
        }
    }
}
