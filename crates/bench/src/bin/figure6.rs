//! Figure 6 — precision and recall of the LSI baseline for top-k
//! configurations (k = 1, 3, 5, 10).

mod common;

use wiki_bench::report::f2;
use wiki_bench::{format_table, write_report};

fn main() {
    let ctx = common::context_from_args();
    let mut report = Vec::new();
    println!("=== Figure 6 — top-k LSI results ===");
    let header: Vec<String> = ["pair", "k", "P", "R", "F"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut rows = Vec::new();
    for pair in common::PAIRS {
        for point in ctx.figure6(pair) {
            rows.push(vec![
                pair.to_string(),
                point.k.to_string(),
                f2(point.scores.precision),
                f2(point.scores.recall),
                f2(point.scores.f1),
            ]);
            report.push(point);
        }
    }
    println!("{}", format_table(&header, &rows));
    write_report("figure6", &report);
}
