//! Figure 3 — impact of `ReviseUncertain`: precision and recall of WikiMatch
//! (WM) versus WikiMatch without `ReviseUncertain` (WM*) when each
//! similarity feature is removed.

mod common;

use wiki_bench::report::f2;
use wiki_bench::{format_table, write_report};
use wikimatch::WikiMatchConfig;

fn main() {
    let ctx = common::context_from_args();
    let base = WikiMatchConfig::default();
    let variants = [
        ("no vsim", base.without_vsim()),
        ("no lsim", base.without_lsim()),
        ("no LSI", base.without_lsi()),
    ];
    let mut report = Vec::new();
    let header: Vec<String> = ["pair", "feature removed", "WM* P", "WM* R", "WM P", "WM R"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut rows = Vec::new();
    for pair in common::PAIRS {
        for (label, config) in variants {
            let wm = ctx.average_for_config(pair, config);
            let wm_star = ctx.average_for_config(pair, config.without_revise_uncertain());
            rows.push(vec![
                pair.to_string(),
                label.to_string(),
                f2(wm_star.precision),
                f2(wm_star.recall),
                f2(wm.precision),
                f2(wm.recall),
            ]);
            report.push((pair.to_string(), label.to_string(), wm_star, wm));
        }
    }
    println!("=== Figure 3 — impact of ReviseUncertain ===");
    println!("{}", format_table(&header, &rows));
    write_report("figure3", &report);
}
