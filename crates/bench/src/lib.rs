//! # wiki-bench
//!
//! The reproduction harness: one module per experiment of the paper plus
//! shared plumbing (dataset construction, matcher registry, text-table
//! rendering, JSON reports).
//!
//! Every table and figure of the paper has a corresponding binary under
//! `src/bin/` (`table2`, `figure5`, ...). Each binary calls into the
//! functions of [`experiments`] so the logic is unit-testable, prints a
//! text rendering of the paper's rows/series, and writes a JSON report to
//! `reports/` for EXPERIMENTS.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod kernels;
pub mod report;

pub use experiments::{ExperimentContext, StandardDatasets};
pub use report::{format_table, write_report};
