//! # wiki-bench
//!
//! The reproduction harness: one module per experiment of the paper plus
//! shared plumbing (dataset construction, matcher registry, text-table
//! rendering, JSON reports).
//!
//! Every table and figure of the paper has a corresponding binary under
//! `src/bin/` (`table2`, `figure5`, ...). Each binary calls into the
//! functions of [`experiments`] so the logic is unit-testable, prints a
//! text rendering of the paper's rows/series, and writes a JSON report to
//! `reports/` for EXPERIMENTS.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod kernels;
pub mod report;

pub use experiments::{ExperimentContext, StandardDatasets};
pub use report::{format_table, write_report};

use wiki_corpus::{ScaleTier, SyntheticConfig};

/// Resolves a `--tiers` token to its generator config via [`ScaleTier`],
/// so every recording binary accepts the same tier names (including
/// `xlarge`) and cannot drift from the corpus crate's catalog.
pub fn tier_config(tier: &str) -> Option<SyntheticConfig> {
    tier.parse::<ScaleTier>().ok().map(|t| t.config())
}

/// The usage-error text for an unknown `--tiers` token: the canonical tier
/// list, derived from [`ScaleTier::ALL`] so it can never go stale.
pub fn tier_names() -> String {
    let names: Vec<&str> = ScaleTier::ALL.iter().map(|t| t.name()).collect();
    names.join("|")
}

#[cfg(test)]
mod tier_tests {
    use super::*;

    #[test]
    fn every_tier_name_resolves_and_round_trips() {
        for tier in ScaleTier::ALL {
            assert!(tier_config(tier.name()).is_some(), "{tier} unresolvable");
            assert_eq!(tier.name().parse::<ScaleTier>(), Ok(tier));
        }
        assert!(tier_config("galactic").is_none());
        assert_eq!(tier_names(), "tiny|small|medium|large|xlarge");
    }
}
