//! Report rendering and persistence helpers.

use std::fs;
use std::path::{Path, PathBuf};

use serde::Serialize;

/// Renders a simple aligned text table.
///
/// `header` and every row must have the same number of columns; the column
/// widths adapt to the content.
pub fn format_table(header: &[String], rows: &[Vec<String>]) -> String {
    let columns = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(columns) {
            if cell.len() > widths[i] {
                widths[i] = cell.len();
            }
        }
    }
    let render_row = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .take(columns)
            .map(|(i, cell)| format!("{:<width$}", cell, width = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let mut out = String::new();
    out.push_str(&render_row(header));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (columns.saturating_sub(1))));
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row));
        out.push('\n');
    }
    out
}

/// Directory where JSON reports are written (workspace-relative `reports/`).
pub fn reports_dir() -> PathBuf {
    // The binaries run from the workspace root under `cargo run`; fall back
    // to the current directory otherwise.
    let candidate = Path::new("reports");
    candidate.to_path_buf()
}

/// Serialises an experiment result to `reports/<name>.json`.
///
/// Failures are reported but not fatal — the text output on stdout is the
/// primary artefact.
pub fn write_report<T: Serialize>(name: &str, value: &T) {
    let dir = reports_dir();
    if let Err(err) = fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {err}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(err) = fs::write(&path, json) {
                eprintln!("warning: cannot write {}: {err}", path.display());
            } else {
                eprintln!("(report written to {})", path.display());
            }
        }
        Err(err) => eprintln!("warning: cannot serialise report {name}: {err}"),
    }
}

/// Formats a float with two decimals (the precision the paper reports).
pub fn f2(value: f64) -> String {
    format!("{value:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let header = vec!["type".to_string(), "P".to_string(), "R".to_string()];
        let rows = vec![
            vec!["film".to_string(), "0.97".to_string(), "0.95".to_string()],
            vec![
                "fictional ch.".to_string(),
                "1.00".to_string(),
                "0.69".to_string(),
            ],
        ];
        let table = format_table(&header, &rows);
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("type"));
        assert!(lines[3].starts_with("fictional ch."));
        // Columns line up: "P" column starts at the same offset everywhere.
        let offset = lines[0].find('P').unwrap();
        assert_eq!(&lines[2][offset..offset + 4], "0.97");
    }

    #[test]
    fn f2_formats_two_decimals() {
        assert_eq!(f2(0.5), "0.50");
        assert_eq!(f2(1.0), "1.00");
    }
}
