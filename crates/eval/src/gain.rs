//! Cumulative gain of ranked answer lists (Figure 4).
//!
//! The case study of Section 5 evaluates multilingual query answers with
//! cumulative gain (Järvelin & Kekäläinen): the sum of the graded relevance
//! scores of the top-`k` answers. Unlike nDCG there is no position discount
//! — the paper uses plain CG, and so do we.

/// Cumulative gain of the top-`k` answers.
///
/// `relevances` holds the graded relevance of each returned answer in rank
/// order; answers beyond `k` are ignored, and a `k` larger than the list
/// simply sums everything.
pub fn cumulative_gain(relevances: &[f64], k: usize) -> f64 {
    relevances.iter().take(k).sum()
}

/// The full CG curve: `curve[i]` is the cumulative gain of the top `i + 1`
/// answers. Useful for plotting Figure 4.
pub fn cumulative_gain_curve(relevances: &[f64], max_k: usize) -> Vec<f64> {
    let mut curve = Vec::with_capacity(max_k);
    let mut acc = 0.0;
    for k in 0..max_k {
        if let Some(r) = relevances.get(k) {
            acc += r;
        }
        curve.push(acc);
    }
    curve
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gain_accumulates() {
        let rel = [3.0, 2.0, 0.0, 1.0];
        assert_eq!(cumulative_gain(&rel, 1), 3.0);
        assert_eq!(cumulative_gain(&rel, 2), 5.0);
        assert_eq!(cumulative_gain(&rel, 4), 6.0);
        assert_eq!(cumulative_gain(&rel, 10), 6.0);
        assert_eq!(cumulative_gain(&[], 5), 0.0);
    }

    #[test]
    fn curve_is_monotone_and_padded() {
        let rel = [3.0, 2.0, 1.0];
        let curve = cumulative_gain_curve(&rel, 5);
        assert_eq!(curve, vec![3.0, 5.0, 6.0, 6.0, 6.0]);
        for w in curve.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn curve_of_empty_list_is_flat_zero() {
        assert_eq!(cumulative_gain_curve(&[], 3), vec![0.0, 0.0, 0.0]);
    }
}
