//! # wiki-eval
//!
//! Evaluation machinery for the WikiMatch reproduction, implementing every
//! metric used in the paper's experimental section:
//!
//! * [`weighted`] — frequency-weighted precision, recall and F-measure
//!   (Equations 1–4, used for Table 2 and Table 3);
//! * [`macro_avg`] — unweighted ("macro") precision/recall over distinct
//!   attribute-name pairs (Table 6);
//! * [`map`] — mean average precision of candidate orderings (Table 7);
//! * [`gain`] — cumulative gain of ranked answer lists (Figure 4);
//! * [`overlap`] — cross-language attribute overlap of dual infoboxes
//!   (Table 5, Appendix A);
//! * [`correlation`] — Pearson correlation between overlap and F-measure
//!   (the heterogeneity analysis of Section 4.1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod correlation;
pub mod gain;
pub mod macro_avg;
pub mod map;
pub mod overlap;
pub mod weighted;

pub use correlation::pearson;
pub use gain::{cumulative_gain, cumulative_gain_curve};
pub use macro_avg::MacroAggregator;
pub use map::mean_average_precision;
pub use overlap::type_overlap;
pub use weighted::{weighted_scores, Scores};
