//! Cross-language attribute overlap of dual infoboxes (Table 5, Appendix A).
//!
//! For every pair of cross-linked infoboxes of one entity type, the overlap
//! is the size of the intersection of their attribute sets divided by the
//! size of their union, where two attributes count as intersecting only if
//! their pair appears in the ground truth. The per-type overlap is computed
//! over the pooled counts of all its dual infoboxes.

use wiki_corpus::ground_truth::TypeGroundTruth;
use wiki_corpus::{Corpus, Language};

/// Computes the attribute overlap of one entity type for the pair
/// (`other`, English).
///
/// `label_other` / `label_en` are the type labels in each language. Returns
/// 0.0 when the corpus holds no dual infoboxes of that type.
pub fn type_overlap(
    corpus: &Corpus,
    gold: &TypeGroundTruth,
    other: &Language,
    label_other: &str,
    label_en: &str,
) -> f64 {
    let english = Language::En;
    let mut intersection = 0.0;
    let mut union = 0.0;
    for (en_id, other_id) in corpus.cross_language_pairs(&english, other) {
        let (Some(en_article), Some(other_article)) = (corpus.get(en_id), corpus.get(other_id))
        else {
            continue;
        };
        if en_article.entity_type != label_en || other_article.entity_type != label_other {
            continue;
        }
        let schema_en = en_article.infobox.schema();
        let schema_other = other_article.infobox.schema();

        // An attribute of either side is "shared" when the gold standard
        // aligns it with some attribute of the other side; each aligned
        // pair counts once towards the intersection.
        let matched_en = schema_en
            .iter()
            .filter(|a| {
                schema_other
                    .iter()
                    .any(|b| gold.is_correct(&english, a, other, b))
            })
            .count() as f64;
        let matched_other = schema_other
            .iter()
            .filter(|b| {
                schema_en
                    .iter()
                    .any(|a| gold.is_correct(&english, a, other, b))
            })
            .count() as f64;
        let shared = 0.5 * (matched_en + matched_other);
        intersection += shared;
        union += schema_en.len() as f64 + schema_other.len() as f64 - shared;
    }
    if union == 0.0 {
        0.0
    } else {
        intersection / union
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wiki_corpus::{Article, AttributeValue, Infobox};

    fn gold() -> TypeGroundTruth {
        let mut gold = TypeGroundTruth {
            type_id: "film".into(),
            ..Default::default()
        };
        gold.add_sense(Language::En, "directed by", "director");
        gold.add_sense(Language::Pt, "direção", "director");
        gold.add_sense(Language::En, "country", "country");
        gold.add_sense(Language::Pt, "país", "country");
        gold.add_sense(Language::En, "budget", "budget");
        gold
    }

    fn corpus(with_shared_country: bool) -> Corpus {
        let mut corpus = Corpus::new();
        let mut en_box = Infobox::new("Infobox Film");
        en_box.push(AttributeValue::text("directed by", "X"));
        en_box.push(AttributeValue::text("budget", "10"));
        if with_shared_country {
            en_box.push(AttributeValue::text("country", "Italy"));
        }
        let mut en = Article::new("F", Language::En, "Film", en_box);
        en.add_cross_link(Language::Pt, "Fp");

        let mut pt_box = Infobox::new("Infobox Filme");
        pt_box.push(AttributeValue::text("direção", "X"));
        if with_shared_country {
            pt_box.push(AttributeValue::text("país", "Itália"));
        }
        let mut pt = Article::new("Fp", Language::Pt, "Filme", pt_box);
        pt.add_cross_link(Language::En, "F");
        corpus.insert(en);
        corpus.insert(pt);
        corpus
    }

    #[test]
    fn overlap_counts_gold_aligned_attributes() {
        let gold = gold();
        // One shared attribute (directed by/direção) of 2 + 1 attributes:
        // intersection 1, union 2 → 0.5.
        let sparse = corpus(false);
        let o = type_overlap(&sparse, &gold, &Language::Pt, "Filme", "Film");
        assert!((o - 0.5).abs() < 1e-9, "overlap = {o}");

        // Two shared attributes of 3 + 2: intersection 2, union 3 → 2/3.
        let denser = corpus(true);
        let o = type_overlap(&denser, &gold, &Language::Pt, "Filme", "Film");
        assert!((o - 2.0 / 3.0).abs() < 1e-9, "overlap = {o}");
    }

    #[test]
    fn missing_type_gives_zero() {
        let gold = gold();
        let corpus = corpus(true);
        assert_eq!(
            type_overlap(&corpus, &gold, &Language::Pt, "Livro", "Book"),
            0.0
        );
    }
}
