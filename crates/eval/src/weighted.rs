//! Frequency-weighted precision, recall and F-measure (Equations 1–4).
//!
//! The paper weights each attribute's contribution by its frequency in the
//! infobox set, so that a wrong correspondence involving a frequent
//! attribute costs more than one involving a rare attribute. For a derived
//! correspondence set `C` and gold set `G`:
//!
//! * `Pr(c(ai))` — for every attribute `ai` that appears in `C`, the
//!   frequency-weighted fraction of its derived correspondents that are
//!   correct (Eq. 3);
//! * `Rc(c(ai))` — for every attribute `ai` that appears in `G`, the
//!   frequency-weighted fraction of its gold correspondents that were
//!   derived (Eq. 4);
//! * precision / recall — the frequency-weighted averages of `Pr` / `Rc`
//!   over those attributes (Eq. 1 and 2);
//! * F-measure — their harmonic mean.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use serde::{Deserialize, Serialize};

use wiki_corpus::ground_truth::TypeGroundTruth;
use wiki_corpus::Language;

/// Precision / recall / F-measure triple.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Scores {
    /// Weighted precision.
    pub precision: f64,
    /// Weighted recall.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
}

impl Scores {
    /// Builds the triple, computing the F-measure.
    ///
    /// Inputs are clamped to `[0, 1]` to guard against floating-point drift
    /// in the weighted sums.
    pub fn new(precision: f64, recall: f64) -> Self {
        let precision = precision.clamp(0.0, 1.0);
        let recall = recall.clamp(0.0, 1.0);
        let f1 = if precision + recall > 0.0 {
            2.0 * precision * recall / (precision + recall)
        } else {
            0.0
        };
        Self {
            precision,
            recall,
            f1,
        }
    }

    /// Averages a collection of scores component-wise (used for the
    /// "Avg" rows of Table 2).
    pub fn average<'a, I: IntoIterator<Item = &'a Scores>>(scores: I) -> Scores {
        let mut precision = 0.0;
        let mut recall = 0.0;
        let mut n = 0usize;
        for s in scores {
            precision += s.precision;
            recall += s.recall;
            n += 1;
        }
        if n == 0 {
            return Scores::default();
        }
        Scores::new(precision / n as f64, recall / n as f64)
    }
}

/// Frequency lookup with a tiny default so unseen attributes do not zero out
/// a whole term.
fn freq(map: &HashMap<String, f64>, name: &str) -> f64 {
    map.get(name).copied().unwrap_or(1.0).max(1e-9)
}

/// Computes the weighted precision/recall/F-measure of a derived
/// correspondence set.
///
/// * `derived` — cross-language pairs `(attribute in lang_l, attribute in
///   lang_l2)` produced by a matcher;
/// * `gold` — the gold standard for the entity type;
/// * `freq_l`, `freq_l2` — attribute occurrence counts per language (the
///   `|ai|` weights of the equations).
pub fn weighted_scores(
    derived: &[(String, String)],
    gold: &TypeGroundTruth,
    lang_l: &Language,
    lang_l2: &Language,
    freq_l: &HashMap<String, f64>,
    freq_l2: &HashMap<String, f64>,
) -> Scores {
    // c(ai): derived correspondents of each left-side attribute.
    let mut derived_by_left: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (a, b) in derived {
        derived_by_left
            .entry(a.as_str())
            .or_default()
            .insert(b.as_str());
    }
    let derived_contains =
        |a: &str, b: &str| derived_by_left.get(a).is_some_and(|set| set.contains(b));

    // ---- Precision (Eq. 1 and 3) ----
    let mut precision = 0.0;
    let total_weight_c: f64 = derived_by_left.keys().map(|a| freq(freq_l, a)).sum();
    if total_weight_c > 0.0 {
        for (a, correspondents) in &derived_by_left {
            let denom: f64 = correspondents.iter().map(|b| freq(freq_l2, b)).sum();
            if denom == 0.0 {
                continue;
            }
            let mut pr = 0.0;
            for b in correspondents {
                if gold.is_correct(lang_l, a, lang_l2, b) {
                    pr += freq(freq_l2, b) / denom;
                }
            }
            precision += freq(freq_l, a) / total_weight_c * pr;
        }
    }

    // ---- Recall (Eq. 2 and 4) ----
    // AG: attributes of lang_l that have at least one gold correspondent.
    let mut gold_by_left: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for a in gold.attributes_in(lang_l) {
        let correspondents = gold.correspondents(lang_l, &a, lang_l2);
        if !correspondents.is_empty() {
            gold_by_left.insert(a, correspondents);
        }
    }
    let mut recall = 0.0;
    let total_weight_g: f64 = gold_by_left.keys().map(|a| freq(freq_l, a)).sum();
    if total_weight_g > 0.0 {
        for (a, correspondents) in &gold_by_left {
            let denom: f64 = correspondents.iter().map(|b| freq(freq_l2, b)).sum();
            if denom == 0.0 {
                continue;
            }
            let mut rc = 0.0;
            for b in correspondents {
                if derived_contains(a, b) {
                    rc += freq(freq_l2, b) / denom;
                }
            }
            recall += freq(freq_l, a) / total_weight_g * rc;
        }
    }

    Scores::new(precision, recall)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reconstruction of the paper's worked Example 4.
    ///
    /// `ST = {a1, a2}` with frequencies (0.6, 0.4); `S'T = {a'1, a'2, a'3}`
    /// with frequencies (0.5, 0.3, 0.2); gold `{a1 ~ a'1 ~ a'2, a2 ~ a'3}`;
    /// derived `{a1 ~ a'1, a2 ~ a'3}` → precision 1.0, recall 0.775.
    /// (Attribute names avoid trailing digits, which label normalisation
    /// treats as template repetition counters.)
    #[test]
    fn paper_example_four() {
        let mut gold = TypeGroundTruth {
            type_id: "example".into(),
            ..Default::default()
        };
        gold.add_sense(Language::Pt, "alpha", "c1");
        gold.add_sense(Language::Pt, "beta", "c2");
        gold.add_sense(Language::En, "prime one", "c1");
        gold.add_sense(Language::En, "prime two", "c1");
        gold.add_sense(Language::En, "prime three", "c2");

        let freq_l: HashMap<String, f64> =
            [("alpha".to_string(), 0.6), ("beta".to_string(), 0.4)].into();
        let freq_l2: HashMap<String, f64> = [
            ("prime one".to_string(), 0.5),
            ("prime two".to_string(), 0.3),
            ("prime three".to_string(), 0.2),
        ]
        .into();

        let derived = vec![
            ("alpha".to_string(), "prime one".to_string()),
            ("beta".to_string(), "prime three".to_string()),
        ];
        let scores = weighted_scores(
            &derived,
            &gold,
            &Language::Pt,
            &Language::En,
            &freq_l,
            &freq_l2,
        );
        assert!(
            (scores.precision - 1.0).abs() < 1e-9,
            "{}",
            scores.precision
        );
        assert!((scores.recall - 0.775).abs() < 1e-9, "{}", scores.recall);
        assert!((scores.f1 - 2.0 * 1.0 * 0.775 / 1.775).abs() < 1e-9);
    }

    #[test]
    fn incorrect_pairs_reduce_precision_only() {
        let mut gold = TypeGroundTruth {
            type_id: "t".into(),
            ..Default::default()
        };
        gold.add_sense(Language::Pt, "nascimento", "birth");
        gold.add_sense(Language::En, "born", "birth");
        gold.add_sense(Language::Pt, "morte", "death");
        gold.add_sense(Language::En, "died", "death");

        let freq: HashMap<String, f64> = [
            ("nascimento".to_string(), 10.0),
            ("morte".to_string(), 10.0),
            ("born".to_string(), 10.0),
            ("died".to_string(), 10.0),
        ]
        .into();

        // One correct and one incorrect derived pair.
        let derived = vec![
            ("nascimento".to_string(), "born".to_string()),
            ("morte".to_string(), "born".to_string()),
        ];
        let scores = weighted_scores(&derived, &gold, &Language::Pt, &Language::En, &freq, &freq);
        assert!((scores.precision - 0.5).abs() < 1e-9);
        // Recall: nascimento found (1.0), morte's gold correspondent (died)
        // missed (0.0) → 0.5.
        assert!((scores.recall - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_inputs() {
        let gold = TypeGroundTruth {
            type_id: "t".into(),
            ..Default::default()
        };
        let scores = weighted_scores(
            &[],
            &gold,
            &Language::Pt,
            &Language::En,
            &HashMap::new(),
            &HashMap::new(),
        );
        assert_eq!(scores, Scores::default());

        // Derived pairs but no gold: precision 0, recall 0.
        let derived = vec![("x".to_string(), "y".to_string())];
        let scores = weighted_scores(
            &derived,
            &gold,
            &Language::Pt,
            &Language::En,
            &HashMap::new(),
            &HashMap::new(),
        );
        assert_eq!(scores.precision, 0.0);
        assert_eq!(scores.recall, 0.0);
    }

    #[test]
    fn frequency_weighting_matters() {
        let mut gold = TypeGroundTruth {
            type_id: "t".into(),
            ..Default::default()
        };
        gold.add_sense(Language::Pt, "frequente", "c1");
        gold.add_sense(Language::En, "frequent", "c1");
        gold.add_sense(Language::Pt, "raro", "c2");
        gold.add_sense(Language::En, "rare", "c2");

        let freq_l: HashMap<String, f64> =
            [("frequente".to_string(), 90.0), ("raro".to_string(), 10.0)].into();
        let freq_l2: HashMap<String, f64> =
            [("frequent".to_string(), 90.0), ("rare".to_string(), 10.0)].into();

        // Only the frequent attribute is matched correctly.
        let only_frequent = vec![("frequente".to_string(), "frequent".to_string())];
        let s1 = weighted_scores(
            &only_frequent,
            &gold,
            &Language::Pt,
            &Language::En,
            &freq_l,
            &freq_l2,
        );
        // Only the rare attribute is matched correctly.
        let only_rare = vec![("raro".to_string(), "rare".to_string())];
        let s2 = weighted_scores(
            &only_rare,
            &gold,
            &Language::Pt,
            &Language::En,
            &freq_l,
            &freq_l2,
        );
        assert!(s1.recall > s2.recall, "{} vs {}", s1.recall, s2.recall);
        assert!((s1.recall - 0.9).abs() < 1e-9);
        assert!((s2.recall - 0.1).abs() < 1e-9);
    }

    #[test]
    fn scores_average() {
        let scores = [Scores::new(1.0, 0.5), Scores::new(0.5, 1.0)];
        let avg = Scores::average(scores.iter());
        assert!((avg.precision - 0.75).abs() < 1e-12);
        assert!((avg.recall - 0.75).abs() < 1e-12);
        assert_eq!(Scores::average([].iter()), Scores::default());
    }
}
