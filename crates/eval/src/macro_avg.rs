//! Macro-averaged (unweighted) precision and recall.
//!
//! Appendix B of the paper complements the weighted metrics with
//! macro-averaging: the weights are discarded and distinct attribute-name
//! pairs are simply counted. [`MacroAggregator`] accumulates derived and
//! gold pair sets over all entity types of a language pair and reports the
//! pooled precision, recall and F-measure (Table 6).

use std::collections::BTreeSet;

use wiki_corpus::ground_truth::TypeGroundTruth;
use wiki_corpus::Language;

use crate::weighted::Scores;

/// Accumulates pair counts over entity types.
#[derive(Debug, Clone, Default)]
pub struct MacroAggregator {
    derived_total: usize,
    derived_correct: usize,
    gold_total: usize,
    gold_found: usize,
}

impl MacroAggregator {
    /// Creates an empty aggregator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds the derived pairs of one entity type.
    ///
    /// `derived` holds cross-language pairs `(attribute in lang_l, attribute
    /// in lang_l2)`; duplicates are ignored.
    pub fn add_type(
        &mut self,
        derived: &[(String, String)],
        gold: &TypeGroundTruth,
        lang_l: &Language,
        lang_l2: &Language,
    ) {
        let derived_set: BTreeSet<(String, String)> = derived.iter().cloned().collect();
        let gold_set: BTreeSet<(String, String)> =
            gold.gold_cross_pairs(lang_l, lang_l2).into_iter().collect();

        self.derived_total += derived_set.len();
        self.derived_correct += derived_set
            .iter()
            .filter(|(a, b)| gold.is_correct(lang_l, a, lang_l2, b))
            .count();
        self.gold_total += gold_set.len();
        self.gold_found += gold_set.iter().filter(|p| derived_set.contains(p)).count();
    }

    /// Number of derived pairs accumulated so far.
    pub fn derived_total(&self) -> usize {
        self.derived_total
    }

    /// Number of gold pairs accumulated so far.
    pub fn gold_total(&self) -> usize {
        self.gold_total
    }

    /// The pooled macro precision/recall/F-measure.
    pub fn scores(&self) -> Scores {
        let precision = if self.derived_total == 0 {
            0.0
        } else {
            self.derived_correct as f64 / self.derived_total as f64
        };
        let recall = if self.gold_total == 0 {
            0.0
        } else {
            self.gold_found as f64 / self.gold_total as f64
        };
        Scores::new(precision, recall)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gold() -> TypeGroundTruth {
        let mut gold = TypeGroundTruth {
            type_id: "t".into(),
            ..Default::default()
        };
        gold.add_sense(Language::Pt, "nascimento", "birth");
        gold.add_sense(Language::En, "born", "birth");
        gold.add_sense(Language::Pt, "falecimento", "death");
        gold.add_sense(Language::Pt, "morte", "death");
        gold.add_sense(Language::En, "died", "death");
        gold
    }

    #[test]
    fn pooled_counts() {
        let gold = gold();
        let mut agg = MacroAggregator::new();
        // Gold pairs: (nascimento, born), (falecimento, died), (morte, died) = 3.
        let derived = vec![
            ("nascimento".to_string(), "born".to_string()),
            ("morte".to_string(), "died".to_string()),
            ("nascimento".to_string(), "died".to_string()), // incorrect
        ];
        agg.add_type(&derived, &gold, &Language::Pt, &Language::En);
        let scores = agg.scores();
        assert!((scores.precision - 2.0 / 3.0).abs() < 1e-9);
        assert!((scores.recall - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(agg.derived_total(), 3);
        assert_eq!(agg.gold_total(), 3);
    }

    #[test]
    fn accumulates_over_types() {
        let gold = gold();
        let mut agg = MacroAggregator::new();
        agg.add_type(
            &[("nascimento".to_string(), "born".to_string())],
            &gold,
            &Language::Pt,
            &Language::En,
        );
        agg.add_type(
            &[("falecimento".to_string(), "died".to_string())],
            &gold,
            &Language::Pt,
            &Language::En,
        );
        let scores = agg.scores();
        assert!((scores.precision - 1.0).abs() < 1e-9);
        // 2 of 6 pooled gold pairs found (gold counted once per type added).
        assert!((scores.recall - 2.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn duplicates_are_counted_once() {
        let gold = gold();
        let mut agg = MacroAggregator::new();
        agg.add_type(
            &[
                ("nascimento".to_string(), "born".to_string()),
                ("nascimento".to_string(), "born".to_string()),
            ],
            &gold,
            &Language::Pt,
            &Language::En,
        );
        assert_eq!(agg.derived_total(), 1);
        assert!((agg.scores().precision - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_aggregator_scores_zero() {
        let agg = MacroAggregator::new();
        assert_eq!(agg.scores(), Scores::default());
    }
}
