//! Pearson correlation.
//!
//! Section 4.1 reports positive correlation coefficients between the
//! per-type attribute overlap and the F-measure obtained by each approach —
//! the more homogeneous a type is across languages, the easier it is to
//! match. This module provides the plain Pearson product-moment coefficient
//! used for that analysis.

/// Pearson product-moment correlation between two equally long samples.
///
/// Returns `None` when the samples have fewer than two points, different
/// lengths, or zero variance.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let mean_x = xs.iter().sum::<f64>() / n;
    let mean_y = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut var_x = 0.0;
    let mut var_y = 0.0;
    for (x, y) in xs.iter().zip(ys.iter()) {
        let dx = x - mean_x;
        let dy = y - mean_y;
        cov += dx * dy;
        var_x += dx * dx;
        var_y += dy * dy;
    }
    if var_x == 0.0 || var_y == 0.0 {
        return None;
    }
    Some(cov / (var_x.sqrt() * var_y.sqrt()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_positive_and_negative_correlation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        let ys_neg = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&xs, &ys_neg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn uncorrelated_data_is_near_zero() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [1.0, -1.0, 1.0, -1.0];
        let r = pearson(&xs, &ys).unwrap();
        assert!(r.abs() < 0.5);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(pearson(&[1.0], &[2.0]), None);
        assert_eq!(pearson(&[1.0, 2.0], &[1.0]), None);
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), None);
    }
}
