//! Mean average precision (MAP) of candidate orderings.
//!
//! Appendix B compares LSI against the simpler correlation measures X1–X3 by
//! asking which one orders the candidate matches best: the correct matches
//! of every attribute should appear before the incorrect ones. MAP is the
//! standard ranking metric for this:
//!
//! ```text
//! MAP(A) = 1/|A| Σ_j  1/m_j Σ_k P(R_jk)
//! ```
//!
//! where `m_j` is the number of correct matches of attribute `j` and
//! `P(R_jk)` is the precision of the ranking truncated at the position of
//! its `k`-th correct match.

/// Average precision of one ranked correctness list.
///
/// `ranking[i]` is `true` when the candidate at rank `i` (0-based) is a
/// correct match. Returns `None` when the ranking contains no correct match
/// (such attributes are excluded from MAP).
pub fn average_precision(ranking: &[bool]) -> Option<f64> {
    let mut correct_so_far = 0usize;
    let mut sum = 0.0;
    for (i, &is_correct) in ranking.iter().enumerate() {
        if is_correct {
            correct_so_far += 1;
            sum += correct_so_far as f64 / (i + 1) as f64;
        }
    }
    (correct_so_far > 0).then(|| sum / correct_so_far as f64)
}

/// Mean average precision over a set of per-attribute rankings.
///
/// Attributes without any correct match are skipped; an empty input yields
/// 0.0.
pub fn mean_average_precision(rankings: &[Vec<bool>]) -> f64 {
    let aps: Vec<f64> = rankings
        .iter()
        .filter_map(|r| average_precision(r))
        .collect();
    if aps.is_empty() {
        0.0
    } else {
        aps.iter().sum::<f64>() / aps.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ordering_scores_one() {
        assert_eq!(average_precision(&[true, true, false, false]), Some(1.0));
        assert_eq!(
            mean_average_precision(&[vec![true], vec![true, false]]),
            1.0
        );
    }

    #[test]
    fn worst_ordering_scores_low() {
        // Single correct match at the last of four positions.
        assert_eq!(average_precision(&[false, false, false, true]), Some(0.25));
    }

    #[test]
    fn mixed_ordering() {
        // Correct at ranks 1 and 3: AP = (1/1 + 2/3) / 2 = 5/6.
        let ap = average_precision(&[true, false, true]).unwrap();
        assert!((ap - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn attributes_without_correct_matches_are_skipped() {
        assert_eq!(average_precision(&[false, false]), None);
        let map = mean_average_precision(&[vec![false, false], vec![true, false]]);
        assert!((map - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(average_precision(&[]), None);
        assert_eq!(mean_average_precision(&[]), 0.0);
        assert_eq!(mean_average_precision(&[vec![]]), 0.0);
    }

    #[test]
    fn better_orderings_score_higher() {
        let good = vec![vec![true, false, false], vec![true, true, false]];
        let bad = vec![vec![false, false, true], vec![false, true, true]];
        assert!(mean_average_precision(&good) > mean_average_precision(&bad));
    }
}
