//! Delta-journal persistence: round trips, replay, and the rejection
//! matrix (truncation, corruption, version bumps, replay-order tampering)
//! mirroring the snapshot suite's discipline at record granularity.

use wikimatch_suite::{wiki_corpus, wikimatch};

use wiki_corpus::{AttributeValue, Dataset, Language, SyntheticConfig};
use wikimatch::snapshot::JOURNAL_FORMAT_VERSION;
use wikimatch::{corpus_fingerprint, CorpusDelta, DeltaJournal, MatchEngine, SnapshotError};

/// Builds a three-record journal by mutating a live engine and chaining
/// each report's fingerprints, returning the base dataset, the journal and
/// the final mutated dataset.
fn journal_fixture() -> (Dataset, DeltaJournal, Dataset) {
    let base = Dataset::pt_en(&SyntheticConfig::tiny());
    let engine = MatchEngine::builder(base.clone()).build();
    let mut journal = DeltaJournal::new(engine.fingerprint());
    assert_eq!(journal.tip(), corpus_fingerprint(&base));

    let deltas = {
        let mut edited = base
            .corpus
            .articles_in(&Language::Pt)
            .next()
            .expect("corpus has Portuguese articles")
            .clone();
        // Ids are corpus-local and not persisted by the journal; reset them
        // so the round-tripped records compare equal to the originals.
        edited.id = wiki_corpus::ArticleId::default();
        edited.infobox.attributes[0].value = "valor journaled".to_string();
        let mut appended = edited.clone();
        appended
            .infobox
            .push(AttributeValue::text("nota", "registro"));
        vec![
            CorpusDelta::upsert(edited.clone()),
            CorpusDelta::upsert(appended),
            CorpusDelta::remove(Language::Pt, edited.title.clone()),
        ]
    };
    for delta in deltas {
        let report = engine.apply_delta(&delta);
        let record = journal.append(delta, report.fingerprint);
        assert_eq!(record.parent_fingerprint, report.fingerprint_before);
    }
    assert_eq!(journal.len(), 3);
    assert_eq!(journal.tip(), engine.fingerprint());
    (base, journal, engine.dataset().as_ref().clone())
}

#[test]
fn journal_round_trips_and_replays_over_its_base() {
    let (base, journal, mutated) = journal_fixture();
    let bytes = journal.to_bytes();
    let loaded = DeltaJournal::from_bytes(&bytes).unwrap();
    assert_eq!(loaded, journal);

    // Replaying the records over the base reproduces the mutated corpus,
    // fingerprint-verified at every step.
    let mut replayed = base;
    assert_eq!(corpus_fingerprint(&replayed), loaded.base_fingerprint);
    for record in &loaded.records {
        assert_eq!(corpus_fingerprint(&replayed), record.parent_fingerprint);
        record.delta.apply_to(&mut replayed.corpus);
        assert_eq!(corpus_fingerprint(&replayed), record.post_fingerprint);
    }
    assert_eq!(corpus_fingerprint(&replayed), corpus_fingerprint(&mutated));
    assert_eq!(corpus_fingerprint(&replayed), loaded.tip());
}

#[test]
fn empty_journal_round_trips() {
    let journal = DeltaJournal::new(0xFEED_F00D);
    let loaded = DeltaJournal::from_bytes(&journal.to_bytes()).unwrap();
    assert!(loaded.is_empty());
    assert_eq!(loaded.tip(), 0xFEED_F00D);
}

#[test]
fn truncated_journals_are_rejected_strictly() {
    let (_, journal, _) = journal_fixture();
    let bytes = journal.to_bytes();
    // Cuts inside the header and inside a record body: never at a record
    // boundary (a boundary cut *is* a valid shorter journal, tested below).
    for cut in [0, 10, 19, bytes.len() / 2, bytes.len() - 1] {
        assert!(
            matches!(
                DeltaJournal::from_bytes(&bytes[..cut]),
                Err(SnapshotError::Truncated)
            ),
            "cut at {cut} not detected as truncation"
        );
    }
}

#[test]
fn boundary_cut_is_a_valid_shorter_journal() {
    let (_, journal, _) = journal_fixture();
    // Serialize only the first two records: that *is* the journal as it
    // existed before the third append, and must load cleanly.
    let mut shorter = journal.clone();
    shorter.records.truncate(2);
    let loaded = DeltaJournal::from_bytes(&shorter.to_bytes()).unwrap();
    assert_eq!(loaded.len(), 2);
    assert_eq!(loaded.tip(), journal.records[1].post_fingerprint);
}

#[test]
fn corrupted_records_fail_their_checksum() {
    let (_, journal, _) = journal_fixture();
    let mut bytes = journal.to_bytes();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x40;
    assert!(matches!(
        DeltaJournal::from_bytes(&bytes),
        Err(SnapshotError::ChecksumMismatch { .. })
    ));
}

#[test]
fn recover_keeps_the_valid_prefix_of_a_torn_tail() {
    let (_, journal, _) = journal_fixture();
    let full = journal.to_bytes();

    // A torn final record (simulating a crash mid-append).
    let torn = &full[..full.len() - 5];
    let (recovered, dropped) = DeltaJournal::recover(torn).unwrap();
    assert!(dropped);
    assert_eq!(recovered.len(), 2);
    assert_eq!(recovered.tip(), journal.records[1].post_fingerprint);

    // A corrupted final record is dropped the same way.
    let mut corrupt = full.clone();
    let last = corrupt.len() - 1;
    corrupt[last] ^= 0x40;
    let (recovered, dropped) = DeltaJournal::recover(&corrupt).unwrap();
    assert!(dropped);
    assert_eq!(recovered.len(), 2);

    // An intact journal recovers losslessly.
    let (recovered, dropped) = DeltaJournal::recover(&full).unwrap();
    assert!(!dropped);
    assert_eq!(recovered, journal);

    // Header damage has no usable prefix and stays fatal.
    assert!(matches!(
        DeltaJournal::recover(&full[..10]),
        Err(SnapshotError::Truncated)
    ));
}

#[test]
fn version_bumps_and_bad_magic_are_rejected() {
    let (_, journal, _) = journal_fixture();
    let bytes = journal.to_bytes();
    let mut bumped = bytes.clone();
    bumped[8] = bumped[8].wrapping_add(1);
    assert!(matches!(
        DeltaJournal::from_bytes(&bumped),
        Err(SnapshotError::UnsupportedVersion { found, supported })
            if found == JOURNAL_FORMAT_VERSION + 1 && supported == JOURNAL_FORMAT_VERSION
    ));
    let mut wrong_magic = bytes;
    wrong_magic[0] = b'X';
    assert!(matches!(
        DeltaJournal::from_bytes(&wrong_magic),
        Err(SnapshotError::BadMagic)
    ));
}

#[test]
fn replay_order_tampering_is_rejected() {
    let (_, journal, _) = journal_fixture();

    // Swapped records: each is checksum-valid, but the seq/fingerprint
    // chain breaks.
    let mut swapped = journal.clone();
    swapped.records.swap(0, 1);
    assert!(matches!(
        DeltaJournal::from_bytes(&swapped.to_bytes()),
        Err(SnapshotError::Malformed(_))
    ));

    // A dropped middle record breaks the chain the same way.
    let mut gapped = journal.clone();
    gapped.records.remove(1);
    assert!(matches!(
        DeltaJournal::from_bytes(&gapped.to_bytes()),
        Err(SnapshotError::Malformed(_))
    ));

    // A record whose parent fingerprint was rewired to the wrong lineage.
    let mut rewired = journal;
    rewired.records[2].parent_fingerprint ^= 1;
    assert!(matches!(
        DeltaJournal::from_bytes(&rewired.to_bytes()),
        Err(SnapshotError::Malformed(_))
    ));
}

#[test]
fn append_record_to_builds_the_same_file_incrementally() {
    let (_, journal, _) = journal_fixture();
    let dir = std::env::temp_dir().join(format!("wm-journal-test-{}", std::process::id()));
    let path = dir.join("corpus.journal");
    let _ = std::fs::remove_file(&path);

    for record in &journal.records {
        DeltaJournal::append_record_to(&path, journal.base_fingerprint, record).unwrap();
    }
    let loaded = DeltaJournal::load(&path).unwrap();
    assert_eq!(loaded, journal);

    // Atomic full save (the compaction path) overwrites with an empty
    // journal rooted at the new base.
    let compacted = DeltaJournal::new(journal.tip());
    compacted.save(&path).unwrap();
    let loaded = DeltaJournal::load(&path).unwrap();
    assert!(loaded.is_empty());
    assert_eq!(loaded.base_fingerprint, journal.tip());

    // A torn on-disk tail recovers to the valid prefix (fresh file: the
    // compacted header above is rooted at a different lineage).
    let _ = std::fs::remove_file(&path);
    for record in &journal.records {
        DeltaJournal::append_record_to(&path, journal.base_fingerprint, record).unwrap();
    }
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
    let (recovered, dropped) = DeltaJournal::load_recovering(&path).unwrap();
    assert!(dropped);
    assert_eq!(recovered.len(), 2);

    let _ = std::fs::remove_dir_all(&dir);
}
