//! Integration tests for the WikiQuery case study (Section 5), driven off
//! `MatchEngine` sessions.

use wikimatch_suite::{wiki_corpus, wiki_query, wikimatch};

use wiki_corpus::{Dataset, SyntheticConfig};
use wiki_query::{
    case_study_queries, run_case_study_with_engine, CQuery, CorrespondenceDictionary, QueryEngine,
};
use wikimatch::MatchEngine;

#[test]
fn correspondence_dictionary_translates_the_workload() {
    let engine = MatchEngine::builder(Dataset::pt_en(&SyntheticConfig::tiny())).build();
    let alignments = engine.align_all();
    let dictionary = CorrespondenceDictionary::build(&engine.dataset(), &alignments);
    assert!(!dictionary.is_empty());

    let mut translated_constraints = 0usize;
    let mut relaxed_constraints = 0usize;
    for query in case_study_queries(engine.dataset().other_language()) {
        let (translated, stats) = dictionary.translate_query(&query);
        assert!(!translated.clauses.is_empty(), "{}", query.description);
        translated_constraints += stats.translated;
        relaxed_constraints += stats.relaxed;
    }
    // Most constraints translate; a few may need relaxation, as in the paper.
    assert!(
        translated_constraints > relaxed_constraints,
        "translated {translated_constraints} vs relaxed {relaxed_constraints}"
    );
}

#[test]
fn queries_return_ranked_answers_in_both_languages() {
    let match_engine = MatchEngine::builder(Dataset::pt_en(&SyntheticConfig::tiny())).build();
    let dataset = match_engine.dataset();
    let alignments = match_engine.align_all();
    let dictionary = CorrespondenceDictionary::build(&dataset, &alignments);
    let engine = QueryEngine::new(&dataset.corpus);

    let query = CQuery::parse(r#"filme(direção=?, gênero="Drama")"#).unwrap();
    let source = engine.answer(&query, dataset.other_language(), 20);
    assert!(!source.is_empty());
    for window in source.windows(2) {
        assert!(window[0].score >= window[1].score);
    }

    let (translated, _) = dictionary.translate_query(&query);
    let english = engine.answer(&translated, dataset.english(), 20);
    assert!(!english.is_empty());
}

#[test]
fn case_study_curves_are_monotone_and_complete() {
    let engine = MatchEngine::builder(Dataset::vn_en(&SyntheticConfig::tiny())).build();
    let curves = run_case_study_with_engine(&engine, 20);
    assert_eq!(curves.len(), 2);
    for curve in &curves {
        assert_eq!(curve.curve.len(), 20);
        for window in curve.curve.windows(2) {
            assert!(window[1] >= window[0] - 1e-9);
        }
    }
    // Both runs retrieve something.
    assert!(curves[0].total_gain() > 0.0);
    assert!(curves[1].total_gain() > 0.0);
}
