//! The candidate-pruned, parallel similarity-table build must be a pure
//! optimisation: for any synthetic corpus, the table it produces is
//! byte-identical to the dense all-pairs reference pass.
//!
//! This is the safety net under the sparse-pipeline tentpole. The pruned
//! path may only skip work it can prove irrelevant (value/link cosines of
//! attribute pairs sharing no term), so every score must come out bit for
//! bit the same — not approximately the same — as the dense pass, on every
//! type of randomly-drawn corpora in both language pairs.

use proptest::prelude::*;

use wikimatch_suite::{wiki_corpus, wikimatch};

use wiki_corpus::{Dataset, SyntheticConfig};
use wikimatch::{ComputeMode, MatchEngine, SimilarityTable};

fn config_with(seed: u64, extra_concepts: usize) -> SyntheticConfig {
    SyntheticConfig {
        seed,
        pairs_per_type_pt: 18,
        pairs_per_type_vn: 12,
        person_pool: 60,
        extra_concepts_per_type: extra_concepts,
        ..SyntheticConfig::default()
    }
}

fn assert_tables_byte_identical(dataset: Dataset) {
    let dense = MatchEngine::builder(dataset.clone())
        .compute_mode(ComputeMode::Dense)
        .build();
    let pruned = MatchEngine::builder(dataset).build();
    for pairing in &dense.dataset().types.clone() {
        let d = dense.similarity(&pairing.type_id).unwrap();
        let p = pruned.similarity(&pairing.type_id).unwrap();
        assert_eq!(d.pairs().len(), p.pairs().len());
        for (dp, pp) in d.pairs().iter().zip(p.pairs()) {
            assert_eq!((dp.p, dp.q), (pp.p, pp.q));
            assert_eq!(
                dp.vsim.to_bits(),
                pp.vsim.to_bits(),
                "vsim diverges for {} pair ({}, {})",
                pairing.type_id,
                dp.p,
                dp.q
            );
            assert_eq!(
                dp.lsim.to_bits(),
                pp.lsim.to_bits(),
                "lsim diverges for {} pair ({}, {})",
                pairing.type_id,
                dp.p,
                dp.q
            );
            assert_eq!(
                dp.lsi.to_bits(),
                pp.lsi.to_bits(),
                "lsi diverges for {} pair ({}, {})",
                pairing.type_id,
                dp.p,
                dp.q
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// For any generator seed, pruned and dense tables agree bit for bit on
    /// every entity type of the Vn-En pair (and scaled-up schemas keep the
    /// guarantee, exercising the inverted index on generated concepts).
    #[test]
    fn pruned_equals_dense_on_random_corpora(
        seed in 0u64..1_000,
        extra in 0usize..12,
    ) {
        assert_tables_byte_identical(Dataset::vn_en(&config_with(seed, extra)));
    }
}

/// One deterministic Pt-En check over all fourteen types (kept out of the
/// proptest loop: the full pair is ~10× the work of Vn-En).
#[test]
fn pruned_equals_dense_on_the_pt_en_pair() {
    assert_tables_byte_identical(Dataset::pt_en(&config_with(7, 6)));
}

/// The direct `SimilarityTable` entry points agree with the engine modes.
#[test]
fn compute_entry_points_are_consistent() {
    let dataset = Dataset::vn_en(&SyntheticConfig::tiny());
    let engine = MatchEngine::new(dataset);
    let prepared = engine.prepared("film").unwrap();
    let dense = SimilarityTable::compute_dense(&prepared.schema, engine.config().lsi);
    let default = SimilarityTable::compute(&prepared.schema, engine.config().lsi);
    assert_eq!(dense.pairs(), default.pairs());
    assert_eq!(default.pairs(), prepared.table.pairs());
}
