//! The candidate-pruned, parallel similarity-table build must be a pure
//! optimisation: for any synthetic corpus, the table it produces is
//! byte-identical to the dense all-pairs reference pass.
//!
//! This is the safety net under the sparse-pipeline tentpole. The pruned
//! path may only skip work it can prove irrelevant (value/link cosines of
//! attribute pairs sharing no term), so every score must come out bit for
//! bit the same — not approximately the same — as the dense pass, on every
//! type of randomly-drawn corpora in both language pairs.

use proptest::prelude::*;

use wikimatch_suite::adversarial::{adversarial_pt_en, AdversarialFlavor};
use wikimatch_suite::{wiki_corpus, wiki_text, wikimatch};

use wiki_corpus::{Dataset, SyntheticConfig};
use wikimatch::{ComputeMode, MatchEngine, SimilarityTable};

fn config_with(seed: u64, extra_concepts: usize) -> SyntheticConfig {
    SyntheticConfig {
        seed,
        pairs_per_type_pt: 18,
        pairs_per_type_vn: 12,
        person_pool: 60,
        extra_concepts_per_type: extra_concepts,
        ..SyntheticConfig::default()
    }
}

fn assert_tables_byte_identical(dataset: Dataset) {
    let dense = MatchEngine::builder(dataset.clone())
        .compute_mode(ComputeMode::Dense)
        .build();
    let pruned = MatchEngine::builder(dataset).build();
    for pairing in &dense.dataset().types.clone() {
        let d = dense.similarity(&pairing.type_id).unwrap();
        let p = pruned.similarity(&pairing.type_id).unwrap();
        assert_eq!(d.pairs().len(), p.pairs().len());
        for (dp, pp) in d.pairs().iter().zip(p.pairs()) {
            assert_eq!((dp.p, dp.q), (pp.p, pp.q));
            assert_eq!(
                dp.vsim.to_bits(),
                pp.vsim.to_bits(),
                "vsim diverges for {} pair ({}, {})",
                pairing.type_id,
                dp.p,
                dp.q
            );
            assert_eq!(
                dp.lsim.to_bits(),
                pp.lsim.to_bits(),
                "lsim diverges for {} pair ({}, {})",
                pairing.type_id,
                dp.p,
                dp.q
            );
            assert_eq!(
                dp.lsi.to_bits(),
                pp.lsi.to_bits(),
                "lsi diverges for {} pair ({}, {})",
                pairing.type_id,
                dp.p,
                dp.q
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// For any generator seed, pruned and dense tables agree bit for bit on
    /// every entity type of the Vn-En pair (and scaled-up schemas keep the
    /// guarantee, exercising the inverted index on generated concepts).
    #[test]
    fn pruned_equals_dense_on_random_corpora(
        seed in 0u64..1_000,
        extra in 0usize..12,
    ) {
        assert_tables_byte_identical(Dataset::vn_en(&config_with(seed, extra)));
    }
}

/// One deterministic Pt-En check over all fourteen types (kept out of the
/// proptest loop: the full pair is ~10× the work of Vn-En).
#[test]
fn pruned_equals_dense_on_the_pt_en_pair() {
    assert_tables_byte_identical(Dataset::pt_en(&config_with(7, 6)));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The dense/pruned bit-identity also holds on the adversarial corpus
    /// shapes (Zipf-skewed weights, empty/singleton vectors, all-pairs
    /// cliques, unicode-heavy values) — exactly the inputs where a sparse
    /// shortcut is most tempted to drift.
    #[test]
    fn pruned_equals_dense_on_adversarial_corpora(
        seed in 0u64..1_000,
        flavor_index in 0usize..4,
    ) {
        let flavor = AdversarialFlavor::ALL[flavor_index];
        assert_tables_byte_identical(adversarial_pt_en(flavor, seed));
    }
}

/// FNV-1a over the bit patterns of every score of every type's table, in
/// canonical pair order — one u64 that changes if any float of any table
/// moves by one ulp.
fn table_bits_hash(engine: &MatchEngine) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut fold = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for pairing in &engine.dataset().types {
        let table = engine.similarity(&pairing.type_id).unwrap();
        for pair in table.pairs() {
            fold(pair.vsim.to_bits());
            fold(pair.lsim.to_bits());
            fold(pair.lsi.to_bits());
        }
    }
    h
}

/// The interned pipeline reproduces the string-keyed pipeline's results
/// **bit for bit**: these golden hashes were captured from the last
/// string-keyed build (PR 4 seed) on the exact same datasets, before the
/// `TermArena` refactor landed. If any vocabulary-interning change alters
/// one bit of one score anywhere, these constants catch it.
#[test]
fn table_bits_match_the_pre_interning_golden_values() {
    let cases: [(&str, Dataset, u64); 3] = [
        (
            "pt_tiny",
            Dataset::pt_en(&SyntheticConfig::tiny()),
            0xef672a275750ed0a,
        ),
        (
            "vn_tiny",
            Dataset::vn_en(&SyntheticConfig::tiny()),
            0x14a39a7e0ac36a19,
        ),
        (
            "vn_seeded",
            Dataset::vn_en(&config_with(7, 6)),
            0xbfea5a7d37f94a8e,
        ),
    ];
    for (name, dataset, expected) in cases {
        let engine = MatchEngine::builder(dataset).build();
        let found = table_bits_hash(&engine);
        assert_eq!(
            found, expected,
            "{name}: table bits diverged from the string-keyed seed \
             (found {found:#018x}, golden {expected:#018x})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The interned (shared-arena, integer-compare) merge walk and the
    /// string-compare fallback walk are the same function: for every
    /// attribute vector of a randomly drawn corpus, re-hosting the vector on
    /// a private arena (forcing the string path) reproduces every cosine
    /// bit for bit.
    #[test]
    fn interned_and_string_walks_agree_on_random_corpora(seed in 0u64..1_000) {
        let engine = MatchEngine::builder(Dataset::vn_en(&config_with(seed, 4))).build();
        for pairing in &engine.dataset().types.clone() {
            let schema = engine.schema(&pairing.type_id).unwrap();
            // Rebuild every value vector on its own private arena: pairwise
            // ops between rebuilt vectors must take the resolved-term path.
            let detached: Vec<_> = schema
                .attributes
                .iter()
                .map(|a| {
                    let entries = a
                        .translated_values
                        .iter()
                        .map(|(t, w)| (t.to_string(), w))
                        .collect();
                    wiki_text::TermVector::from_sorted_entries(entries)
                        .expect("iter output is term-sorted")
                })
                .collect();
            for p in 0..schema.len() {
                for q in (p + 1)..schema.len() {
                    let interned = schema.attributes[p]
                        .translated_values
                        .cosine(&schema.attributes[q].translated_values);
                    let string_path = detached[p].cosine(&detached[q]);
                    prop_assert_eq!(
                        interned.to_bits(),
                        string_path.to_bits(),
                        "type {} pair ({}, {})",
                        &pairing.type_id,
                        p,
                        q
                    );
                }
            }
        }
    }
}

/// The sparse `Filtered` pipeline has golden hashes of its own: the FNV
/// fold over every *stored* pair's bits at the default threshold. The
/// constants were captured from the first filtered build on these exact
/// datasets; because every stored score is pinned bit-identical to the
/// dense oracle and the stored set is exactly the at-threshold set, any
/// drift in the bound derivation, the survivor re-filter or the sparse
/// LSI pass moves these hashes.
#[test]
fn filtered_table_bits_match_the_golden_values() {
    let cases: [(&str, Dataset, u64); 2] = [
        (
            "pt_tiny_filtered",
            Dataset::pt_en(&SyntheticConfig::tiny()),
            0x413b5e58cd21e196,
        ),
        (
            "vn_tiny_filtered",
            Dataset::vn_en(&SyntheticConfig::tiny()),
            0x9c784470ea842aad,
        ),
    ];
    for (name, dataset, expected) in cases {
        let engine = MatchEngine::builder(dataset)
            .compute_mode(ComputeMode::filtered(ComputeMode::DEFAULT_FILTER_THRESHOLD))
            .build();
        let found = table_bits_hash(&engine);
        assert_eq!(
            found, expected,
            "{name}: filtered table bits diverged from the captured seed \
             (found {found:#018x}, golden {expected:#018x})"
        );
    }
}

/// The direct `SimilarityTable` entry points agree with the engine modes.
#[test]
fn compute_entry_points_are_consistent() {
    let dataset = Dataset::vn_en(&SyntheticConfig::tiny());
    let engine = MatchEngine::new(dataset);
    let prepared = engine.prepared("film").unwrap();
    let dense = SimilarityTable::compute_dense(&prepared.schema, engine.config().lsi);
    let default = SimilarityTable::compute(&prepared.schema, engine.config().lsi);
    assert_eq!(dense.pairs(), default.pairs());
    assert_eq!(default.pairs(), prepared.table.pairs());
}
