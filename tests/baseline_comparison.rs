//! Integration tests for the comparative claims of the paper (Table 2
//! shape): WikiMatch's recall advantage over the value-equality baseline and
//! its clear margin over plain LSI. All approaches run as `SchemaMatcher`
//! plugins through one `MatchEngine` session per dataset.

use wikimatch_suite::{evaluate_pairs, wiki_baselines, wiki_corpus, wiki_eval, wikimatch};

use wiki_baselines::{BoumaMatcher, LsiTopKMatcher};
use wiki_corpus::{Dataset, Language, SyntheticConfig};
use wiki_eval::Scores;
use wikimatch::{MatchEngine, SchemaMatcher, WikiMatch};

struct Comparison {
    wikimatch: Scores,
    bouma: Scores,
    lsi: Scores,
}

fn compare(engine: &MatchEngine) -> Comparison {
    let dataset = engine.dataset();
    let systems: [&dyn SchemaMatcher; 3] = [
        &WikiMatch::default(),
        &BoumaMatcher::default(),
        &LsiTopKMatcher::new(1),
    ];
    let mut per_system: Vec<Vec<Scores>> = vec![Vec::new(); systems.len()];
    for pairing in &dataset.types {
        let schema = engine.schema(&pairing.type_id).unwrap();
        let freq_other = schema.frequencies(dataset.other_language());
        let freq_en = schema.frequencies(&Language::En);
        for (i, system) in systems.iter().enumerate() {
            let pairs = engine.align_with(*system, &pairing.type_id).unwrap();
            per_system[i].push(evaluate_pairs(
                &dataset,
                &pairing.type_id,
                &freq_other,
                &freq_en,
                &pairs,
            ));
        }
    }
    Comparison {
        wikimatch: Scores::average(per_system[0].iter()),
        bouma: Scores::average(per_system[1].iter()),
        lsi: Scores::average(per_system[2].iter()),
    }
}

#[test]
fn wikimatch_outperforms_plain_lsi_and_out_recalls_bouma_pt_en() {
    let engine = MatchEngine::builder(Dataset::pt_en(&SyntheticConfig::tiny())).build();
    let c = compare(&engine);
    assert!(
        c.wikimatch.f1 > c.lsi.f1,
        "WikiMatch F {:.2} vs LSI F {:.2}",
        c.wikimatch.f1,
        c.lsi.f1
    );
    assert!(
        c.wikimatch.recall > c.bouma.recall,
        "WikiMatch recall {:.2} vs Bouma recall {:.2}",
        c.wikimatch.recall,
        c.bouma.recall
    );
    // Bouma keeps its characteristic high precision.
    assert!(
        c.bouma.precision > 0.8,
        "Bouma precision {:.2}",
        c.bouma.precision
    );
}

#[test]
fn wikimatch_outperforms_plain_lsi_vn_en() {
    let engine = MatchEngine::builder(Dataset::vn_en(&SyntheticConfig::tiny())).build();
    let c = compare(&engine);
    assert!(
        c.wikimatch.f1 > c.lsi.f1,
        "WikiMatch F {:.2} vs LSI F {:.2}",
        c.wikimatch.f1,
        c.lsi.f1
    );
    assert!(
        c.wikimatch.recall >= c.bouma.recall,
        "WikiMatch recall {:.2} vs Bouma recall {:.2}",
        c.wikimatch.recall,
        c.bouma.recall
    );
}

#[test]
fn lsi_recall_grows_with_k_while_precision_drops() {
    // The Figure 6 trend, asserted on one representative type. The engine
    // prepares the film schema once; every k reuses it.
    let engine = MatchEngine::builder(Dataset::pt_en(&SyntheticConfig::tiny())).build();
    let dataset = engine.dataset();
    let schema = engine.schema("film").unwrap();
    let freq_other = schema.frequencies(&Language::Pt);
    let freq_en = schema.frequencies(&Language::En);
    let eval = |k: usize| {
        let pairs = engine.align_with(&LsiTopKMatcher::new(k), "film").unwrap();
        evaluate_pairs(&dataset, "film", &freq_other, &freq_en, &pairs)
    };
    let top1 = eval(1);
    let top10 = eval(10);
    assert!(top10.recall >= top1.recall);
    assert!(top10.precision <= top1.precision + 1e-9);
}
