//! Integration tests for the comparative claims of the paper (Table 2
//! shape): WikiMatch's recall advantage over the value-equality baseline and
//! its clear margin over plain LSI.

use wikimatch_suite::{evaluate_pairs, wiki_baselines, wiki_corpus, wiki_eval, wikimatch};

use wiki_baselines::{BoumaMatcher, LsiTopKMatcher, Matcher};
use wiki_corpus::{Dataset, Language, SyntheticConfig};
use wiki_eval::Scores;
use wikimatch::{WikiMatch, WikiMatchConfig};

struct Comparison {
    wikimatch: Scores,
    bouma: Scores,
    lsi: Scores,
}

fn compare(dataset: &Dataset) -> Comparison {
    let matcher = WikiMatch::new(WikiMatchConfig::default());
    let mut wm = Vec::new();
    let mut bouma = Vec::new();
    let mut lsi = Vec::new();
    for pairing in &dataset.types {
        let alignment = matcher.align_type(dataset, pairing);
        let freq_other = alignment.schema.frequencies(dataset.other_language());
        let freq_en = alignment.schema.frequencies(&Language::En);
        let eval = |pairs: &[(String, String)]| {
            evaluate_pairs(dataset, &pairing.type_id, &freq_other, &freq_en, pairs)
        };
        wm.push(eval(&alignment.cross_pairs()));
        bouma.push(eval(
            &BoumaMatcher::default().align(&alignment.schema, &alignment.table),
        ));
        lsi.push(eval(
            &LsiTopKMatcher::new(1).align(&alignment.schema, &alignment.table),
        ));
    }
    Comparison {
        wikimatch: Scores::average(wm.iter()),
        bouma: Scores::average(bouma.iter()),
        lsi: Scores::average(lsi.iter()),
    }
}

#[test]
fn wikimatch_outperforms_plain_lsi_and_out_recalls_bouma_pt_en() {
    let dataset = Dataset::pt_en(&SyntheticConfig::tiny());
    let c = compare(&dataset);
    assert!(
        c.wikimatch.f1 > c.lsi.f1,
        "WikiMatch F {:.2} vs LSI F {:.2}",
        c.wikimatch.f1,
        c.lsi.f1
    );
    assert!(
        c.wikimatch.recall > c.bouma.recall,
        "WikiMatch recall {:.2} vs Bouma recall {:.2}",
        c.wikimatch.recall,
        c.bouma.recall
    );
    // Bouma keeps its characteristic high precision.
    assert!(c.bouma.precision > 0.8, "Bouma precision {:.2}", c.bouma.precision);
}

#[test]
fn wikimatch_outperforms_plain_lsi_vn_en() {
    let dataset = Dataset::vn_en(&SyntheticConfig::tiny());
    let c = compare(&dataset);
    assert!(
        c.wikimatch.f1 > c.lsi.f1,
        "WikiMatch F {:.2} vs LSI F {:.2}",
        c.wikimatch.f1,
        c.lsi.f1
    );
    assert!(
        c.wikimatch.recall >= c.bouma.recall,
        "WikiMatch recall {:.2} vs Bouma recall {:.2}",
        c.wikimatch.recall,
        c.bouma.recall
    );
}

#[test]
fn lsi_recall_grows_with_k_while_precision_drops() {
    // The Figure 6 trend, asserted on one representative type.
    let dataset = Dataset::pt_en(&SyntheticConfig::tiny());
    let matcher = WikiMatch::default();
    let pairing = dataset.type_pairing("film").unwrap();
    let alignment = matcher.align_type(&dataset, pairing);
    let freq_other = alignment.schema.frequencies(&Language::Pt);
    let freq_en = alignment.schema.frequencies(&Language::En);
    let eval = |k: usize| {
        evaluate_pairs(
            &dataset,
            "film",
            &freq_other,
            &freq_en,
            &LsiTopKMatcher::new(k).align(&alignment.schema, &alignment.table),
        )
    };
    let top1 = eval(1);
    let top10 = eval(10);
    assert!(top10.recall >= top1.recall);
    assert!(top10.precision <= top1.precision + 1e-9);
}
