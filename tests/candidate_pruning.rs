//! Candidate-filter soundness: the bound-filtered sparse build may only
//! skip pairs it can *prove* sub-threshold under the exact oracle, and
//! every pair it keeps must carry the oracle's exact bits.
//!
//! This is the oracle-backed harness under the candidate-frontier
//! tentpole. The `Filtered` mode trades completeness (only at-threshold
//! pairs are stored) for build time, but it may never trade *accuracy*:
//!
//! * every pair absent from the filtered table scores strictly below the
//!   threshold on both direct channels under the `Dense` reference pass;
//! * every stored pair's at-threshold channels and LSI score are
//!   bit-identical (`f64::to_bits`) to the dense table's;
//! * the `Lsh` mode is explicitly approximate — its recall of
//!   at-threshold pairs is measured against the oracle, and the modes
//!   that contractually require exactness (snapshot capture/restore)
//!   refuse sparse engines outright.
//!
//! The proptests run over random synthetic corpora *and* the adversarial
//! generators (Zipf skew, empty/singleton vectors, all-shared-term
//! cliques, unicode-heavy values), with the threshold itself drawn from
//! the strategy.

use proptest::prelude::*;

use wikimatch_suite::adversarial::{adversarial_pt_en, AdversarialFlavor};
use wikimatch_suite::{wiki_corpus, wikimatch};

use wiki_corpus::{Dataset, ScaleTier, SyntheticConfig};
use wikimatch::{candidate_recall, ComputeMode, MatchEngine, SnapshotError};
use wikimatch::{EngineSnapshot, SimilarityTable};

fn config_with(seed: u64, extra_concepts: usize) -> SyntheticConfig {
    SyntheticConfig {
        seed,
        pairs_per_type_pt: 18,
        pairs_per_type_vn: 12,
        person_pool: 60,
        extra_concepts_per_type: extra_concepts,
        ..SyntheticConfig::default()
    }
}

/// The soundness proof: on every type of `dataset`, the filtered table at
/// `threshold` stores exactly the oracle's at-threshold pairs, with the
/// oracle's exact bits on every stored channel.
fn assert_filter_sound(dataset: Dataset, threshold: f64) {
    let dense = MatchEngine::builder(dataset.clone())
        .compute_mode(ComputeMode::Dense)
        .build();
    let filtered = MatchEngine::builder(dataset)
        .compute_mode(ComputeMode::filtered(threshold))
        .build();
    for pairing in &dense.dataset().types.clone() {
        let type_id = pairing.type_id.as_str();
        let oracle = dense.similarity(type_id).unwrap();
        let sparse = filtered.similarity(type_id).unwrap();

        // Forward direction: every oracle pair at or above the threshold
        // on a direct channel survives the filter bit for bit; below it,
        // the stored channel reads exactly 0.
        let mut survivors = 0usize;
        for exact in oracle.pairs() {
            let keep = exact.vsim >= threshold || exact.lsim >= threshold;
            match sparse.pair(exact.p, exact.q) {
                Some(kept) => {
                    assert!(
                        keep,
                        "{type_id}: pair ({}, {}) stored but sub-threshold \
                         (vsim {}, lsim {}, threshold {threshold})",
                        exact.p, exact.q, exact.vsim, exact.lsim
                    );
                    survivors += 1;
                    let want_vsim = if exact.vsim >= threshold {
                        exact.vsim
                    } else {
                        0.0
                    };
                    let want_lsim = if exact.lsim >= threshold {
                        exact.lsim
                    } else {
                        0.0
                    };
                    assert_eq!(
                        kept.vsim.to_bits(),
                        want_vsim.to_bits(),
                        "{type_id}: vsim bits diverge on ({}, {})",
                        exact.p,
                        exact.q
                    );
                    assert_eq!(
                        kept.lsim.to_bits(),
                        want_lsim.to_bits(),
                        "{type_id}: lsim bits diverge on ({}, {})",
                        exact.p,
                        exact.q
                    );
                    assert_eq!(
                        kept.lsi.to_bits(),
                        exact.lsi.to_bits(),
                        "{type_id}: lsi bits diverge on ({}, {})",
                        exact.p,
                        exact.q
                    );
                }
                // The skip must be provably sound: strictly sub-threshold
                // on both direct channels under the oracle.
                None => assert!(
                    !keep,
                    "{type_id}: filter dropped at-threshold pair ({}, {}) \
                     (vsim {}, lsim {}, threshold {threshold})",
                    exact.p, exact.q, exact.vsim, exact.lsim
                ),
            }
        }
        assert_eq!(
            survivors,
            sparse.pairs().len(),
            "{type_id}: filtered table stores pairs the oracle lacks"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// For any generator seed, schema scale and threshold, the filter is
    /// sound on every entity type of the Vn-En pair.
    #[test]
    fn filter_is_sound_on_random_corpora(
        seed in 0u64..1_000,
        extra in 0usize..12,
        threshold_pct in 1usize..96,
    ) {
        let threshold = threshold_pct as f64 / 100.0;
        assert_filter_sound(Dataset::vn_en(&config_with(seed, extra)), threshold);
    }

    /// The same proof on the adversarial shapes: Zipf-skewed weights,
    /// empty/singleton vectors, all-pairs candidate cliques and
    /// unicode-heavy values.
    #[test]
    fn filter_is_sound_on_adversarial_corpora(
        seed in 0u64..1_000,
        flavor_index in 0usize..4,
        threshold_pct in 1usize..96,
    ) {
        let flavor = AdversarialFlavor::ALL[flavor_index];
        let threshold = threshold_pct as f64 / 100.0;
        assert_filter_sound(adversarial_pt_en(flavor, seed), threshold);
    }
}

/// One deterministic Pt-En soundness check over all fourteen types at the
/// default serving threshold.
#[test]
fn filter_is_sound_on_the_pt_en_pair() {
    assert_filter_sound(
        Dataset::pt_en(&config_with(7, 6)),
        ComputeMode::DEFAULT_FILTER_THRESHOLD,
    );
}

/// Banded-SimHash candidate generation is explicitly approximate, but it
/// must stay *usefully* approximate: at the default band/row shape its
/// recall of at-threshold film pairs on the medium tier is ≥ 0.95 against
/// the dense oracle (deterministic generator seed — this is a regression
/// bar, not a statistical estimate).
#[test]
fn lsh_recall_on_the_medium_tier_clears_the_bar() {
    let dataset = Dataset::pt_en(&ScaleTier::Medium.config());
    let dense = MatchEngine::builder(dataset.clone())
        .compute_mode(ComputeMode::Dense)
        .build();
    let lsh = MatchEngine::builder(dataset)
        .compute_mode(ComputeMode::lsh(
            ComputeMode::DEFAULT_LSH_BANDS,
            ComputeMode::DEFAULT_LSH_ROWS,
        ))
        .build();
    let oracle = dense.similarity("film").unwrap();
    let approx = lsh.similarity("film").unwrap();
    let recall = candidate_recall(&oracle, &approx, ComputeMode::DEFAULT_FILTER_THRESHOLD);
    assert!(
        recall >= 0.95,
        "medium-tier film LSH recall {recall} < 0.95"
    );
    // And every candidate the LSH pass did score carries exact bits.
    for pair in approx.pairs() {
        let exact = oracle.pair(pair.p, pair.q).expect("oracle is dense");
        assert_eq!(pair.vsim.to_bits(), exact.vsim.to_bits());
        assert_eq!(pair.lsim.to_bits(), exact.lsim.to_bits());
    }
}

/// Sparse modes are rejected wherever the engine contract requires
/// exactness: snapshot capture refuses them, and restoring an exact
/// snapshot into a sparse-mode engine is refused symmetrically.
#[test]
fn exactness_contracts_reject_sparse_modes() {
    let dataset = Dataset::pt_en(&SyntheticConfig::tiny());
    let exact = MatchEngine::new(dataset.clone());
    exact.prepare_all();
    let snapshot = EngineSnapshot::capture(&exact).expect("exact-mode engine captures");

    for mode in [ComputeMode::filtered(0.5), ComputeMode::lsh(8, 4)] {
        let sparse = MatchEngine::builder(dataset.clone())
            .compute_mode(mode)
            .build();
        sparse.prepare_all();
        assert!(
            matches!(
                EngineSnapshot::capture(&sparse),
                Err(SnapshotError::InexactMode(_))
            ),
            "{mode}: capture accepted a sparse engine"
        );
        let roundtrip = EngineSnapshot::from_bytes(&snapshot.to_bytes()).unwrap();
        assert!(
            matches!(
                MatchEngine::builder(dataset.clone())
                    .compute_mode(mode)
                    .build_from_snapshot(roundtrip),
                Err(SnapshotError::InexactMode(_))
            ),
            "{mode}: restore accepted a sparse-mode builder"
        );
    }
}

/// `ScaleTier` is the single tier-name authority threaded through matchd,
/// the bench binaries and the registry: `Display` and `FromStr` must
/// round-trip exactly, including the new `xlarge` tier.
#[test]
fn scale_tier_display_from_str_round_trips() {
    assert_eq!(ScaleTier::ALL.len(), 5, "tier catalog changed silently");
    for tier in ScaleTier::ALL {
        let name = tier.to_string();
        assert_eq!(name.parse::<ScaleTier>(), Ok(tier), "{name} round trip");
        assert_eq!(tier.name(), name, "Display and name() diverge");
    }
    assert_eq!("xlarge".parse::<ScaleTier>(), Ok(ScaleTier::Xlarge));
    assert!("galactic".parse::<ScaleTier>().is_err());
}

/// The counted entry point reports a complete partition of the channel
/// work: `scored + pruned` covers every ordered channel evaluation of the
/// build, in every mode, on the same schema.
#[test]
fn pair_counts_partition_the_channel_work() {
    let dataset = Dataset::pt_en(&SyntheticConfig::tiny());
    let engine = MatchEngine::new(dataset);
    let prepared = engine.prepared("film").unwrap();
    let n = prepared.schema.len() as u64;
    for mode in [
        ComputeMode::Dense,
        ComputeMode::Pruned,
        ComputeMode::filtered(0.6),
        ComputeMode::lsh(16, 4),
    ] {
        let (_, counts) =
            SimilarityTable::compute_counted(&prepared.schema, engine.config().lsi, mode);
        assert_eq!(
            counts.scored + counts.pruned,
            n * (n - 1),
            "{mode}: counts do not partition the n(n-1) channel grid"
        );
    }
}
