//! Property-based integration tests: pipeline invariants that must hold for
//! any generator seed, exercised through the `MatchEngine` session API.

use proptest::prelude::*;

use wikimatch_suite::{evaluate_alignment, wiki_corpus, wikimatch};

use wiki_corpus::{Dataset, Language, SyntheticConfig};
use wikimatch::MatchEngine;

fn config_with_seed(seed: u64) -> SyntheticConfig {
    SyntheticConfig {
        seed,
        pairs_per_type_pt: 20,
        pairs_per_type_vn: 12,
        person_pool: 60,
        ..SyntheticConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// For any seed, the Vn-En engine session produces bounded scores,
    /// derived pairs that reference real attributes, and a non-degenerate
    /// gold standard.
    #[test]
    fn pipeline_invariants_hold_for_any_seed(seed in 0u64..1_000) {
        let engine = MatchEngine::builder(Dataset::vn_en(&config_with_seed(seed))).build();
        let dataset = engine.dataset();
        prop_assert_eq!(dataset.types.len(), 4);
        prop_assert!(dataset.ground_truth.total_cross_pairs(&Language::Vn, &Language::En) > 0);

        for alignment in engine.align_all() {
            prop_assert!(alignment.schema.dual_count > 0);
            for (vn, en) in alignment.cross_pairs() {
                prop_assert!(alignment.schema.index_of(&Language::Vn, &vn).is_some());
                prop_assert!(alignment.schema.index_of(&Language::En, &en).is_some());
            }
            let scores = evaluate_alignment(&engine.dataset(), &alignment);
            prop_assert!((0.0..=1.0).contains(&scores.precision));
            prop_assert!((0.0..=1.0).contains(&scores.recall));
            prop_assert!((0.0..=1.0).contains(&scores.f1));
        }
    }

    /// Corpus generation is deterministic in the seed and articles always
    /// carry non-empty infoboxes with resolvable cross-language links.
    #[test]
    fn corpus_generation_invariants(seed in 0u64..1_000) {
        let a = Dataset::vn_en(&config_with_seed(seed));
        let b = Dataset::vn_en(&config_with_seed(seed));
        prop_assert_eq!(a.corpus.len(), b.corpus.len());

        for article in a.corpus.articles() {
            prop_assert!(!article.infobox.is_empty(), "{}", article.title);
        }
        let pairs = a.corpus.cross_language_pairs(&Language::En, &Language::Vn);
        prop_assert!(pairs.len() >= 4 * 12);
        for (en, vn) in pairs.iter().take(50) {
            prop_assert_eq!(&a.corpus.get(*en).unwrap().language, &Language::En);
            prop_assert_eq!(&a.corpus.get(*vn).unwrap().language, &Language::Vn);
        }
    }
}
