//! The `MatchEngine` session API must be a pure refactoring of the legacy
//! one-shot path: identical inputs produce byte-identical outputs.
//!
//! The legacy `WikiMatch::align_all` rebuilt the title dictionary per type;
//! the engine builds it once. Because the dictionary is a deterministic
//! function of the corpus, the derived correspondences must match exactly —
//! this test pins that equivalence on both standard datasets.

#![allow(deprecated)] // exercising the legacy shims is the point

use wikimatch_suite::{wiki_corpus, wikimatch};

use wiki_corpus::{Dataset, SyntheticConfig};
use wikimatch::{MatchEngine, TypeAlignment, WikiMatch, WikiMatchConfig};

/// The pre-0.2 `align_all` shape: a fresh title dictionary per entity type
/// (that is what the deprecated `align_type` shim still does), sequential
/// iteration.
fn legacy_align_all(dataset: &Dataset, config: WikiMatchConfig) -> Vec<TypeAlignment> {
    let matcher = WikiMatch::new(config);
    dataset
        .types
        .iter()
        .map(|pairing| matcher.align_type(dataset, pairing))
        .collect()
}

fn assert_byte_identical(dataset: Dataset) {
    let config = WikiMatchConfig::default();
    let legacy = legacy_align_all(&dataset, config);
    let engine = MatchEngine::builder(dataset).config(config).build();
    let modern = engine.align_all();

    assert_eq!(legacy.len(), modern.len());
    for (old, new) in legacy.iter().zip(&modern) {
        assert_eq!(old.type_id, new.type_id);
        // Byte-identical derived correspondences...
        assert_eq!(
            format!("{:?}", old.cross_pairs()),
            format!("{:?}", new.cross_pairs()),
            "cross pairs diverge for {}",
            old.type_id
        );
        // ...and identical clusters and prepared artifacts underneath.
        assert_eq!(old.matches, new.matches, "{}", old.type_id);
        assert_eq!(*old.schema, *new.schema, "{}", old.type_id);
    }
}

#[test]
fn engine_align_all_matches_legacy_path_pt_en() {
    assert_byte_identical(Dataset::pt_en(&SyntheticConfig::tiny()));
}

#[test]
fn engine_align_all_matches_legacy_path_vn_en() {
    assert_byte_identical(Dataset::vn_en(&SyntheticConfig::tiny()));
}

#[test]
fn deprecated_shims_delegate_to_the_engine() {
    let dataset = Dataset::pt_en(&SyntheticConfig::tiny());
    let matcher = WikiMatch::default();
    let engine = MatchEngine::builder(dataset.clone()).build();

    // One-shot align_type == engine align.
    let pairing = dataset.type_pairing("film").unwrap();
    let shim = matcher.align_type(&dataset, pairing);
    let session = engine.align("film").unwrap();
    assert_eq!(shim.cross_pairs(), session.cross_pairs());

    // One-shot prepare_type == engine artifacts.
    let (schema, _table) = matcher.prepare_type(&dataset, pairing);
    assert_eq!(schema, *engine.schema("film").unwrap());

    // One-shot match_types == session type matches.
    let shim_types = matcher.match_types(&dataset);
    assert_eq!(shim_types.len(), engine.type_matches().len());

    // One-shot align_all == parallel session align_all.
    let shim_all = matcher.align_all(&dataset);
    for (a, b) in shim_all.iter().zip(engine.align_all().iter()) {
        assert_eq!(a.type_id, b.type_id);
        assert_eq!(a.cross_pairs(), b.cross_pairs());
    }
}
