//! End-to-end integration tests: corpus generation → engine session →
//! type matching → attribute alignment → evaluation, spanning every crate
//! of the workspace.

use wikimatch_suite::{evaluate_alignment, wiki_corpus, wiki_eval, wikimatch};

use wiki_corpus::{Dataset, Language, SyntheticConfig};
use wiki_eval::Scores;
use wikimatch::MatchEngine;

fn engine() -> MatchEngine {
    MatchEngine::builder(Dataset::pt_en(&SyntheticConfig::tiny())).build()
}

#[test]
fn full_pipeline_produces_sound_alignments_for_every_type() {
    let engine = engine();
    let alignments = engine.align_all();
    assert_eq!(alignments.len(), engine.dataset().types.len());

    let mut scores = Vec::new();
    for alignment in &alignments {
        // Every derived pair references attributes that exist in the schema
        // and is oriented (foreign, English).
        for (other, en) in alignment.cross_pairs() {
            assert!(alignment.schema.index_of(&Language::Pt, &other).is_some());
            assert!(alignment.schema.index_of(&Language::En, &en).is_some());
        }
        let s = evaluate_alignment(&engine.dataset(), alignment);
        assert!((0.0..=1.0).contains(&s.precision));
        assert!((0.0..=1.0).contains(&s.recall));
        scores.push(s);
    }
    // The matcher must do clearly better than chance on average.
    let avg = Scores::average(scores.iter());
    assert!(avg.f1 > 0.4, "average F-measure {:.2} too low", avg.f1);
    assert!(
        avg.precision > 0.5,
        "average precision {:.2} too low",
        avg.precision
    );
}

#[test]
fn type_matching_recovers_every_catalog_pairing() {
    let engine = engine();
    // The correspondences were discovered once, at session construction.
    let matches = engine.type_matches();
    for pairing in &engine.dataset().types {
        let found = matches
            .iter()
            .find(|m| m.label_a == pairing.label_other)
            .unwrap_or_else(|| panic!("type {} not matched", pairing.label_other));
        assert_eq!(found.label_b, pairing.label_en);
        assert!(
            found.confidence > 0.6,
            "{}: majority vote too weak ({})",
            pairing.type_id,
            found.confidence
        );
    }
}

#[test]
fn known_film_correspondences_are_found() {
    let engine = engine();
    let alignment = engine.align("film").unwrap();
    let pairs = alignment.cross_pairs();
    for (pt, en) in [
        ("direcao", "directed by"),
        ("pais", "country"),
        ("idioma", "language"),
    ] {
        assert!(
            pairs.contains(&(pt.to_string(), en.to_string())),
            "expected {pt} ~ {en} among {pairs:?}"
        );
    }
    // And a known non-correspondence is absent.
    assert!(!pairs.contains(&("direcao".to_string(), "starring".to_string())));
}

#[test]
fn vietnamese_pipeline_works_despite_small_corpus() {
    let engine = MatchEngine::builder(Dataset::vn_en(&SyntheticConfig::tiny())).build();
    let alignments = engine.align_all();
    assert_eq!(alignments.len(), 4);
    let avg = Scores::average(
        alignments
            .iter()
            .map(|a| evaluate_alignment(&engine.dataset(), a))
            .collect::<Vec<_>>()
            .iter(),
    );
    assert!(avg.f1 > 0.4, "Vn-En average F {:.2}", avg.f1);
}

#[test]
fn derived_correspondences_are_deterministic() {
    let engine = engine();
    let a = engine.align("actor").unwrap();
    let b = engine.align("actor").unwrap();
    assert_eq!(a.cross_pairs(), b.cross_pairs());

    // And across independent sessions over equal datasets.
    let other = MatchEngine::builder(Dataset::pt_en(&SyntheticConfig::tiny())).build();
    assert_eq!(a.cross_pairs(), other.align("actor").unwrap().cross_pairs());
}
