//! Snapshot persistence must be a pure serialization: for any synthetic
//! corpus, saving a warmed engine and loading the snapshot back yields
//! `to_bits`-equal similarity tables and identical `align_all` output,
//! with **zero** artifact builds on the restored side.
//!
//! This is the safety net under the snapshot tentpole (the counterpart of
//! `similarity_equivalence.rs` for the pruned build): the disk round trip
//! may not perturb a single bit of any score, and damaged or incompatible
//! files must be rejected with a typed error instead of deserializing
//! garbage.

use proptest::prelude::*;

use wikimatch_suite::{wiki_corpus, wikimatch};

use wiki_corpus::{Dataset, SyntheticConfig};
use wikimatch::snapshot::FORMAT_VERSION;
use wikimatch::{EngineSnapshot, MatchEngine, SnapshotError};

fn config_with(seed: u64, extra_concepts: usize) -> SyntheticConfig {
    SyntheticConfig {
        seed,
        pairs_per_type_pt: 18,
        pairs_per_type_vn: 12,
        person_pool: 60,
        extra_concepts_per_type: extra_concepts,
        ..SyntheticConfig::default()
    }
}

fn assert_round_trip_is_bit_identical(dataset: Dataset) {
    let fresh = MatchEngine::new(dataset.clone());
    fresh.prepare_all();
    let bytes = EngineSnapshot::capture(&fresh)
        .expect("exact-mode engine captures")
        .to_bytes();
    let snapshot = EngineSnapshot::from_bytes(&bytes).expect("snapshot round-trips");
    let restored = MatchEngine::builder(dataset)
        .build_from_snapshot(snapshot)
        .expect("snapshot restores against its own dataset");

    for pairing in &fresh.dataset().types.clone() {
        let a = fresh.similarity(&pairing.type_id).unwrap();
        let b = restored.similarity(&pairing.type_id).unwrap();
        assert_eq!(a.pairs().len(), b.pairs().len());
        for (fresh_pair, loaded_pair) in a.pairs().iter().zip(b.pairs()) {
            assert_eq!((fresh_pair.p, fresh_pair.q), (loaded_pair.p, loaded_pair.q));
            assert_eq!(
                fresh_pair.vsim.to_bits(),
                loaded_pair.vsim.to_bits(),
                "vsim diverges for {} pair ({}, {})",
                pairing.type_id,
                fresh_pair.p,
                fresh_pair.q
            );
            assert_eq!(
                fresh_pair.lsim.to_bits(),
                loaded_pair.lsim.to_bits(),
                "lsim diverges for {} pair ({}, {})",
                pairing.type_id,
                fresh_pair.p,
                fresh_pair.q
            );
            assert_eq!(
                fresh_pair.lsi.to_bits(),
                loaded_pair.lsi.to_bits(),
                "lsi diverges for {} pair ({}, {})",
                pairing.type_id,
                fresh_pair.p,
                fresh_pair.q
            );
        }
    }

    // Full alignment output is identical, and producing it never built an
    // artifact on the restored engine.
    let fresh_alignments = fresh.align_all();
    let restored_alignments = restored.align_all();
    assert_eq!(fresh_alignments.len(), restored_alignments.len());
    for (a, b) in fresh_alignments.iter().zip(&restored_alignments) {
        assert_eq!(a.type_id, b.type_id);
        assert_eq!(a.cross_pairs(), b.cross_pairs(), "{}", a.type_id);
    }
    assert_eq!(
        restored.stats().artifact_builds,
        0,
        "restore rebuilt artifacts"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// For any generator seed (and scaled-up schemas), the save → load →
    /// align round trip is bit-identical on every type of the Vn-En pair.
    #[test]
    fn snapshot_round_trip_on_random_corpora(
        seed in 0u64..1_000,
        extra in 0usize..12,
    ) {
        assert_round_trip_is_bit_identical(Dataset::vn_en(&config_with(seed, extra)));
    }
}

/// One deterministic Pt-En check over all fourteen types.
#[test]
fn snapshot_round_trip_on_the_pt_en_pair() {
    assert_round_trip_is_bit_identical(Dataset::pt_en(&config_with(11, 4)));
}

/// Damaged and incompatible snapshot files are rejected with typed errors.
#[test]
fn truncated_corrupted_and_version_bumped_files_are_rejected() {
    let dataset = Dataset::vn_en(&config_with(3, 0));
    let engine = MatchEngine::new(dataset.clone());
    engine.align("film").unwrap();
    let bytes = EngineSnapshot::capture(&engine)
        .expect("exact-mode engine captures")
        .to_bytes();

    // Truncation at several depths (header, payload, one byte short).
    for cut in [0, 10, 36, bytes.len() / 2, bytes.len() - 1] {
        assert!(
            matches!(
                EngineSnapshot::from_bytes(&bytes[..cut.min(bytes.len())]),
                Err(SnapshotError::Truncated)
            ),
            "cut at {cut} not rejected as truncation"
        );
    }

    // A flipped payload byte fails the checksum.
    let mut corrupted = bytes.clone();
    let last = corrupted.len() - 1;
    corrupted[last] ^= 0x40;
    assert!(matches!(
        EngineSnapshot::from_bytes(&corrupted),
        Err(SnapshotError::ChecksumMismatch { .. })
    ));

    // An unknown format version is refused before any payload decoding.
    // (FORMAT_VERSION + 1 is the directly-addressable v4 sibling, which
    // the loader accepts, so the first *unknown* version is +2.)
    let mut bumped = bytes.clone();
    bumped[8] = bumped[8].wrapping_add(2);
    assert!(matches!(
        EngineSnapshot::from_bytes(&bumped),
        Err(SnapshotError::UnsupportedVersion { found, supported })
            if found == FORMAT_VERSION + 2 && supported == FORMAT_VERSION
    ));
    // v3 bytes stamped as v4 are structurally invalid for the direct
    // layout and must still be rejected, never misread.
    let mut cross_stamped = bytes.clone();
    cross_stamped[8] = cross_stamped[8].wrapping_add(1);
    assert!(EngineSnapshot::from_bytes(&cross_stamped).is_err());

    // And a snapshot of corpus A never restores against corpus B.
    let snapshot = EngineSnapshot::from_bytes(&bytes).unwrap();
    let other = Dataset::vn_en(&config_with(4, 0));
    assert!(matches!(
        MatchEngine::builder(other).build_from_snapshot(snapshot),
        Err(SnapshotError::FingerprintMismatch { .. })
    ));
}
