//! One shared harness over every `SchemaMatcher` implementation in the
//! workspace — WikiMatch, all four baselines and the correlation
//! orderings — exercised as trait objects through a single `MatchEngine`
//! session, the way the bench harness drives them.

use wikimatch_suite::{wiki_baselines, wiki_corpus, wikimatch};

use wiki_baselines::{
    BoumaMatcher, ComaConfiguration, ComaMatcher, CorrelationMatcher, CorrelationMeasure,
    LsiTopKMatcher,
};
use wiki_corpus::{Dataset, Language, SyntheticConfig};
use wikimatch::{MatchEngine, SchemaMatcher, WikiMatch, WikiMatchConfig};

/// Every matcher the workspace ships, as interchangeable trait objects.
fn all_matchers() -> Vec<Box<dyn SchemaMatcher>> {
    let mut matchers: Vec<Box<dyn SchemaMatcher>> = vec![
        Box::new(WikiMatch::default()),
        Box::new(WikiMatch::new(WikiMatchConfig::default().single_step())),
        Box::new(BoumaMatcher::default()),
        Box::new(LsiTopKMatcher::new(1)),
        Box::new(LsiTopKMatcher::new(5)),
    ];
    for configuration in ComaConfiguration::all() {
        matchers.push(Box::new(ComaMatcher::new(*configuration)));
    }
    for measure in CorrelationMeasure::all() {
        matchers.push(Box::new(CorrelationMatcher::new(*measure)));
    }
    matchers
}

#[test]
fn every_matcher_runs_through_the_shared_engine_harness() {
    let engine = MatchEngine::builder(Dataset::pt_en(&SyntheticConfig::tiny())).build();
    let dataset = engine.dataset();

    for matcher in all_matchers() {
        assert!(!matcher.name().is_empty());
        assert!(
            matcher.label().starts_with(matcher.name()),
            "label {:?} should extend name {:?}",
            matcher.label(),
            matcher.name()
        );
        for pairing in &dataset.types {
            let schema = engine.schema(&pairing.type_id).unwrap();
            let pairs = engine
                .align_with(matcher.as_ref(), &pairing.type_id)
                .unwrap();
            // Every matcher yields well-formed (foreign, English) pairs over
            // existing attributes, without duplicates.
            let mut seen = std::collections::HashSet::new();
            for (other, en) in &pairs {
                assert!(
                    schema.index_of(&Language::Pt, other).is_some(),
                    "{}: unknown foreign attribute {other}",
                    matcher.label()
                );
                assert!(
                    schema.index_of(&Language::En, en).is_some(),
                    "{}: unknown English attribute {en}",
                    matcher.label()
                );
                assert!(
                    seen.insert((other.clone(), en.clone())),
                    "{}: duplicate pair ({other}, {en})",
                    matcher.label()
                );
            }
        }
    }
    // The harness prepared each type exactly once for all matchers.
    assert_eq!(engine.cached_types(), dataset.types.len());
}

#[test]
fn matcher_results_are_deterministic_across_runs() {
    let engine = MatchEngine::builder(Dataset::vn_en(&SyntheticConfig::tiny())).build();
    for matcher in all_matchers() {
        let first = engine.align_with(matcher.as_ref(), "film").unwrap();
        let second = engine.align_with(matcher.as_ref(), "film").unwrap();
        assert_eq!(first, second, "{} is nondeterministic", matcher.label());
    }
}

#[test]
fn align_all_with_agrees_with_per_type_calls() {
    let engine = MatchEngine::builder(Dataset::vn_en(&SyntheticConfig::tiny())).build();
    for matcher in all_matchers() {
        let batched = engine.align_all_with(matcher.as_ref());
        assert_eq!(batched.len(), engine.dataset().types.len());
        for (type_id, pairs) in batched {
            let single = engine.align_with(matcher.as_ref(), &type_id).unwrap();
            assert_eq!(pairs, single, "{} diverges on {type_id}", matcher.label());
        }
    }
}
