//! Out-of-core equivalence: for any synthetic corpus, decoding a
//! directly-addressable (v4) snapshot **mapped** (zero-copy views that
//! materialize lazily) must be bit-identical to decoding it **owned** —
//! `to_bits`-equal similarity tables, identical `align_all` output, zero
//! artifact builds on either restored side — and a v4 file with a
//! truncated or misaligned offset directory must be rejected with a typed
//! error, never decoded into garbage.
//!
//! This is the golden-hash safety net under the out-of-core tentpole: the
//! serving tier is allowed to swap heap-owned artifacts for mapped ones
//! only because this suite pins the two decode paths to the same bits.

use std::sync::Arc;

use proptest::prelude::*;

use wikimatch_suite::{wiki_corpus, wikimatch};

use wiki_corpus::{Dataset, SyntheticConfig};
use wikimatch::{
    EngineSnapshot, MappedSnapshot, MatchEngine, SnapshotError, DIRECT_FORMAT_VERSION,
};

const HEADER_LEN: usize = 36;

fn config_with(seed: u64, extra_concepts: usize) -> SyntheticConfig {
    SyntheticConfig {
        seed,
        pairs_per_type_pt: 18,
        pairs_per_type_vn: 12,
        person_pool: 60,
        extra_concepts_per_type: extra_concepts,
        ..SyntheticConfig::default()
    }
}

/// A warmed exact-mode engine plus its snapshot in the v4 encoding.
fn warmed_direct(dataset: &Dataset) -> (MatchEngine, Vec<u8>) {
    let fresh = MatchEngine::new(dataset.clone());
    fresh.prepare_all();
    let direct = EngineSnapshot::capture(&fresh)
        .expect("exact-mode engine captures")
        .to_direct_bytes();
    assert_eq!(
        u32::from_le_bytes(direct[8..12].try_into().unwrap()),
        DIRECT_FORMAT_VERSION
    );
    (fresh, direct)
}

/// The FNV-1a payload checksum of the snapshot header (same algorithm for
/// v3 and v4), reimplemented here so corruption tests can re-stamp it and
/// reach the structural validation they target.
fn restamp_checksum(bytes: &mut [u8]) {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let payload = &bytes[HEADER_LEN..];
    let mut words = payload.chunks_exact(8);
    for word in &mut words {
        h ^= u64::from_le_bytes(word.try_into().expect("8-byte chunk"));
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    for &b in words.remainder() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    bytes[28..36].copy_from_slice(&h.to_le_bytes());
}

fn assert_mapped_matches_owned(dataset: Dataset, tag: &str) {
    let (fresh, direct) = warmed_direct(&dataset);

    // Owned decode: the generic reader accepts v4 and heap-allocates.
    let owned_snapshot = EngineSnapshot::from_bytes(&direct).expect("owned decode");
    let owned = MatchEngine::builder(Arc::new(dataset.clone()))
        .build_from_snapshot(owned_snapshot)
        .expect("owned snapshot restores");

    // Mapped decode: the same file, opened out-of-core.
    let dir = std::env::temp_dir().join(format!("wm-mmap-eq-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("corpus.snap");
    std::fs::write(&path, &direct).expect("write snapshot");
    let mapped_snapshot = MappedSnapshot::open(&path).expect("mapped open");
    let region = Arc::clone(&mapped_snapshot.region);
    let mapped = MatchEngine::builder(Arc::new(dataset))
        .build_from_snapshot(mapped_snapshot.snapshot)
        .expect("mapped snapshot restores");

    // Golden-hash equivalence: every similarity channel of every type is
    // bit-identical across fresh build, owned decode and mapped decode.
    for pairing in &fresh.dataset().types.clone() {
        let reference = fresh.similarity(&pairing.type_id).unwrap();
        let from_owned = owned.similarity(&pairing.type_id).unwrap();
        let from_mapped = mapped.similarity(&pairing.type_id).unwrap();
        assert_eq!(reference.pairs().len(), from_owned.pairs().len());
        assert_eq!(reference.pairs().len(), from_mapped.pairs().len());
        for ((a, b), c) in reference
            .pairs()
            .iter()
            .zip(from_owned.pairs())
            .zip(from_mapped.pairs())
        {
            assert_eq!((a.p, a.q), (b.p, b.q));
            assert_eq!((a.p, a.q), (c.p, c.q));
            for (label, x, y, z) in [
                ("vsim", a.vsim, b.vsim, c.vsim),
                ("lsim", a.lsim, b.lsim, c.lsim),
                ("lsi", a.lsi, b.lsi, c.lsi),
            ] {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "{label} diverges owned for {} pair ({}, {})",
                    pairing.type_id,
                    a.p,
                    a.q
                );
                assert_eq!(
                    x.to_bits(),
                    z.to_bits(),
                    "{label} diverges mapped for {} pair ({}, {})",
                    pairing.type_id,
                    a.p,
                    a.q
                );
            }
        }
    }

    // Full alignment output is identical across all three engines, and the
    // restored engines never built an artifact to produce it.
    let reference = fresh.align_all();
    for (label, engine) in [("owned", &owned), ("mapped", &mapped)] {
        let alignments = engine.align_all();
        assert_eq!(reference.len(), alignments.len());
        for (a, b) in reference.iter().zip(&alignments) {
            assert_eq!(a.type_id, b.type_id, "{label}");
            assert_eq!(a.cross_pairs(), b.cross_pairs(), "{label} {}", a.type_id);
        }
        assert_eq!(
            engine.stats().artifact_builds,
            0,
            "{label} decode rebuilt artifacts"
        );
    }

    // The mapped engine actually served from the mapping: alignment paged
    // channels in lazily, and its stats account for the mapped region.
    assert!(region.page_in_count() > 0, "mapped engine never paged in");
    let stats = mapped.stats();
    assert_eq!(stats.mapped_bytes, direct.len() as u64);
    assert!(stats.resident_bytes > 0);
    assert!(stats.page_ins > 0);

    drop((mapped, mapped_snapshot.region, region));
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// For any seed, the mapped decode path is bit-identical to the owned
    /// decode path (Pt-En).
    #[test]
    fn mapped_decode_is_bit_identical_pt_en(seed in 0u64..1_000) {
        assert_mapped_matches_owned(
            Dataset::pt_en(&config_with(seed, 2)),
            &format!("pt-{seed}"),
        );
    }

    /// Same pin for the Vn-En pair, whose diacritics-heavy terms stress the
    /// mapped arena's UTF-8 and sortedness validation.
    #[test]
    fn mapped_decode_is_bit_identical_vn_en(seed in 0u64..1_000) {
        assert_mapped_matches_owned(
            Dataset::vn_en(&config_with(seed, 1)),
            &format!("vn-{seed}"),
        );
    }

    /// Truncating a v4 file anywhere — header, offset directory, section
    /// bytes — must yield a typed rejection from the owned decoder, never a
    /// partial snapshot.
    #[test]
    fn truncated_v4_files_are_rejected(cut_fraction in 0.0f64..1.0) {
        let (_, direct) = warmed_direct(&Dataset::pt_en(&config_with(7, 0)));
        let cut = ((direct.len() - 1) as f64 * cut_fraction) as usize;
        match EngineSnapshot::from_bytes(&direct[..cut]) {
            Err(SnapshotError::Truncated) | Err(SnapshotError::ChecksumMismatch { .. }) => {}
            other => prop_assert!(false, "cut at {cut} not rejected: {other:?}"),
        }
    }
}

/// Misaligned and out-of-bounds offset directories are rejected as
/// malformed/truncated even when the checksum is re-stamped to match, so
/// the structural validation itself is what stops them.
#[test]
fn misaligned_and_out_of_bounds_directories_are_rejected() {
    let (_, direct) = warmed_direct(&Dataset::pt_en(&config_with(11, 0)));
    let rec_off_at = HEADER_LEN + 24; // first type record's offset slot

    // Offset nudged off its 8-byte alignment.
    let mut misaligned = direct.clone();
    let old = u64::from_le_bytes(misaligned[rec_off_at..rec_off_at + 8].try_into().unwrap());
    misaligned[rec_off_at..rec_off_at + 8].copy_from_slice(&(old + 4).to_le_bytes());
    restamp_checksum(&mut misaligned);
    assert!(matches!(
        EngineSnapshot::from_bytes(&misaligned),
        Err(SnapshotError::Malformed(_))
    ));

    // Offset pointing past the end of the file.
    let mut oob = direct.clone();
    oob[rec_off_at..rec_off_at + 8].copy_from_slice(&(direct.len() as u64 + 64).to_le_bytes());
    restamp_checksum(&mut oob);
    assert!(matches!(
        EngineSnapshot::from_bytes(&oob),
        Err(SnapshotError::Truncated)
    ));

    // The mapped opener applies the same validation to a file on disk.
    let dir = std::env::temp_dir().join(format!("wm-mmap-reject-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("broken.snap");
    std::fs::write(&path, &oob).expect("write broken snapshot");
    assert!(matches!(
        MappedSnapshot::open(&path),
        Err(SnapshotError::Truncated)
    ));
    let _ = std::fs::remove_dir_all(&dir);
}
