//! Delta-ingestion equivalence: an engine mutated through
//! `MatchEngine::apply_delta` must be **bit-identical** to an engine built
//! cold from the same mutated corpus — similarity tables compared through
//! `f64::to_bits`, schemas through their exact term/weight entry lists, and
//! the final alignments through `align_all`.
//!
//! This is the contract that makes incremental updates trustworthy: the
//! patcher may skip recomputing whatever it can prove unchanged, but it may
//! never *approximate*.

use proptest::prelude::*;

use wikimatch_suite::adversarial::{adversarial_pt_en, AdversarialFlavor};
use wikimatch_suite::{wiki_corpus, wikimatch};

use wiki_corpus::{Article, AttributeValue, Dataset, Infobox, Language, Link, SyntheticConfig};
use wikimatch::{CorpusDelta, DeltaOp, MatchEngine};

fn config_with_seed(seed: u64) -> SyntheticConfig {
    SyntheticConfig {
        seed,
        ..SyntheticConfig::tiny()
    }
}

/// Deterministic split-mix style generator so mutation sequences are a pure
/// function of the proptest-chosen seed.
fn next(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

/// Picks the `k`-th live article of `language` (round-robin).
fn pick_article(dataset: &Dataset, language: &Language, k: u64) -> Option<Article> {
    let of_language: Vec<&Article> = dataset.corpus.articles_in(language).collect();
    if of_language.is_empty() {
        return None;
    }
    Some(of_language[(k % of_language.len() as u64) as usize].clone())
}

/// One pseudo-random mutation against the *current* corpus state. Covers
/// every interesting axis: value edits (dirty vectors), attribute additions
/// (skeleton changes), link edits (link channel + candidate index),
/// removals (pair-list changes), cross-linked inserts (new pairs, new
/// dictionary entries, new clusters) and batched combinations.
fn random_delta(dataset: &Dataset, state: &mut u64, step: usize) -> Option<CorpusDelta> {
    let other = dataset.other_language().clone();
    match next(state) % 6 {
        // Edit the value of an existing attribute.
        0 => {
            let mut article = pick_article(dataset, &other, next(state))?;
            let attr_count = article.infobox.attributes.len();
            if attr_count == 0 {
                return None;
            }
            let slot = (next(state) % attr_count as u64) as usize;
            article.infobox.attributes[slot].value = format!("valor editado {step}");
            Some(CorpusDelta::upsert(article))
        }
        // Add a brand-new attribute (new name, new terms → skeleton and
        // vocabulary both change).
        1 => {
            let mut article = pick_article(dataset, &Language::En, next(state))?;
            article.infobox.push(AttributeValue::text(
                format!("note {step}"),
                format!("annotation {step}"),
            ));
            Some(CorpusDelta::upsert(article))
        }
        // Rewire a link (or add one) — exercises the cluster-token channel.
        2 => {
            let mut article = pick_article(dataset, &other, next(state))?;
            let target = pick_article(dataset, &other, next(state))?;
            article.infobox.push(AttributeValue::linked(
                format!("ligacao {step}"),
                target.title.clone(),
                vec![Link::plain(target.title.clone())],
            ));
            Some(CorpusDelta::upsert(article))
        }
        // Remove an article outright (tombstone; its pairs vanish).
        3 => {
            let article = pick_article(dataset, &other, next(state))?;
            Some(CorpusDelta::remove(article.language, article.title))
        }
        // Insert a new article cross-linked to an existing English one:
        // new dual pair, new dictionary entry, new entity cluster edge.
        4 => {
            let en = pick_article(dataset, &Language::En, next(state))?;
            let pairing = dataset
                .types
                .iter()
                .find(|p| p.label_en == en.entity_type)?;
            let mut infobox = Infobox::new(format!("Infobox {}", pairing.label_other));
            infobox.push(AttributeValue::text("origem", format!("fonte {step}")));
            infobox.push(AttributeValue::text("ano", "1999"));
            let mut article = Article::new(
                format!("Artigo Novo {step}"),
                other,
                pairing.label_other.clone(),
                infobox,
            );
            article.cross_links.push((Language::En, en.title.clone()));
            Some(CorpusDelta::upsert(article))
        }
        // A batch mixing an edit and a removal in one delta.
        _ => {
            let mut delta = CorpusDelta::new();
            if let Some(mut article) = pick_article(dataset, &Language::En, next(state)) {
                if let Some(attr) = article.infobox.attributes.first_mut() {
                    attr.value = format!("batched edit {step}");
                }
                delta.push(DeltaOp::Upsert(article));
            }
            if let Some(article) = pick_article(dataset, &other, next(state)) {
                delta.push(DeltaOp::Remove {
                    language: article.language,
                    title: article.title,
                });
            }
            (!delta.is_empty()).then_some(delta)
        }
    }
}

/// Asserts the patched engine and a cold rebuild over the *same* corpus
/// value are bit-identical, channel by channel.
fn assert_bit_identical(patched: &MatchEngine, cold: &MatchEngine) {
    let dataset = patched.dataset();
    for pairing in &dataset.types {
        let type_id = pairing.type_id.as_str();
        let a = patched.prepared(type_id).expect("patched type");
        let b = cold.prepared(type_id).expect("cold type");

        // Schemas: same attribute sequence, every channel's exact
        // (term, weight-bits) entry list, same occurrence data. The
        // patched arena may be a superset of the cold one (stale terms
        // from replaced values linger as unreferenced ids), so vectors
        // are compared term-wise, not id-wise.
        assert_eq!(a.schema.len(), b.schema.len(), "{type_id}: attribute count");
        assert_eq!(
            a.schema.dual_count, b.schema.dual_count,
            "{type_id}: dual count"
        );
        for (pa, pb) in a.schema.attributes.iter().zip(&b.schema.attributes) {
            assert_eq!(pa.language, pb.language, "{type_id}: attribute language");
            assert_eq!(pa.name, pb.name, "{type_id}: attribute name");
            assert_eq!(
                pa.occurrences, pb.occurrences,
                "{type_id}/{}: occurrences",
                pa.name
            );
            assert_eq!(
                pa.occurrence_pattern, pb.occurrence_pattern,
                "{type_id}/{}: occurrence pattern",
                pa.name
            );
            for (channel, va, vb) in [
                ("values", &pa.values, &pb.values),
                (
                    "translated_values",
                    &pa.translated_values,
                    &pb.translated_values,
                ),
                ("raw_values", &pa.raw_values, &pb.raw_values),
                (
                    "translated_raw_values",
                    &pa.translated_raw_values,
                    &pb.translated_raw_values,
                ),
                ("links", &pa.links, &pb.links),
            ] {
                let ea: Vec<(&str, u64)> = va.iter().map(|(t, w)| (t, w.to_bits())).collect();
                let eb: Vec<(&str, u64)> = vb.iter().map(|(t, w)| (t, w.to_bits())).collect();
                assert_eq!(ea, eb, "{type_id}/{}: {channel} entries", pa.name);
            }
        }

        // Similarity tables: exact bit patterns on all three channels.
        assert_eq!(
            a.table.pairs().len(),
            b.table.pairs().len(),
            "{type_id}: pair count"
        );
        for (x, y) in a.table.pairs().iter().zip(b.table.pairs()) {
            assert_eq!((x.p, x.q), (y.p, y.q), "{type_id}: pair order");
            assert_eq!(
                x.vsim.to_bits(),
                y.vsim.to_bits(),
                "{type_id}: vsim({}, {})",
                x.p,
                x.q
            );
            assert_eq!(
                x.lsim.to_bits(),
                y.lsim.to_bits(),
                "{type_id}: lsim({}, {})",
                x.p,
                x.q
            );
            assert_eq!(
                x.lsi.to_bits(),
                y.lsi.to_bits(),
                "{type_id}: lsi({}, {})",
                x.p,
                x.q
            );
        }
    }

    // End to end: identical alignments.
    let a: Vec<(String, Vec<(String, String)>)> = patched
        .align_all()
        .into_iter()
        .map(|t| (t.type_id.clone(), t.cross_pairs()))
        .collect();
    let b: Vec<(String, Vec<(String, String)>)> = cold
        .align_all()
        .into_iter()
        .map(|t| (t.type_id.clone(), t.cross_pairs()))
        .collect();
    assert_eq!(a, b, "alignments diverge");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// For any seed, a random mutation sequence applied through
    /// `apply_delta` leaves the engine bit-identical to a cold rebuild of
    /// the mutated corpus — after *every* step, not just at the end.
    #[test]
    fn patched_engine_is_bit_identical_to_cold_rebuild(seed in 0u64..1_000) {
        let dataset = Dataset::pt_en(&config_with_seed(seed));
        let engine = MatchEngine::builder(dataset).eager().build();
        let types = engine.dataset().types.len();
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);

        let mut applied = 0u64;
        for step in 0..6 {
            let Some(delta) = random_delta(&engine.dataset(), &mut state, step) else {
                continue;
            };
            let report = engine.apply_delta(&delta);
            applied += 1;
            // Types the delta provably cannot reach carry over untouched;
            // the bit-identity check below is what proves the skips sound.
            prop_assert!(report.types_patched <= types);
            prop_assert_eq!(report.fingerprint, engine.fingerprint());

            // Cold rebuild over the *same* mutated corpus value.
            let cold = MatchEngine::builder(engine.dataset()).eager().build();
            assert_bit_identical(&engine, &cold);
        }
        prop_assert!(applied > 0, "every generated delta degenerated to None");

        let stats = engine.stats();
        prop_assert_eq!(stats.deltas_applied, applied);
        // The eager build built each type exactly once; every delta was
        // served by patching, never by a fresh artifact build.
        prop_assert_eq!(stats.artifact_builds, types as u64);
    }

    /// The same patch-vs-cold-rebuild contract on the adversarial corpus
    /// shapes (Zipf-skewed weights, empty/singleton vectors, all-pairs
    /// cliques, unicode-heavy values): incremental invalidation must stay
    /// exact even when the vectors it patches are degenerate.
    #[test]
    fn patched_engine_matches_cold_rebuild_on_adversarial_corpora(
        seed in 0u64..1_000,
        flavor_index in 0usize..4,
    ) {
        let flavor = AdversarialFlavor::ALL[flavor_index];
        let dataset = adversarial_pt_en(flavor, seed);
        let engine = MatchEngine::builder(dataset).eager().build();
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(11);

        let mut applied = 0u64;
        for step in 0..4 {
            let Some(delta) = random_delta(&engine.dataset(), &mut state, step) else {
                continue;
            };
            engine.apply_delta(&delta);
            applied += 1;
            let cold = MatchEngine::builder(engine.dataset()).eager().build();
            assert_bit_identical(&engine, &cold);
        }
        prop_assert!(applied > 0, "every generated delta degenerated to None");
    }
}

/// A directed (non-random) end-to-end scenario covering the single-entity
/// convenience API and the report fields, kept deterministic so failures
/// are easy to bisect.
#[test]
fn single_entity_mutations_round_trip() {
    let dataset = Dataset::pt_en(&SyntheticConfig::tiny());
    let engine = MatchEngine::builder(dataset).eager().build();
    let types = engine.dataset().types.len();

    // Insert a fresh cross-linked article (the English pool also holds
    // unpaired "Person" articles, so pick one whose type is paired).
    let dataset = engine.dataset();
    let (en, pairing) = dataset
        .corpus
        .articles_in(&Language::En)
        .find_map(|a| {
            dataset
                .types
                .iter()
                .find(|p| p.label_en == a.entity_type)
                .map(|p| (a.clone(), p.clone()))
        })
        .expect("some English article has a paired type");
    let mut infobox = Infobox::new(format!("Infobox {}", pairing.label_other));
    infobox.push(AttributeValue::text("titulo", "Obra Nova"));
    let mut article = Article::new(
        "Obra Nova",
        Language::Pt,
        pairing.label_other.clone(),
        infobox,
    );
    article.cross_links.push((Language::En, en.title.clone()));

    let report = engine.insert_entity(article.clone());
    assert_eq!((report.inserted, report.updated, report.removed), (1, 0, 0));
    assert_eq!(report.types_patched, types);
    let cold = MatchEngine::builder(engine.dataset()).eager().build();
    assert_bit_identical(&engine, &cold);

    // Update it in place.
    article.infobox.attributes[0].value = "Obra Renomeada".to_string();
    let report = engine.update_entity(article);
    assert_eq!((report.inserted, report.updated, report.removed), (0, 1, 0));
    let cold = MatchEngine::builder(engine.dataset()).eager().build();
    assert_bit_identical(&engine, &cold);

    // Remove it again.
    let report = engine.remove_entity(Language::Pt, "Obra Nova");
    assert_eq!((report.inserted, report.updated, report.removed), (0, 0, 1));
    assert_eq!(engine.stats().deltas_applied, 3);
    let cold = MatchEngine::builder(engine.dataset()).eager().build();
    assert_bit_identical(&engine, &cold);
}
