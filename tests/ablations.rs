//! Integration tests for the component-contribution claims (Table 3 /
//! Figure 3): removing ReviseUncertain hurts recall, removing the similarity
//! features hurts F-measure, and the single-step variant erodes precision.

use wikimatch_suite::{evaluate_pairs, wiki_corpus, wiki_eval, wikimatch};

use wiki_corpus::{Dataset, Language, SyntheticConfig};
use wiki_eval::Scores;
use wikimatch::{AttributeAlignment, WikiMatch, WikiMatchConfig};

/// Average weighted scores of a configuration over all Pt-En types.
fn average_scores(dataset: &Dataset, config: WikiMatchConfig) -> Scores {
    let matcher = WikiMatch::new(WikiMatchConfig::default());
    let mut scores = Vec::new();
    for pairing in &dataset.types {
        let (schema, table) = matcher.prepare_type(dataset, pairing);
        let matches = AttributeAlignment::new(&schema, &table, config).run();
        let pairs = matches.cross_language_pairs(&schema, dataset.other_language(), &Language::En);
        let freq_other = schema.frequencies(dataset.other_language());
        let freq_en = schema.frequencies(&Language::En);
        scores.push(evaluate_pairs(
            dataset,
            &pairing.type_id,
            &freq_other,
            &freq_en,
            &pairs,
        ));
    }
    Scores::average(scores.iter())
}

#[test]
fn revise_uncertain_improves_recall_without_hurting_precision_much() {
    let dataset = Dataset::pt_en(&SyntheticConfig::tiny());
    let full = average_scores(&dataset, WikiMatchConfig::default());
    let without = average_scores(
        &dataset,
        WikiMatchConfig::default().without_revise_uncertain(),
    );
    assert!(
        full.recall >= without.recall,
        "recall with ReviseUncertain {:.2} < without {:.2}",
        full.recall,
        without.recall
    );
    // Precision may dip slightly but must stay in the same ballpark
    // (the paper reports "little or no change").
    assert!(full.precision >= without.precision - 0.1);
}

#[test]
fn removing_value_similarity_hurts_the_most() {
    let dataset = Dataset::pt_en(&SyntheticConfig::tiny());
    let full = average_scores(&dataset, WikiMatchConfig::default());
    let no_vsim = average_scores(&dataset, WikiMatchConfig::default().without_vsim());
    assert!(
        no_vsim.f1 <= full.f1 + 1e-9,
        "removing vsim should not improve F ({:.2} vs {:.2})",
        no_vsim.f1,
        full.f1
    );
    assert!(
        no_vsim.recall < full.recall,
        "removing vsim must reduce recall ({:.2} vs {:.2})",
        no_vsim.recall,
        full.recall
    );
}

#[test]
fn random_ordering_is_not_better_than_lsi_ordering() {
    let dataset = Dataset::pt_en(&SyntheticConfig::tiny());
    let full = average_scores(&dataset, WikiMatchConfig::default());
    let random = average_scores(&dataset, WikiMatchConfig::default().with_random_ordering());
    assert!(
        random.f1 <= full.f1 + 0.05,
        "random ordering F {:.2} unexpectedly beats LSI ordering F {:.2}",
        random.f1,
        full.f1
    );
}

#[test]
fn single_step_erodes_precision() {
    let dataset = Dataset::pt_en(&SyntheticConfig::tiny());
    let full = average_scores(&dataset, WikiMatchConfig::default());
    let single = average_scores(&dataset, WikiMatchConfig::default().single_step());
    assert!(
        single.precision < full.precision,
        "single-step precision {:.2} should be below the two-phase precision {:.2}",
        single.precision,
        full.precision
    );
}

#[test]
fn every_ablation_still_returns_valid_scores() {
    let dataset = Dataset::vn_en(&SyntheticConfig::tiny());
    let configs = [
        WikiMatchConfig::default(),
        WikiMatchConfig::default().without_revise_uncertain(),
        WikiMatchConfig::default().without_integrate_constraint(),
        WikiMatchConfig::default().without_vsim(),
        WikiMatchConfig::default().without_lsim(),
        WikiMatchConfig::default().without_lsi(),
        WikiMatchConfig::default().without_inductive_grouping(),
        WikiMatchConfig::default().single_step(),
        WikiMatchConfig::default().with_random_ordering(),
    ];
    for config in configs {
        let scores = average_scores(&dataset, config);
        assert!((0.0..=1.0).contains(&scores.precision));
        assert!((0.0..=1.0).contains(&scores.recall));
        assert!((0.0..=1.0).contains(&scores.f1));
    }
}
