//! Integration tests for the component-contribution claims (Table 3 /
//! Figure 3): removing ReviseUncertain hurts recall, removing the similarity
//! features hurts F-measure, and the single-step variant erodes precision.
//!
//! Every configuration is a `WikiMatch` value run as a `SchemaMatcher`
//! plugin over one shared `MatchEngine` session, so the per-type schema and
//! similarity artifacts are computed once for the whole ablation sweep.

use wikimatch_suite::{evaluate_pairs, wiki_corpus, wiki_eval, wikimatch};

use wiki_corpus::{Dataset, Language, SyntheticConfig};
use wiki_eval::Scores;
use wikimatch::{MatchEngine, WikiMatch, WikiMatchConfig};

/// Average weighted scores of a configuration over all types of the engine's
/// dataset.
fn average_scores(engine: &MatchEngine, config: WikiMatchConfig) -> Scores {
    let dataset = engine.dataset();
    let mut scores = Vec::new();
    for pairing in &dataset.types {
        let pairs = engine
            .align_with(&WikiMatch::new(config), &pairing.type_id)
            .unwrap();
        let schema = engine.schema(&pairing.type_id).unwrap();
        let freq_other = schema.frequencies(dataset.other_language());
        let freq_en = schema.frequencies(&Language::En);
        scores.push(evaluate_pairs(
            &dataset,
            &pairing.type_id,
            &freq_other,
            &freq_en,
            &pairs,
        ));
    }
    Scores::average(scores.iter())
}

fn pt_engine() -> MatchEngine {
    MatchEngine::builder(Dataset::pt_en(&SyntheticConfig::tiny())).build()
}

#[test]
fn revise_uncertain_improves_recall_without_hurting_precision_much() {
    let engine = pt_engine();
    let full = average_scores(&engine, WikiMatchConfig::default());
    let without = average_scores(
        &engine,
        WikiMatchConfig::default().without_revise_uncertain(),
    );
    assert!(
        full.recall >= without.recall,
        "recall with ReviseUncertain {:.2} < without {:.2}",
        full.recall,
        without.recall
    );
    // Precision may dip slightly but must stay in the same ballpark
    // (the paper reports "little or no change").
    assert!(full.precision >= without.precision - 0.1);
}

#[test]
fn removing_value_similarity_hurts_the_most() {
    let engine = pt_engine();
    let full = average_scores(&engine, WikiMatchConfig::default());
    let no_vsim = average_scores(&engine, WikiMatchConfig::default().without_vsim());
    assert!(
        no_vsim.f1 <= full.f1 + 1e-9,
        "removing vsim should not improve F ({:.2} vs {:.2})",
        no_vsim.f1,
        full.f1
    );
    assert!(
        no_vsim.recall < full.recall,
        "removing vsim must reduce recall ({:.2} vs {:.2})",
        no_vsim.recall,
        full.recall
    );
}

#[test]
fn random_ordering_is_not_better_than_lsi_ordering() {
    let engine = pt_engine();
    let full = average_scores(&engine, WikiMatchConfig::default());
    let random = average_scores(&engine, WikiMatchConfig::default().with_random_ordering());
    assert!(
        random.f1 <= full.f1 + 0.05,
        "random ordering F {:.2} unexpectedly beats LSI ordering F {:.2}",
        random.f1,
        full.f1
    );
}

#[test]
fn single_step_erodes_precision() {
    let engine = pt_engine();
    let full = average_scores(&engine, WikiMatchConfig::default());
    let single = average_scores(&engine, WikiMatchConfig::default().single_step());
    assert!(
        single.precision < full.precision,
        "single-step precision {:.2} should be below the two-phase precision {:.2}",
        single.precision,
        full.precision
    );
}

#[test]
fn every_ablation_still_returns_valid_scores() {
    let engine = MatchEngine::builder(Dataset::vn_en(&SyntheticConfig::tiny())).build();
    let configs = [
        WikiMatchConfig::default(),
        WikiMatchConfig::default().without_revise_uncertain(),
        WikiMatchConfig::default().without_integrate_constraint(),
        WikiMatchConfig::default().without_vsim(),
        WikiMatchConfig::default().without_lsim(),
        WikiMatchConfig::default().without_lsi(),
        WikiMatchConfig::default().without_inductive_grouping(),
        WikiMatchConfig::default().single_step(),
        WikiMatchConfig::default().with_random_ordering(),
    ];
    for config in configs {
        let scores = average_scores(&engine, config);
        assert!((0.0..=1.0).contains(&scores.precision));
        assert!((0.0..=1.0).contains(&scores.recall));
        assert!((0.0..=1.0).contains(&scores.f1));
    }
}
