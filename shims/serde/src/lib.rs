//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! a minimal, API-compatible subset of serde: the [`Serialize`] and
//! [`Deserialize`] traits (backed by a JSON-like [`Value`] tree rather than
//! serde's visitor machinery) plus derive macros re-exported from the
//! companion `serde_derive` proc-macro crate. The surface is exactly what
//! this workspace uses — do not expect the full serde data model.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;

/// A JSON-like value tree, the intermediate representation all
/// (de)serialization goes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (serialized without a decimal point).
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved when serializing.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The string payload, when this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The entries, when this is an `Object`.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The elements, when this is an `Array`.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up a field of an `Object`.
    pub fn get_field(&self, name: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|entries| entries.iter().find(|(k, _)| k == name).map(|(_, v)| v))
    }
}

/// Serialization / deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Creates an error with a custom message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// A type that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn serialize_value(&self) -> Value;
}

/// A type that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`].
    fn deserialize_value(value: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error::custom(format!("integer {i} out of range"))),
                    Value::Float(f) if f.fract() == 0.0 => Ok(*f as $t),
                    other => Err(Error::custom(format!(
                        "expected integer, found {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(Error::custom(format!("expected number, found {other:?}"))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, found {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, found {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::custom(format!("expected char, found {other:?}"))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(v) => v.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => Ok(Some(T::deserialize_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::deserialize_value).collect(),
            other => Err(Error::custom(format!("expected array, found {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::deserialize_value).collect(),
            other => Err(Error::custom(format!("expected array, found {other:?}"))),
        }
    }
}

impl<T: Serialize + Eq + std::hash::Hash> Serialize for HashSet<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize + Eq + std::hash::Hash> Deserialize for HashSet<T> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::deserialize_value).collect(),
            other => Err(Error::custom(format!("expected array, found {other:?}"))),
        }
    }
}

/// Map keys must serialize to JSON object keys, i.e. strings.
pub trait SerializeKey {
    /// The object key representing `self`.
    fn to_object_key(&self) -> String;
}

/// Reconstruction of a map key from a JSON object key.
pub trait DeserializeKey: Sized {
    /// Parses an object key back into the key type.
    fn from_object_key(key: &str) -> Result<Self, Error>;
}

impl SerializeKey for String {
    fn to_object_key(&self) -> String {
        self.clone()
    }
}

impl DeserializeKey for String {
    fn from_object_key(key: &str) -> Result<Self, Error> {
        Ok(key.to_string())
    }
}

impl<K: SerializeKey + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_object_key(), v.serialize_value()))
                .collect(),
        )
    }
}

impl<K: DeserializeKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_object_key(k)?, V::deserialize_value(v)?)))
                .collect(),
            other => Err(Error::custom(format!("expected object, found {other:?}"))),
        }
    }
}

impl<K: SerializeKey + Ord + std::hash::Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize_value(&self) -> Value {
        // Sort keys so HashMap serialization is deterministic.
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Value::Object(
            entries
                .into_iter()
                .map(|(k, v)| (k.to_object_key(), v.serialize_value()))
                .collect(),
        )
    }
}

impl<K: DeserializeKey + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_object_key(k)?, V::deserialize_value(v)?)))
                .collect(),
            other => Err(Error::custom(format!("expected object, found {other:?}"))),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize_value(value: &Value) -> Result<Self, Error> {
                let items = value
                    .as_array()
                    .ok_or_else(|| Error::custom("expected array for tuple"))?;
                Ok(($($name::deserialize_value(
                    items.get($idx).unwrap_or(&Value::Null),
                )?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}
