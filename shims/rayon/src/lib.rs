//! Offline stand-in for `rayon`.
//!
//! Provides the `par_iter().map(..).collect::<Vec<_>>()` shape (plus
//! `for_each`) over slices and `Vec`s, executing on scoped OS threads —
//! one chunk per available core, order-preserving. This is not a
//! work-stealing pool; it is the smallest surface that lets the engine
//! parallelize per-type alignment without a crates.io dependency.

/// The glob-importable API, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelRefIterator, ParallelIterator};
}

/// Runs `f` over `items` on up to `available_parallelism` threads,
/// preserving order.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n);
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk_size = n.div_ceil(threads);
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_size)
            .map(|chunk| scope.spawn(move || chunk.iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("parallel_map worker panicked"))
            .collect()
    })
}

/// Conversion into a parallel iterator over references, mirroring
/// `rayon::iter::IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'a> {
    /// Element type.
    type Item: Sync + 'a;
    /// Starts a parallel iteration over `&self`.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// A parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps every element in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Runs `f` on every element in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a T) + Sync,
    {
        let _ = self.map(f).collect::<Vec<()>>();
    }
}

/// A mapped parallel iterator; terminate with [`ParallelIterator::collect`].
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

/// The terminal operations of the shim's parallel iterators.
pub trait ParallelIterator {
    /// Item produced by the iterator.
    type Item: Send;
    /// Executes the parallel pipeline and collects the results in order.
    fn collect<C: FromIterator<Self::Item>>(self) -> C;
}

impl<'a, T, R, F> ParallelIterator for ParMap<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    type Item = R;

    fn collect<C: FromIterator<R>>(self) -> C {
        let n = self.items.len();
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(n);
        if threads <= 1 {
            return self.items.iter().map(&self.f).collect();
        }
        let chunk_size = n.div_ceil(threads);
        let f = &self.f;
        let results: Vec<R> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .items
                .chunks(chunk_size)
                .map(|chunk| scope.spawn(move || chunk.iter().map(f).collect::<Vec<R>>()))
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("par_iter worker panicked"))
                .collect()
        });
        results.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<usize> = (0..100).collect();
        let doubled: Vec<usize> = input.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn works_on_empty_and_single() {
        let empty: Vec<u8> = Vec::new();
        let out: Vec<u8> = empty.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
        let one = [41usize];
        let out: Vec<usize> = one.par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![42]);
    }
}
