//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset this workspace uses: `rngs::StdRng` (a
//! xoshiro256** generator), `SeedableRng::seed_from_u64` and the
//! `Rng::gen_range` / `Rng::gen_bool` methods over integer and float
//! ranges. The streams differ from the real `rand` crate — everything
//! downstream treats the generator as an arbitrary deterministic source.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods, mirroring the used subset of `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from a range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p = {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 / (1u64 << 53) as f64
}

/// A range a uniform value of type `T` can be drawn from. Generic over `T`
/// (rather than using an associated type) so the target type can drive
/// inference of integer literals, as with the real `rand` crate.
pub trait SampleRange<T> {
    /// Draws one value.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded via
    /// splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
        let mut c = StdRng::seed_from_u64(8);
        let run_a: Vec<usize> = (0..32).map(|_| a.gen_range(0..1000usize)).collect();
        let run_c: Vec<usize> = (0..32).map(|_| c.gen_range(0..1000usize)).collect();
        assert_ne!(run_a, run_c);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(10..20usize);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(1..=12u32);
            assert!((1..=12).contains(&w));
            let f = rng.gen_range(0.95..=1.05f64);
            assert!((0.95..=1.05).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "{hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
