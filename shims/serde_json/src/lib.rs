//! Offline stand-in for `serde_json`: JSON text ⟷ the serde shim's
//! [`Value`] tree.

pub use serde::{Error, Value};

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// `Result` alias matching serde_json's signature shape.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), None, 0);
    Ok(out)
}

/// Serializes a value to a 2-space-indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), Some(2), 0);
    Ok(out)
}

/// Parses a JSON string into a deserializable value.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let value = parse_value(text)?;
    T::deserialize_value(&value)
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` is the shortest representation that round-trips.
                let _ = write!(out, "{f:?}");
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
}

fn parse_value(text: &str) -> Result<Value> {
    let mut parser = Parser {
        chars: text.chars().peekable(),
    };
    let value = parser.value()?;
    parser.skip_whitespace();
    if parser.chars.peek().is_some() {
        return Err(Error::custom("trailing characters after JSON value"));
    }
    Ok(value)
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while matches!(self.chars.peek(), Some(' ' | '\t' | '\n' | '\r')) {
            self.chars.next();
        }
    }

    fn expect(&mut self, c: char) -> Result<()> {
        match self.chars.next() {
            Some(found) if found == c => Ok(()),
            other => Err(Error::custom(format!("expected '{c}', found {other:?}"))),
        }
    }

    fn literal(&mut self, rest: &str, value: Value) -> Result<Value> {
        for expected in rest.chars() {
            self.expect(expected)?;
        }
        Ok(value)
    }

    fn value(&mut self) -> Result<Value> {
        self.skip_whitespace();
        match self.chars.peek().copied() {
            None => Err(Error::custom("unexpected end of input")),
            Some('n') => self.literal("null", Value::Null),
            Some('t') => self.literal("true", Value::Bool(true)),
            Some('f') => self.literal("false", Value::Bool(false)),
            Some('"') => self.string().map(Value::Str),
            Some('[') => {
                self.chars.next();
                let mut items = Vec::new();
                self.skip_whitespace();
                if self.chars.peek() == Some(&']') {
                    self.chars.next();
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_whitespace();
                    match self.chars.next() {
                        Some(',') => continue,
                        Some(']') => break,
                        other => {
                            return Err(Error::custom(format!(
                                "expected ',' or ']', found {other:?}"
                            )))
                        }
                    }
                }
                Ok(Value::Array(items))
            }
            Some('{') => {
                self.chars.next();
                let mut entries = Vec::new();
                self.skip_whitespace();
                if self.chars.peek() == Some(&'}') {
                    self.chars.next();
                    return Ok(Value::Object(entries));
                }
                loop {
                    self.skip_whitespace();
                    let key = self.string()?;
                    self.skip_whitespace();
                    self.expect(':')?;
                    let value = self.value()?;
                    entries.push((key, value));
                    self.skip_whitespace();
                    match self.chars.next() {
                        Some(',') => continue,
                        Some('}') => break,
                        other => {
                            return Err(Error::custom(format!(
                                "expected ',' or '}}', found {other:?}"
                            )))
                        }
                    }
                }
                Ok(Value::Object(entries))
            }
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            Some(other) => Err(Error::custom(format!("unexpected character '{other}'"))),
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.chars.next() {
                None => return Err(Error::custom("unterminated string")),
                Some('"') => return Ok(out),
                Some('\\') => match self.chars.next() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('b') => out.push('\u{8}'),
                    Some('f') => out.push('\u{c}'),
                    Some('u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let digit = self
                                .chars
                                .next()
                                .and_then(|c| c.to_digit(16))
                                .ok_or_else(|| Error::custom("bad \\u escape"))?;
                            code = code * 16 + digit;
                        }
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error::custom("bad \\u code point"))?,
                        );
                    }
                    other => {
                        return Err(Error::custom(format!("bad escape {other:?}")));
                    }
                },
                Some(c) => out.push(c),
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let mut text = String::new();
        while let Some(&c) = self.chars.peek() {
            if c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E') {
                text.push(c);
                self.chars.next();
            } else {
                break;
            }
        }
        if text.contains(['.', 'e', 'E']) {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| Error::custom(format!("bad number {text}: {e}")))
        } else {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|e| Error::custom(format!("bad number {text}: {e}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let value = Value::Object(vec![
            (
                "a".into(),
                Value::Array(vec![Value::Int(1), Value::Float(0.5)]),
            ),
            ("s".into(), Value::Str("he said \"hi\"\n".into())),
            ("n".into(), Value::Null),
            ("b".into(), Value::Bool(true)),
        ]);
        let mut compact = String::new();
        write_value(&mut compact, &value, None, 0);
        assert_eq!(parse_value(&compact).unwrap(), value);
        let mut pretty = String::new();
        write_value(&mut pretty, &value, Some(2), 0);
        assert_eq!(parse_value(&pretty).unwrap(), value);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for f in [0.1, 1.0 / 3.0, 1e-12, 123456.789] {
            let mut out = String::new();
            write_value(&mut out, &Value::Float(f), None, 0);
            assert_eq!(parse_value(&out).unwrap(), Value::Float(f));
        }
    }
}
