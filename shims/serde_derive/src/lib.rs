//! Derive macros for the offline `serde` stand-in.
//!
//! Parses the item token stream by hand (the environment has no `syn` /
//! `quote`) and generates impls of the shim's `Serialize` / `Deserialize`
//! traits. Supports the shapes this workspace uses:
//!
//! * structs with named fields, honouring `#[serde(skip)]`;
//! * tuple structs (newtype structs serialize transparently);
//! * enums with unit, newtype and tuple variants.
//!
//! Generics are not supported — none of the workspace's serialized types
//! are generic.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    skip: bool,
}

#[derive(Debug)]
struct Variant {
    name: String,
    arity: usize,
}

#[derive(Debug)]
enum Item {
    NamedStruct {
        name: String,
        fields: Vec<Field>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// True when an attribute group (the tokens inside `#[...]`) is
/// `serde(skip)` (or contains `skip` among the serde options).
fn is_serde_skip(tokens: &[TokenTree]) -> bool {
    match tokens {
        [TokenTree::Ident(ident), TokenTree::Group(group)] if ident.to_string() == "serde" => group
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string() == "skip")),
        _ => false,
    }
}

/// Consumes a leading run of attributes, returning whether any was
/// `#[serde(skip)]`.
fn skip_attributes(tokens: &[TokenTree], mut pos: usize) -> (usize, bool) {
    let mut skip = false;
    while pos < tokens.len() {
        match &tokens[pos] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(group)) = tokens.get(pos + 1) {
                    if group.delimiter() == Delimiter::Bracket {
                        let inner: Vec<TokenTree> = group.stream().into_iter().collect();
                        skip |= is_serde_skip(&inner);
                        pos += 2;
                        continue;
                    }
                }
                break;
            }
            _ => break,
        }
    }
    (pos, skip)
}

/// Consumes an optional `pub` / `pub(...)` visibility.
fn skip_visibility(tokens: &[TokenTree], mut pos: usize) -> usize {
    if let Some(TokenTree::Ident(ident)) = tokens.get(pos) {
        if ident.to_string() == "pub" {
            pos += 1;
            if let Some(TokenTree::Group(group)) = tokens.get(pos) {
                if group.delimiter() == Delimiter::Parenthesis {
                    pos += 1;
                }
            }
        }
    }
    pos
}

/// Number of top-level comma-separated entries in a token sequence
/// (0 for an empty sequence).
fn count_top_level_entries(tokens: &[TokenTree]) -> usize {
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0usize;
    let mut count = 1usize;
    let mut saw_token_since_comma = false;
    for token in tokens {
        match token {
            TokenTree::Punct(p) if depth == 0 && p.as_char() == ',' => {
                count += 1;
                saw_token_since_comma = false;
            }
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                saw_token_since_comma = true;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth = depth.saturating_sub(1);
                saw_token_since_comma = true;
            }
            _ => saw_token_since_comma = true,
        }
    }
    if !saw_token_since_comma {
        count -= 1; // trailing comma
    }
    count
}

fn parse_named_fields(group_tokens: Vec<TokenTree>) -> Vec<Field> {
    let tokens: Vec<TokenTree> = group_tokens;
    let mut fields = Vec::new();
    let mut pos = 0usize;
    while pos < tokens.len() {
        let (next, skip) = skip_attributes(&tokens, pos);
        pos = skip_visibility(&tokens, next);
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(ident)) => ident.to_string(),
            _ => break,
        };
        pos += 1;
        // Expect ':'; then swallow the type up to a top-level ','.
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            _ => break,
        }
        let mut depth = 0usize;
        while pos < tokens.len() {
            match &tokens[pos] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth = depth.saturating_sub(1),
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    pos += 1;
                    break;
                }
                _ => {}
            }
            pos += 1;
        }
        fields.push(Field { name, skip });
    }
    fields
}

fn parse_variants(group_tokens: Vec<TokenTree>) -> Result<Vec<Variant>, String> {
    let tokens = group_tokens;
    let mut variants = Vec::new();
    let mut pos = 0usize;
    while pos < tokens.len() {
        let (next, _) = skip_attributes(&tokens, pos);
        pos = next;
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(ident)) => ident.to_string(),
            None => break,
            Some(other) => return Err(format!("unexpected token in enum body: {other}")),
        };
        pos += 1;
        let mut arity = 0usize;
        if let Some(TokenTree::Group(group)) = tokens.get(pos) {
            match group.delimiter() {
                Delimiter::Parenthesis => {
                    let inner: Vec<TokenTree> = group.stream().into_iter().collect();
                    arity = count_top_level_entries(&inner);
                    pos += 1;
                }
                Delimiter::Brace => {
                    return Err(format!(
                        "struct variant `{name}` is not supported by the serde shim"
                    ))
                }
                _ => {}
            }
        }
        // Optional discriminant `= expr` is not supported; skip to ','.
        while pos < tokens.len() {
            match &tokens[pos] {
                TokenTree::Punct(p) if p.as_char() == ',' => {
                    pos += 1;
                    break;
                }
                _ => pos += 1,
            }
        }
        variants.push(Variant { name, arity });
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0usize;
    loop {
        let (next, _) = skip_attributes(&tokens, pos);
        pos = skip_visibility(&tokens, next);
        match tokens.get(pos) {
            Some(TokenTree::Ident(ident)) => {
                let word = ident.to_string();
                if word == "struct" || word == "enum" {
                    break;
                }
                pos += 1; // e.g. `pub`, lifetimes cruft — keep scanning
            }
            Some(_) => pos += 1,
            None => return Err("no struct or enum found".to_string()),
        }
    }
    let kind = match &tokens[pos] {
        TokenTree::Ident(ident) => ident.to_string(),
        _ => unreachable!(),
    };
    pos += 1;
    let name = match tokens.get(pos) {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        _ => return Err("missing item name".to_string()),
    };
    pos += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
        if p.as_char() == '<' {
            return Err(format!(
                "generic type `{name}` is not supported by the serde shim"
            ));
        }
    }
    match tokens.get(pos) {
        Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
            let inner: Vec<TokenTree> = group.stream().into_iter().collect();
            if kind == "struct" {
                Ok(Item::NamedStruct {
                    name,
                    fields: parse_named_fields(inner),
                })
            } else {
                Ok(Item::Enum {
                    name,
                    variants: parse_variants(inner)?,
                })
            }
        }
        Some(TokenTree::Group(group))
            if group.delimiter() == Delimiter::Parenthesis && kind == "struct" =>
        {
            let inner: Vec<TokenTree> = group.stream().into_iter().collect();
            Ok(Item::TupleStruct {
                name,
                arity: count_top_level_entries(&inner),
            })
        }
        other => Err(format!("unsupported item shape after `{name}`: {other:?}")),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Derives the shim's `Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => return compile_error(&msg),
    };
    let code = match item {
        Item::NamedStruct { name, fields } => {
            let mut pushes = String::new();
            for field in fields.iter().filter(|f| !f.skip) {
                pushes.push_str(&format!(
                    "fields.push((::std::string::String::from(\"{f}\"), \
                     ::serde::Serialize::serialize_value(&self.{f})));\n",
                    f = field.name
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn serialize_value(&self) -> ::serde::Value {{\n\
                 let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n\
                 {pushes}\
                 ::serde::Value::Object(fields)\n\
                 }}\n}}\n"
            )
        }
        Item::TupleStruct { name, arity } => {
            let body = if arity == 1 {
                "::serde::Serialize::serialize_value(&self.0)".to_string()
            } else {
                let items: Vec<String> = (0..arity)
                    .map(|i| format!("::serde::Serialize::serialize_value(&self.{i})"))
                    .collect();
                format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn serialize_value(&self) -> ::serde::Value {{ {body} }}\n}}\n"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in &variants {
                if v.arity == 0 {
                    arms.push_str(&format!(
                        "{name}::{v} => ::serde::Value::Str(::std::string::String::from(\"{v}\")),\n",
                        v = v.name
                    ));
                } else {
                    let binders: Vec<String> = (0..v.arity).map(|i| format!("f{i}")).collect();
                    let payload = if v.arity == 1 {
                        "::serde::Serialize::serialize_value(f0)".to_string()
                    } else {
                        let items: Vec<String> = binders
                            .iter()
                            .map(|b| format!("::serde::Serialize::serialize_value({b})"))
                            .collect();
                        format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
                    };
                    arms.push_str(&format!(
                        "{name}::{v}({binders}) => ::serde::Value::Object(::std::vec![\
                         (::std::string::String::from(\"{v}\"), {payload})]),\n",
                        v = v.name,
                        binders = binders.join(", ")
                    ));
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn serialize_value(&self) -> ::serde::Value {{\n\
                 match self {{\n{arms}}}\n\
                 }}\n}}\n"
            )
        }
    };
    code.parse().unwrap()
}

/// Derives the shim's `Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => return compile_error(&msg),
    };
    let code = match item {
        Item::NamedStruct { name, fields } => {
            let mut inits = String::new();
            for field in &fields {
                if field.skip {
                    inits.push_str(&format!(
                        "{f}: ::std::default::Default::default(),\n",
                        f = field.name
                    ));
                } else {
                    inits.push_str(&format!(
                        "{f}: ::serde::Deserialize::deserialize_value(\
                         value.get_field(\"{f}\").unwrap_or(&::serde::Value::Null))?,\n",
                        f = field.name
                    ));
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn deserialize_value(value: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 if value.as_object().is_none() {{\n\
                 return ::std::result::Result::Err(::serde::Error::custom(\
                 \"expected object for struct {name}\"));\n\
                 }}\n\
                 ::std::result::Result::Ok(Self {{\n{inits}}})\n\
                 }}\n}}\n"
            )
        }
        Item::TupleStruct { name, arity } => {
            let body = if arity == 1 {
                format!(
                    "::std::result::Result::Ok({name}(\
                     ::serde::Deserialize::deserialize_value(value)?))"
                )
            } else {
                let items: Vec<String> = (0..arity)
                    .map(|i| {
                        format!(
                            "::serde::Deserialize::deserialize_value(\
                             items.get({i}).unwrap_or(&::serde::Value::Null))?"
                        )
                    })
                    .collect();
                format!(
                    "let items = value.as_array().ok_or_else(|| \
                     ::serde::Error::custom(\"expected array for {name}\"))?;\n\
                     ::std::result::Result::Ok({name}({}))",
                    items.join(", ")
                )
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn deserialize_value(value: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n}}\n"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| v.arity == 0)
                .map(|v| {
                    format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}),\n",
                        v = v.name
                    )
                })
                .collect();
            let data_arms: String = variants
                .iter()
                .filter(|v| v.arity > 0)
                .map(|v| {
                    let ctor = if v.arity == 1 {
                        format!(
                            "{name}::{v}(::serde::Deserialize::deserialize_value(payload)?)",
                            v = v.name
                        )
                    } else {
                        let items: Vec<String> = (0..v.arity)
                            .map(|i| {
                                format!(
                                    "::serde::Deserialize::deserialize_value(\
                                     items.get({i}).unwrap_or(&::serde::Value::Null))?"
                                )
                            })
                            .collect();
                        format!(
                            "{{ let items = payload.as_array().ok_or_else(|| \
                             ::serde::Error::custom(\"expected array payload\"))?;\n\
                             {name}::{v}({items}) }}",
                            v = v.name,
                            items = items.join(", ")
                        )
                    };
                    format!(
                        "\"{v}\" => ::std::result::Result::Ok({ctor}),\n",
                        v = v.name
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn deserialize_value(value: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 match value {{\n\
                 ::serde::Value::Str(s) => match s.as_str() {{\n\
                 {unit_arms}\
                 other => ::std::result::Result::Err(::serde::Error::custom(\
                 ::std::format!(\"unknown variant {{other}} for {name}\"))),\n\
                 }},\n\
                 ::serde::Value::Object(entries) if entries.len() == 1 => {{\n\
                 let (variant, payload) = (&entries[0].0, &entries[0].1);\n\
                 let _ = payload;\n\
                 match variant.as_str() {{\n\
                 {data_arms}\
                 other => ::std::result::Result::Err(::serde::Error::custom(\
                 ::std::format!(\"unknown variant {{other}} for {name}\"))),\n\
                 }}\n\
                 }},\n\
                 other => ::std::result::Result::Err(::serde::Error::custom(\
                 ::std::format!(\"unexpected value {{other:?}} for enum {name}\"))),\n\
                 }}\n\
                 }}\n}}\n"
            )
        }
    };
    code.parse().unwrap()
}
