//! Offline stand-in for `criterion`.
//!
//! A wall-clock harness exposing the subset of criterion's API the
//! workspace benches use: `Criterion::bench_function`, benchmark groups
//! with `bench_with_input`, `BenchmarkId`, the `criterion_group!` /
//! `criterion_main!` macros and `black_box`. It reports median / mean
//! per-iteration times; there is no statistical analysis, plotting or
//! state persistence.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark harness configuration and entry point.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time spent warming up before measurement.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// No-op in the shim (the real crate parses CLI filters here).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(
            name,
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            &mut f,
        );
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named benchmark group.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let name = format!("{}/{}", self.name, id);
        run_bench(
            &name,
            self.criterion.sample_size,
            self.criterion.warm_up_time,
            self.criterion.measurement_time,
            &mut f,
        );
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let name = format!("{}/{}", self.name, id);
        run_bench(
            &name,
            self.criterion.sample_size,
            self.criterion.warm_up_time,
            self.criterion.measurement_time,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group (a no-op in the shim).
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            text: format!("{function}/{parameter}"),
        }
    }

    /// An id made of a parameter only.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.text)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            text: s.to_string(),
        }
    }
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code
/// under test.
pub struct Bencher {
    /// Measured per-iteration durations, filled by `iter`.
    samples: Vec<Duration>,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Bencher {
    /// Times `routine`, first warming up, then recording samples until the
    /// sample count or the measurement budget is reached.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warm_up_end = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_up_end {
            black_box(routine());
        }
        let measure_end = Instant::now() + self.measurement_time;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
            if Instant::now() >= measure_end {
                break;
            }
        }
        if self.samples.is_empty() {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.3} s", nanos as f64 / 1_000_000_000.0)
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    f: &mut F,
) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
        warm_up_time,
        measurement_time,
    };
    f(&mut bencher);
    let mut samples = bencher.samples;
    if samples.is_empty() {
        println!("{name:<48} (no samples)");
        return;
    }
    samples.sort();
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    let min = samples[0];
    let max = samples[samples.len() - 1];
    println!(
        "{name:<48} median {:>10}   mean {:>10}   range [{} .. {}]   ({} samples)",
        format_duration(median),
        format_duration(mean),
        format_duration(min),
        format_duration(max),
        samples.len(),
    );
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
