//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use:
//!
//! * the [`proptest!`] macro with an optional `#![proptest_config(..)]`
//!   inner attribute and `arg in strategy` parameters;
//! * [`prop_assert!`], [`prop_assert_eq!`] and [`prop_assume!`];
//! * strategies: integer/float ranges, a regex-lite string syntax
//!   (`".{0,64}"`, `"[a-z0-9 ]{1,24}"`), tuples, `collection::vec`, and
//!   the `prop_map` / `prop_flat_map` combinators.
//!
//! Cases are generated from a deterministic per-test RNG; there is no
//! shrinking — a failing case panics with the rendered assertion message.

use std::ops::{Range, RangeInclusive};

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy, TestCaseError, TestRng,
    };
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
    /// An assertion failed; the test panics with this message.
    Fail(String),
}

/// Deterministic splitmix64 generator driving case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name.
    pub fn from_name(name: &str) -> Self {
        let mut state = 0xcafef00dd15ea5e5u64;
        for b in name.bytes() {
            state = state.rotate_left(7) ^ u64::from(b).wrapping_mul(0x9E3779B97F4A7C15);
        }
        Self { state }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

/// A generator of values for one test parameter.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a second strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + rng.below(span.wrapping_add(1)) as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.unit_f64() * (self.end() - self.start())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

// ---------------------------------------------------------------------------
// Regex-lite string strategies
// ---------------------------------------------------------------------------

/// One parsed pattern element: a set of candidate chars and a repetition
/// range.
struct PatternPart {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

/// Characters `.` draws from: printable ASCII plus a sprinkling of
/// non-ASCII letters so normalization sees multi-byte input.
const ANY_CHAR_POOL: &str = " !\"#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ\
[\\]^_`abcdefghijklmnopqrstuvwxyz{|}~çãõéíđàảẤơưÇÃÉ中ßµ";

fn parse_char_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<char> {
    let mut out = Vec::new();
    let mut pending: Option<char> = None;
    loop {
        let c = chars.next().expect("unterminated char class in pattern");
        match c {
            ']' => {
                if let Some(p) = pending {
                    out.push(p);
                }
                return out;
            }
            '-' if pending.is_some() && chars.peek() != Some(&']') => {
                let start = pending.take().unwrap();
                let end = chars.next().expect("bad range in char class");
                for code in (start as u32)..=(end as u32) {
                    if let Some(ch) = char::from_u32(code) {
                        out.push(ch);
                    }
                }
            }
            '\\' => {
                if let Some(p) = pending {
                    out.push(p);
                }
                pending = Some(chars.next().expect("dangling escape in char class"));
            }
            c => {
                if let Some(p) = pending {
                    out.push(p);
                }
                pending = Some(c);
            }
        }
    }
}

fn parse_quantifier(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> (usize, usize) {
    if chars.peek() != Some(&'{') {
        return (1, 1);
    }
    chars.next();
    let mut spec = String::new();
    for c in chars.by_ref() {
        if c == '}' {
            break;
        }
        spec.push(c);
    }
    match spec.split_once(',') {
        Some((min, max)) => (
            min.trim().parse().expect("bad quantifier"),
            max.trim().parse().expect("bad quantifier"),
        ),
        None => {
            let n = spec.trim().parse().expect("bad quantifier");
            (n, n)
        }
    }
}

fn parse_pattern(pattern: &str) -> Vec<PatternPart> {
    let mut chars = pattern.chars().peekable();
    let mut parts = Vec::new();
    while let Some(c) = chars.next() {
        let candidates = match c {
            '.' => ANY_CHAR_POOL.chars().collect(),
            '[' => parse_char_class(&mut chars),
            '\\' => vec![chars.next().expect("dangling escape")],
            c => vec![c],
        };
        let (min, max) = parse_quantifier(&mut chars);
        parts.push(PatternPart {
            chars: candidates,
            min,
            max,
        });
    }
    parts
}

impl Strategy for str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for part in parse_pattern(self) {
            let span = (part.max - part.min) as u64;
            let count = part.min + rng.below(span + 1) as usize;
            for _ in 0..count {
                let idx = rng.below(part.chars.len() as u64) as usize;
                out.push(part.chars[idx]);
            }
        }
        out
    }
}

impl Strategy for String {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        self.as_str().sample(rng)
    }
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Number of elements a [`vec()`] strategy may produce.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// A strategy producing `Vec`s of values drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64;
            let count = self.size.min + rng.below(span + 1) as usize;
            (0..count).map(|_| self.element.sample(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Declares property tests; see the crate docs for the supported shape.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(stringify!($name));
                let mut accepted = 0u32;
                let mut attempts = 0u32;
                while accepted < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= config.cases.saturating_mul(20).max(100),
                        "proptest: too many rejected cases in {}",
                        stringify!($name)
                    );
                    $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)+
                    let result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match result {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => continue,
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest case {} of {} failed: {}",
                                accepted + 1,
                                stringify!($name),
                                msg
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &($left);
        let right = &($right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = &($left);
        let right = &($right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &($left);
        let right = &($right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Skips the current case when its inputs do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regex_lite_patterns_produce_expected_shapes() {
        let mut rng = TestRng::from_name("shapes");
        for _ in 0..200 {
            let s = Strategy::sample(&"[a-c]{1,3}", &mut rng);
            assert!((1..=3).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "{s:?}");
            let t = Strategy::sample(&".{0,8}", &mut rng);
            assert!(t.chars().count() <= 8);
            let u = Strategy::sample(&"[a-zA-Z0-9_ ]{0,5}", &mut rng);
            assert!(u
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ' '));
        }
    }

    #[test]
    fn combinators_compose() {
        let mut rng = TestRng::from_name("combinators");
        let strat = (1usize..=4, 1usize..=4).prop_flat_map(|(r, c)| {
            collection::vec(0.0f64..1.0, r * c).prop_map(move |v| (r, c, v))
        });
        for _ in 0..100 {
            let (r, c, v) = strat.sample(&mut rng);
            assert_eq!(v.len(), r * c);
            assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The macro machinery itself works end to end.
        #[test]
        fn macro_end_to_end(x in 0u64..100, s in "[a-z]{1,4}") {
            prop_assume!(x != 13);
            prop_assert!(x < 100);
            prop_assert_eq!(s.len(), s.chars().count());
        }
    }
}
