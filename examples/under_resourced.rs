//! Matching an under-represented language: Vietnamese-English.
//!
//! The Vietnamese Wikipedia is roughly an order of magnitude smaller than
//! the Portuguese one and shares no word roots with English, so
//! training-based or string-similarity-based matchers struggle. This example
//! shows the parts of WikiMatch that make it work anyway — and how the
//! `MatchEngine` session exposes them: the entity-type correspondences and
//! the title dictionary are computed once at session start and shared by
//! every per-type alignment.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example under_resourced
//! ```

use wikimatch_suite::{evaluate_alignment, wiki_corpus, wikimatch};

use wiki_corpus::{Dataset, SyntheticConfig};
use wikimatch::MatchEngine;

fn main() {
    let dataset = Dataset::vn_en(&SyntheticConfig::tiny());
    println!(
        "Vietnamese-English corpus: {} articles across {} entity types\n",
        dataset.corpus.len(),
        dataset.types.len()
    );

    // Session construction performs step 1 of the paper — entity-type
    // matching over cross-language links — and derives the bilingual
    // dictionary, both exactly once.
    let engine = MatchEngine::builder(dataset).build();

    println!("Entity-type matching (cross-language link voting):");
    for m in engine.type_matches().iter().take(8) {
        println!(
            "  {:<32} -> {:<22} (support {}, confidence {:.2})",
            m.label_a, m.label_b, m.support, m.confidence
        );
    }

    // The automatically derived bilingual dictionary.
    let dictionary = engine.dictionary();
    println!(
        "\nAutomatically derived title dictionary: {} entries",
        dictionary.len()
    );
    for term in ["Hoa Kỳ", "Chính kịch", "Tiếng Anh"] {
        if let Some(translation) = dictionary.translate(term) {
            println!("  {term} -> {translation}");
        }
    }

    // Steps 2–3: align attributes of every type (in parallel) and evaluate.
    println!("\nPer-type weighted scores:");
    for alignment in engine.align_all() {
        let scores = evaluate_alignment(&engine.dataset(), &alignment);
        println!(
            "  {:<8} P {:.2}  R {:.2}  F {:.2}   ({} correspondences)",
            alignment.type_id,
            scores.precision,
            scores.recall,
            scores.f1,
            alignment.cross_pairs().len()
        );
        if alignment.type_id == "film" {
            for (vn, en) in alignment.cross_pairs().iter().take(6) {
                println!("      {vn:<20} ~ {en}");
            }
        }
    }
}
