//! Matching an under-represented language: Vietnamese-English.
//!
//! The Vietnamese Wikipedia is roughly an order of magnitude smaller than
//! the Portuguese one and shares no word roots with English, so
//! training-based or string-similarity-based matchers struggle. This example
//! shows the parts of WikiMatch that make it work anyway: automatic
//! entity-type matching over cross-language links, the title dictionary, and
//! the LSI correlation that needs no lexical overlap at all.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example under_resourced
//! ```

use wikimatch_suite::{evaluate_alignment, wiki_corpus, wiki_translate, wikimatch};

use wiki_corpus::{Dataset, SyntheticConfig};
use wiki_translate::TitleDictionary;
use wikimatch::{match_entity_types, WikiMatch, WikiMatchConfig};

fn main() {
    let dataset = Dataset::vn_en(&SyntheticConfig::tiny());
    println!(
        "Vietnamese-English corpus: {} articles across {} entity types\n",
        dataset.corpus.len(),
        dataset.types.len()
    );

    // Step 1 of the paper: discover which entity types correspond across
    // languages, purely from cross-language links.
    println!("Entity-type matching (cross-language link voting):");
    for m in match_entity_types(
        &dataset.corpus,
        dataset.other_language(),
        dataset.english(),
    )
    .iter()
    .take(8)
    {
        println!(
            "  {:<32} -> {:<22} (support {}, confidence {:.2})",
            m.label_a, m.label_b, m.support, m.confidence
        );
    }

    // The automatically derived bilingual dictionary.
    let dictionary = TitleDictionary::from_corpus(
        &dataset.corpus,
        dataset.other_language(),
        dataset.english(),
    );
    println!("\nAutomatically derived title dictionary: {} entries", dictionary.len());
    for term in ["Hoa Kỳ", "Chính kịch", "Tiếng Anh"] {
        if let Some(translation) = dictionary.translate(term) {
            println!("  {term} -> {translation}");
        }
    }

    // Step 2–3: align attributes of every type and evaluate.
    let matcher = WikiMatch::new(WikiMatchConfig::default());
    println!("\nPer-type weighted scores:");
    for pairing in &dataset.types {
        let alignment = matcher.align_type(&dataset, pairing);
        let scores = evaluate_alignment(&dataset, &alignment);
        println!(
            "  {:<8} P {:.2}  R {:.2}  F {:.2}   ({} correspondences)",
            pairing.type_id,
            scores.precision,
            scores.recall,
            scores.f1,
            alignment.cross_pairs().len()
        );
        if pairing.type_id == "film" {
            for (vn, en) in alignment.cross_pairs().iter().take(6) {
                println!("      {vn:<20} ~ {en}");
            }
        }
    }
}
