//! Quickstart: generate a multilingual corpus, align one entity type and
//! evaluate the result.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use wikimatch_suite::evaluate_alignment;
use wikimatch_suite::wiki_corpus::{Dataset, SyntheticConfig};
use wikimatch_suite::wikimatch::{WikiMatch, WikiMatchConfig};

fn main() {
    // 1. Generate a Portuguese-English corpus with built-in ground truth.
    //    (`SyntheticConfig::default()` produces ~90 dual-language infoboxes
    //    per entity type; `tiny()` is faster for experimentation.)
    let dataset = Dataset::pt_en(&SyntheticConfig::tiny());
    println!(
        "Corpus: {} articles, {} entity types, pair {}",
        dataset.corpus.len(),
        dataset.types.len(),
        dataset.pair_name()
    );

    // 2. Run WikiMatch on the "film" entity type with the paper's default
    //    thresholds (Tsim = 0.6, TLSI = 0.1).
    let matcher = WikiMatch::new(WikiMatchConfig::default());
    let pairing = dataset.type_pairing("film").expect("film type exists");
    let alignment = matcher.align_type(&dataset, pairing);

    println!("\nDiscovered correspondences for type `film`:");
    for (pt, en) in alignment.cross_pairs() {
        println!("  {pt:<25} ~ {en}");
    }

    println!("\nMatch clusters (including intra-language synonyms):");
    for cluster in alignment.rendered_clusters() {
        println!("  {{ {cluster} }}");
    }

    // 3. Evaluate against the generator's ground truth with the paper's
    //    weighted precision / recall / F-measure.
    let scores = evaluate_alignment(&dataset, &alignment);
    println!(
        "\nWeighted scores for `film`: precision {:.2}, recall {:.2}, F1 {:.2}",
        scores.precision, scores.recall, scores.f1
    );
}
