//! Quickstart: generate a multilingual corpus, open a matching session,
//! align one entity type and evaluate the result.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use wikimatch_suite::evaluate_alignment;
use wikimatch_suite::wiki_corpus::{Dataset, SyntheticConfig};
use wikimatch_suite::wikimatch::MatchEngine;

fn main() {
    // 1. Generate a Portuguese-English corpus with built-in ground truth.
    //    (`SyntheticConfig::default()` produces ~90 dual-language infoboxes
    //    per entity type; `tiny()` is faster for experimentation.)
    let dataset = Dataset::pt_en(&SyntheticConfig::tiny());
    println!(
        "Corpus: {} articles, {} entity types, pair {}",
        dataset.corpus.len(),
        dataset.types.len(),
        dataset.pair_name()
    );

    // 2. Open a matching session. Building the engine derives the bilingual
    //    title dictionary once; the entity-type correspondences and per-type
    //    artifacts are computed once on first use and cached.
    let engine = MatchEngine::builder(dataset).build();
    println!(
        "Session ready: {} dictionary entries, {} type correspondences",
        engine.dictionary().len(),
        engine.type_matches().len()
    );

    // 3. Align the "film" entity type with the paper's default thresholds
    //    (Tsim = 0.6, TLSI = 0.1).
    let alignment = engine.align("film").expect("film type exists");

    println!("\nDiscovered correspondences for type `film`:");
    for (pt, en) in alignment.cross_pairs() {
        println!("  {pt:<25} ~ {en}");
    }

    println!("\nMatch clusters (including intra-language synonyms):");
    for cluster in alignment.rendered_clusters() {
        println!("  {{ {cluster} }}");
    }

    // 4. Evaluate against the generator's ground truth with the paper's
    //    weighted precision / recall / F-measure.
    let scores = evaluate_alignment(&engine.dataset(), &alignment);
    println!(
        "\nWeighted scores for `film`: precision {:.2}, recall {:.2}, F1 {:.2}",
        scores.precision, scores.recall, scores.f1
    );
}
