//! Explore the synthetic corpus: wikitext round-tripping, schema drift and
//! cross-language attribute overlap (the phenomenon behind the paper's
//! Table 5).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example corpus_explorer
//! ```

use wikimatch_suite::{wiki_corpus, wiki_eval};

use wiki_corpus::wikitext::{parse_infobox, render_infobox};
use wiki_corpus::{Dataset, Language, SyntheticConfig};
use wiki_eval::type_overlap;

fn main() {
    let dataset = Dataset::pt_en(&SyntheticConfig::tiny());

    // Pick one dual-language entity and show both infoboxes as wikitext.
    let film = dataset
        .corpus
        .articles_of_type(&Language::En, "Film")
        .next()
        .expect("at least one film");
    println!("== {} ==", film.title);
    let wikitext = render_infobox(&film.infobox);
    println!("{wikitext}\n");

    // The wikitext parser round-trips the generated infobox.
    let reparsed = parse_infobox(&wikitext).expect("rendered infobox parses");
    assert_eq!(reparsed.schema(), film.infobox.schema());

    if let Some(pt_title) = film.cross_link_to(&Language::Pt) {
        if let Some(pt) = dataset.corpus.get_by_title(&Language::Pt, pt_title) {
            println!("== {} (Portuguese counterpart) ==", pt.title);
            println!("{}\n", render_infobox(&pt.infobox));
            let en_schema = film.infobox.schema();
            let pt_schema = pt.infobox.schema();
            println!("English attributes:    {}", en_schema.join(", "));
            println!("Portuguese attributes: {}", pt_schema.join(", "));
        }
    }

    // Per-type attribute overlap — the structural heterogeneity that makes
    // multilingual matching hard (paper Table 5).
    println!("\nCross-language attribute overlap per entity type:");
    let mut rows: Vec<(String, f64)> = dataset
        .types
        .iter()
        .map(|pairing| {
            let gold = dataset
                .ground_truth
                .for_type(&pairing.type_id)
                .expect("gold exists");
            let overlap = type_overlap(
                &dataset.corpus,
                gold,
                dataset.other_language(),
                &pairing.label_other,
                &pairing.label_en,
            );
            (pairing.type_id.clone(), overlap)
        })
        .collect();
    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    for (type_id, overlap) in rows {
        println!("  {type_id:<20} {:>5.0}%", overlap * 100.0);
    }
}
