//! Align every Portuguese-English entity type and compare WikiMatch against
//! the baseline matchers — a miniature version of the paper's Table 2.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example film_alignment
//! ```

use wikimatch_suite::{evaluate_pairs, wiki_baselines, wiki_corpus, wiki_eval, wikimatch};

use wiki_baselines::{BoumaMatcher, ComaConfiguration, ComaMatcher, LsiTopKMatcher, Matcher};
use wiki_corpus::{Dataset, Language, SyntheticConfig};
use wiki_eval::Scores;
use wikimatch::{WikiMatch, WikiMatchConfig};

fn main() {
    let dataset = Dataset::pt_en(&SyntheticConfig::tiny());
    let matcher = WikiMatch::new(WikiMatchConfig::default());

    let baselines: Vec<Box<dyn Matcher>> = vec![
        Box::new(BoumaMatcher::default()),
        Box::new(ComaMatcher::new(
            ComaConfiguration::NameTranslatedInstanceTranslated,
        )),
        Box::new(LsiTopKMatcher::new(1)),
    ];

    println!(
        "{:<18} {:>6} {:>6} {:>6}   {:>6} {:>6} {:>6}   {:>6} {:>6} {:>6}   {:>6} {:>6} {:>6}",
        "type", "WM-P", "WM-R", "WM-F", "Bo-P", "Bo-R", "Bo-F", "Co-P", "Co-R", "Co-F", "LSI-P",
        "LSI-R", "LSI-F"
    );

    let mut averages: Vec<Vec<Scores>> = vec![Vec::new(); baselines.len() + 1];
    for pairing in &dataset.types {
        let alignment = matcher.align_type(&dataset, pairing);
        let freq_other = alignment.schema.frequencies(&Language::Pt);
        let freq_en = alignment.schema.frequencies(&Language::En);

        let mut row = vec![evaluate_pairs(
            &dataset,
            &pairing.type_id,
            &freq_other,
            &freq_en,
            &alignment.cross_pairs(),
        )];
        for baseline in &baselines {
            let pairs = baseline.align(&alignment.schema, &alignment.table);
            row.push(evaluate_pairs(
                &dataset,
                &pairing.type_id,
                &freq_other,
                &freq_en,
                &pairs,
            ));
        }

        print!("{:<18}", pairing.type_id);
        for (i, scores) in row.iter().enumerate() {
            print!(
                " {:>6.2} {:>6.2} {:>6.2}  ",
                scores.precision, scores.recall, scores.f1
            );
            averages[i].push(*scores);
        }
        println!();
    }

    print!("{:<18}", "Avg");
    for per_system in &averages {
        let avg = Scores::average(per_system.iter());
        print!(" {:>6.2} {:>6.2} {:>6.2}  ", avg.precision, avg.recall, avg.f1);
    }
    println!();
    println!("\nColumns: WikiMatch (WM), Bouma (Bo), COMA++ NG+ID (Co), LSI top-1 (LSI).");
}
