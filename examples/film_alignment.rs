//! Align every Portuguese-English entity type and compare WikiMatch against
//! the baseline matchers — a miniature version of the paper's Table 2.
//!
//! All approaches are `SchemaMatcher` plugins driven through one
//! `MatchEngine` session, so each type's schema and similarity table are
//! prepared once and shared by every matcher.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example film_alignment
//! ```

use wikimatch_suite::{evaluate_pairs, wiki_baselines, wiki_corpus, wiki_eval, wikimatch};

use wiki_baselines::{BoumaMatcher, ComaMatcher, LsiTopKMatcher};
use wiki_corpus::{Dataset, Language, SyntheticConfig};
use wiki_eval::Scores;
use wikimatch::{MatchEngine, SchemaMatcher, WikiMatch};

fn main() {
    let engine = MatchEngine::builder(Dataset::pt_en(&SyntheticConfig::tiny())).build();

    // WikiMatch and the baselines behind the one plugin interface.
    let matchers: Vec<Box<dyn SchemaMatcher>> = vec![
        Box::new(WikiMatch::default()),
        Box::new(BoumaMatcher::default()),
        Box::new(ComaMatcher::default()), // COMA++ NG+ID
        Box::new(LsiTopKMatcher::new(1)),
    ];

    println!(
        "{:<18} {:>6} {:>6} {:>6}   {:>6} {:>6} {:>6}   {:>6} {:>6} {:>6}   {:>6} {:>6} {:>6}",
        "type",
        "WM-P",
        "WM-R",
        "WM-F",
        "Bo-P",
        "Bo-R",
        "Bo-F",
        "Co-P",
        "Co-R",
        "Co-F",
        "LSI-P",
        "LSI-R",
        "LSI-F"
    );

    let dataset = engine.dataset();
    let mut averages: Vec<Vec<Scores>> = vec![Vec::new(); matchers.len()];
    for pairing in &dataset.types {
        let schema = engine.schema(&pairing.type_id).expect("known type");
        let freq_other = schema.frequencies(&Language::Pt);
        let freq_en = schema.frequencies(&Language::En);

        print!("{:<18}", pairing.type_id);
        for (i, matcher) in matchers.iter().enumerate() {
            let pairs = engine
                .align_with(matcher.as_ref(), &pairing.type_id)
                .expect("known type");
            let scores = evaluate_pairs(&dataset, &pairing.type_id, &freq_other, &freq_en, &pairs);
            print!(
                " {:>6.2} {:>6.2} {:>6.2}  ",
                scores.precision, scores.recall, scores.f1
            );
            averages[i].push(scores);
        }
        println!();
    }

    print!("{:<18}", "Avg");
    for per_system in &averages {
        let avg = Scores::average(per_system.iter());
        print!(
            " {:>6.2} {:>6.2} {:>6.2}  ",
            avg.precision, avg.recall, avg.f1
        );
    }
    println!();
    println!("\nColumns: WikiMatch (WM), Bouma (Bo), COMA++ NG+ID (Co), LSI top-1 (LSI).");
}
