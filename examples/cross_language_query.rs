//! The multilingual structured-query case study (Section 5 of the paper).
//!
//! Portuguese c-queries are answered over the Portuguese infoboxes, then
//! translated into English through the correspondences a `MatchEngine`
//! session discovered and answered over the English infoboxes. The
//! translated queries retrieve more relevant answers because the English
//! corpus has better attribute coverage.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example cross_language_query
//! ```

use wikimatch_suite::{wiki_corpus, wiki_query, wikimatch};

use wiki_corpus::{Dataset, SyntheticConfig};
use wiki_query::{
    case_study_queries, run_case_study_with_engine, CorrespondenceDictionary, QueryEngine,
    RelevanceOracle,
};
use wikimatch::MatchEngine;

fn main() {
    let match_engine = MatchEngine::builder(Dataset::pt_en(&SyntheticConfig::tiny())).build();
    let dataset = match_engine.dataset();
    let alignments = match_engine.align_all();

    // Show one query in detail.
    let dictionary = CorrespondenceDictionary::build(&dataset, &alignments);
    let engine = QueryEngine::new(&dataset.corpus);
    let oracle = RelevanceOracle::new(&dataset.corpus, &dataset.ground_truth);
    let query = &case_study_queries(dataset.other_language())[0];
    println!("Query: {}", query.description);

    let source_answers = engine.answer(query, dataset.other_language(), 5);
    println!("\nTop answers over the Portuguese infoboxes:");
    for answer in &source_answers {
        let grade = oracle.grade(answer.article, query, dataset.other_language());
        println!(
            "  {:<36} score {:.2}  relevance {grade}",
            answer.title, answer.score
        );
    }

    let (translated, stats) = dictionary.translate_query(query);
    println!(
        "\nTranslated query targets type `{}` ({} constraints translated, {} relaxed)",
        translated.clauses[0].type_name, stats.translated, stats.relaxed
    );
    let english_answers = engine.answer(&translated, dataset.english(), 5);
    println!("Top answers over the English infoboxes:");
    for answer in &english_answers {
        let grade = oracle.grade(answer.article, query, dataset.other_language());
        println!(
            "  {:<36} score {:.2}  relevance {grade}",
            answer.title, answer.score
        );
    }

    // The aggregate experiment of Figure 4, straight off the session.
    println!("\nCumulative gain over the ten case-study queries (top-20 answers):");
    for curve in run_case_study_with_engine(&match_engine, 20) {
        println!(
            "  {:<8} total CG {:>7.1}   answers {}   relaxed constraints {}",
            curve.label,
            curve.total_gain(),
            curve.answers,
            curve.relaxed_constraints
        );
    }
}
